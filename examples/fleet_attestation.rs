//! Fleet attestation: one Verifier running challenge–response rounds
//! against a fleet of deployed sensor nodes, with a path policy on top
//! of lossless verification — and one compromised node in the mix.
//!
//! ```text
//! cargo run --example fleet_attestation
//! ```

use mcu_sim::{InjectedWrite, Machine};
use rap_link::{link, LinkOptions};
use rap_track::{
    device_key, CfaEngine, EngineConfig, PathPolicy, PathStats, Report, SessionError,
    VerifierSession,
};

/// One simulated device in the fleet.
struct Device {
    name: &'static str,
    engine: CfaEngine,
    /// A memory-corruption implant (compromised node only).
    implant: Option<InjectedWrite>,
}

impl Device {
    fn respond(
        &self,
        linked: &rap_link::LinkedProgram,
        w: &workloads::Workload,
        chal: rap_track::Challenge,
    ) -> Result<Vec<Report>, mcu_sim::ExecError> {
        let mut machine = Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        if let Some(write) = self.implant {
            machine.inject_write(write);
        }
        let att = self.engine.attest(
            &mut machine,
            &linked.map,
            chal,
            EngineConfig {
                watermark: Some(448),
                max_instrs: w.max_instrs,
            },
        )?;
        Ok(att.reports)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Everyone runs the Geiger firmware.
    let w = workloads::geiger::workload();
    let linked = link(&w.module, 0, LinkOptions::default())?;
    let alarm = linked.image.symbol("alarm_blink").unwrap();

    // The fleet policy: only the registered alarm callback may be
    // called indirectly, and the CPM loop is bounded.
    let call_site = linked
        .map
        .sites_by_entry
        .values()
        .find(|s| s.kind == rap_link::SiteKind::IndirectCall)
        .unwrap()
        .mtbdr_addr;
    let policy = PathPolicy::new()
        .allow_indirect(call_site, [alarm])
        .require_call(linked.image.symbol("compute_cpm").unwrap());

    // Three healthy nodes, one with a planted implant that hijacks the
    // registered radiation callback (a classic IoT persistence trick).
    let implant = InjectedWrite {
        after_instrs: 60, // after the callback is registered
        addr: workloads::SCRATCH_BUF,
        value: alarm + 2, // mid-function gadget, not a function entry
    };
    let fleet = [
        Device {
            name: "node-01",
            engine: CfaEngine::new(device_key("node-01")),
            implant: None,
        },
        Device {
            name: "node-02",
            engine: CfaEngine::new(device_key("node-02")),
            implant: None,
        },
        Device {
            name: "node-03 (compromised)",
            engine: CfaEngine::new(device_key("node-03")),
            implant: Some(implant),
        },
        Device {
            name: "node-04",
            engine: CfaEngine::new(device_key("node-04")),
            implant: None,
        },
    ];

    for (i, device) in fleet.iter().enumerate() {
        let key_seed = format!("node-{:02}", i + 1);
        let mut session = VerifierSession::new(
            device_key(&key_seed),
            linked.image.clone(),
            linked.map.clone(),
            b"fleet-2026-07",
        );
        println!("== {} ==", device.name);
        for round in 1..=2 {
            let chal = session.issue_challenge();
            match device.respond(&linked, &w, chal) {
                Err(fault) => {
                    println!("  round {round}: DEVICE FAULT — {fault}");
                    break;
                }
                Ok(reports) => match session.check_response(&reports) {
                    Err(SessionError::Verification(v)) => {
                        println!("  round {round}: ATTESTATION FAILED — {v}");
                        break;
                    }
                    Err(other) => {
                        println!("  round {round}: protocol error — {other}");
                        break;
                    }
                    Ok(path) => {
                        let findings = policy.check(&path);
                        let stats = PathStats::of(&path);
                        if findings.is_empty() {
                            println!(
                                "  round {round}: healthy — {} decisions, {} alarms",
                                stats.decisions(),
                                stats.indirect_calls
                            );
                        } else {
                            for f in findings {
                                println!("  round {round}: POLICY VIOLATION — {f}");
                            }
                        }
                    }
                },
            }
        }
        println!();
    }
    Ok(())
}
