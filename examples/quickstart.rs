//! Quickstart: the full RAP-Track round trip on a tiny application.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. Write an application (T-lite assembly builder).
//! 2. Run the offline phase: classify branches, build MTBAR/MTBDR.
//! 3. Prover: attest one execution (MTB/DWT do the logging).
//! 4. Verifier: authenticate the report and reconstruct the path.

use armv8m_isa::{Asm, Reg};
use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small sensing-style application: a runtime-variable loop, a
    //    conditional and a function call.
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R2, 5); // pretend this came from a sensor
    a.mov(Reg::R0, Reg::R2);
    a.label("sample_loop"); // §IV-D optimizable loop
    a.subi(Reg::R0, Reg::R0, 1);
    a.cmpi(Reg::R0, 0);
    a.bne("sample_loop");
    a.cmpi(Reg::R2, 3);
    a.ble("small");
    a.bl("process");
    a.label("small");
    a.halt();
    a.func("process");
    a.addi(Reg::R7, Reg::R7, 1);
    a.ret();

    // 2. Offline phase.
    let linked = link(&a.into_module(), 0, LinkOptions::default())?;
    println!("deployed binary: {} bytes", linked.image.bytes().len());
    println!(
        "MTBDR {:#x?}  MTBAR {:#x?}  trampolines: {}",
        linked.map.mtbdr,
        linked.map.mtbar,
        linked.map.site_count()
    );

    // 3. Prover side.
    let key = device_key("quickstart-device");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    let chal = Challenge::from_seed(2024);
    let att = engine.attest(&mut machine, &linked.map, chal, EngineConfig::default())?;
    println!(
        "\nattested run: {} instrs, {} cycles, CF_Log = {} bytes in {} report(s)",
        att.outcome.instrs,
        att.outcome.cycles,
        att.cflog_bytes(),
        att.reports.len()
    );

    // 4. Verifier side.
    let verifier = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()?;
    let path = verifier.verify(chal, &att.reports)?;
    println!(
        "\nreconstructed control-flow path ({} events):",
        path.events.len()
    );
    print!("{}", path.render(&linked.image));
    println!("\nverification: OK (lossless path accepted)");
    Ok(())
}
