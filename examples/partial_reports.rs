//! Partial reports (§IV-E): a memory-constrained Prover streams
//! `CF_Log` chunks through the `MTB_FLOW` watermark instead of losing
//! packets to buffer wrap-around.
//!
//! ```text
//! cargo run --example partial_reports
//! ```

use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Verifier};
use trace_units::MtbConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workloads::gps::workload(); // branch-dense: fills buffers fast
    let linked = link(&w.module, 0, LinkOptions::default())?;
    let key = device_key("constrained-node");

    // A tiny MTB: 32 entries (256 bytes of trace SRAM).
    let tiny = MtbConfig {
        capacity: 32,
        activation_delay: 1,
    };

    println!("== without partial reports (watermark disabled) ==");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::with_mtb(linked.image.clone(), tiny);
    (w.attach)(&mut machine);
    let chal = Challenge::from_seed(1);
    let att = engine.attest(&mut machine, &linked.map, chal, EngineConfig::default())?;
    println!(
        "  total transfers recorded: {}, surviving in buffer: {}",
        machine.fabric.mtb().total_recorded(),
        att.combined_log().mtb.len()
    );
    let verifier = Verifier::builder()
        .key(key.clone())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");
    match verifier.verify(chal, &att.reports) {
        Ok(_) => println!("  UNEXPECTED: truncated evidence verified"),
        Err(v) => println!("  rejected as expected — {v}"),
    }

    println!("\n== with partial reports (watermark at 24/32 entries) ==");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::with_mtb(linked.image.clone(), tiny);
    (w.attach)(&mut machine);
    let chal = Challenge::from_seed(2);
    let att = engine.attest(
        &mut machine,
        &linked.map,
        chal,
        EngineConfig {
            watermark: Some(24),
            ..EngineConfig::default()
        },
    )?;
    println!(
        "  reports sent: {} (total CF_Log {} bytes, {} wire bytes)",
        att.reports.len(),
        att.cflog_bytes(),
        att.reports.iter().map(|r| r.wire_bytes()).sum::<usize>()
    );
    let path = verifier.verify(chal, &att.reports)?;
    println!(
        "  verified: {} path events reconstructed across {} chunks",
        path.events.len(),
        att.reports.len()
    );
    Ok(())
}
