//! Attack detection (§IV-F): three adversaries against an attested run.
//!
//! ```text
//! cargo run --example attack_detection
//! ```
//!
//! * **ROP** — a stack-smash overwrites a saved return address; the
//!   `POP {PC}` return is logged by the MTB and the Verifier's shadow
//!   call stack flags the mismatch.
//! * **JOP / call hijack** — a function pointer in RAM is redirected
//!   into the middle of a function; the logged `BLX` target fails the
//!   function-entry policy.
//! * **Code injection** — a write to the application binary trips the
//!   locked NS-MPU before a single corrupted instruction can run.

use armv8m_isa::{Asm, Reg};
use mcu_sim::{InjectedWrite, Machine, RAM_BASE, RAM_SIZE};
use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, Verifier};

fn victim() -> rap_link::LinkedProgram {
    let mut a = Asm::new();
    a.func("main");
    a.mov32(Reg::R5, RAM_BASE);
    a.load_addr(Reg::R0, "sensor_read"); // register the handler
    a.str_(Reg::R0, Reg::R5, 0);
    a.bl("handle_request");
    a.ldr(Reg::R3, Reg::R5, 0);
    a.blx(Reg::R3); // dispatch through the pointer
    a.halt();

    a.func("handle_request");
    a.push(&[Reg::R4, Reg::Lr]);
    a.movi(Reg::R4, 7);
    a.nop();
    a.nop();
    a.pop(&[Reg::R4, Reg::Pc]);

    a.func("sensor_read");
    a.addi(Reg::R7, Reg::R7, 1);
    a.label("sensor_read_body");
    a.addi(Reg::R7, Reg::R7, 2);
    a.ret();

    a.func("firmware_update"); // the gadget the attacker wants
    a.movi(Reg::R7, 0x66);
    a.halt();

    link(&a.into_module(), 0, LinkOptions::default()).expect("victim links")
}

fn attest_and_verify(
    linked: &rap_link::LinkedProgram,
    prep: impl FnOnce(&mut Machine),
) -> Result<(), String> {
    let key = device_key("attack-demo");
    let engine = CfaEngine::new(key.clone());
    let mut machine = Machine::new(linked.image.clone());
    prep(&mut machine);
    let chal = Challenge::from_seed(7);
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .map_err(|e| format!("execution fault: {e}"))?;
    let verifier = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .map_err(|e| format!("building verifier: {e}"))?;
    verifier
        .verify(chal, &att.reports)
        .map(|_| ())
        .map_err(|v| format!("verifier verdict: {v}"))
}

fn main() {
    let linked = victim();

    println!("== benign run ==");
    match attest_and_verify(&linked, |_| {}) {
        Ok(()) => println!("accepted: path verified losslessly\n"),
        Err(e) => println!("UNEXPECTED rejection: {e}\n"),
    }

    println!("== ROP: overwrite the saved return address on the stack ==");
    let gadget = linked.image.symbol("firmware_update").unwrap();
    match attest_and_verify(&linked, |m| {
        m.inject_write(InjectedWrite {
            // handle_request pushed {R4, LR}: LR sits at top-of-stack+4.
            after_instrs: 9,
            addr: RAM_BASE + RAM_SIZE - 4,
            value: gadget,
        });
    }) {
        Ok(()) => println!("MISSED the attack!\n"),
        Err(e) => println!("detected — {e}\n"),
    }

    println!("== JOP: redirect the registered function pointer ==");
    let inside = linked.image.symbol("sensor_read_body").unwrap();
    match attest_and_verify(&linked, |m| {
        m.inject_write(InjectedWrite {
            after_instrs: 14,
            addr: RAM_BASE,
            value: inside,
        });
    }) {
        Ok(()) => println!("MISSED the attack!\n"),
        Err(e) => println!("detected — {e}\n"),
    }

    println!("== code injection: patch the binary in place ==");
    match attest_and_verify(&linked, |m| {
        m.inject_write(InjectedWrite {
            after_instrs: 3,
            addr: linked.image.base() + 4,
            value: 0xE100_E100, // halt; halt
        });
    }) {
        Ok(()) => println!("MISSED the attack!\n"),
        Err(e) => println!("blocked — {e}\n"),
    }
}
