//! Safety-critical audit: attest a syringe-pump dosing session and
//! reconstruct exactly what the pump did — the paper's motivating
//! use-case for remote visibility into runtime behaviour.
//!
//! ```text
//! cargo run --example syringe_audit
//! ```

use rap_link::{link, LinkOptions};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, PathEvent, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workloads::syringe::workload();
    println!("workload: {} — {}", w.name, w.description);
    println!(
        "command script: {:?}\n",
        workloads::syringe::command_script()
    );

    let linked = link(&w.module, 0, LinkOptions::default())?;
    let key = device_key("infusion-pump-17");
    let engine = CfaEngine::new(key.clone());

    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    (w.attach)(&mut machine);
    let chal = Challenge::from_seed(0xD05E);
    let att = engine.attest(
        &mut machine,
        &linked.map,
        chal,
        EngineConfig {
            watermark: Some(256), // stream partial reports
            max_instrs: w.max_instrs,
        },
    )?;
    println!(
        "session attested: {} cycles, {} report(s), CF_Log {} bytes",
        att.outcome.cycles,
        att.reports.len(),
        att.cflog_bytes()
    );

    let verifier = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()?;
    let path = verifier.verify(chal, &att.reports)?;

    // Audit: every jump-table dispatch is one executed pump command.
    let step_loop_header = linked.map.loops_by_latch.values().next().map(|l| l.header);
    let mut commands = 0;
    let mut motor_steps: u32 = 0;
    for event in &path.events {
        match event {
            PathEvent::IndirectJump { dest, .. } => {
                commands += 1;
                println!("  command #{commands}: dispatched to {dest:#06x}");
            }
            PathEvent::LoopIterations { header, count } if Some(*header) == step_loop_header => {
                motor_steps += count;
                println!("    motor stepped {count} times");
            }
            _ => {}
        }
    }
    println!("\naudit summary: {commands} commands, {motor_steps} motor steps");
    println!(
        "final plunger position register: {}",
        machine.cpu.reg(w.result_reg())
    );
    println!("verification: OK — the session matched the deployed firmware");
    Ok(())
}
