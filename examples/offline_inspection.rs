//! Offline-phase inspection: what the RAP-Track linker does to a
//! binary — branch classification, trampoline layout, loop plans.
//!
//! ```text
//! cargo run --example offline_inspection [workload]
//! ```

use rap_link::{link, LinkOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "geiger".into());
    let Some(w) = workloads::by_name(&name) else {
        eprintln!(
            "unknown workload `{name}`; available: {}",
            workloads::all()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };

    let original = w.module.assemble(0)?;
    let linked = link(&w.module, 0, LinkOptions::default())?;

    println!("== {} — {}\n", w.name, w.description);
    println!("original code : {:>6} bytes", original.bytes().len());
    println!(
        "deployed code : {:>6} bytes ({:+} for trampolines)",
        linked.image.bytes().len(),
        linked.size_overhead()
    );
    println!("MTBDR         : {:#010x?}", linked.map.mtbdr.unwrap());
    if let Some(mtbar) = linked.map.mtbar {
        println!("MTBAR         : {mtbar:#010x?}");
    }

    println!("\n-- trampoline sites --");
    let mut sites: Vec<_> = linked.map.sites_by_entry.values().collect();
    sites.sort_by_key(|s| s.entry);
    for s in &sites {
        println!(
            "  {:<24} entry {:#06x}  src {:#06x}  rewritten site {:#06x}",
            format!("{:?}", s.kind),
            s.entry,
            s.src,
            s.mtbdr_addr
        );
    }

    println!("\n-- optimized loops (§IV-D) --");
    let mut loops: Vec<_> = linked.map.loops_by_latch.values().collect();
    loops.sort_by_key(|l| l.header);
    for l in &loops {
        println!(
            "  header {:#06x} latch {:#06x} iter {} step {:+} bound {} cond {:?} ({:?})",
            l.header, l.latch, l.iter, l.step, l.bound, l.cond, l.kind
        );
    }

    println!("\n-- deployed binary (MTBAR region at the end) --");
    println!("{}", linked.image.disassemble());
    Ok(())
}
