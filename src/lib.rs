pub use armv8m_isa;
pub use cfa_baselines;
pub use mcu_sim;
pub use rap_crypto;
pub use rap_link;
pub use rap_track;
pub use trace_units;
pub use workloads;
