//! Micro Trace Buffer (MTB) model.
//!
//! The MTB records the `(source, destination)` addresses of every
//! non-sequential PC change into a circular SRAM buffer while tracing is
//! active (MTB-M33 TRM). Tracing is controlled either by the `TSTARTEN`
//! bit of `MTB_MASTER` (trace everything) or by the `MTB_TSTART` /
//! `MTB_TSTOP` inputs driven by DWT comparators. The `MTB_FLOW`
//! watermark raises a debug event when the write pointer reaches a
//! configured limit — RAP-Track uses it for partial reports (§IV-E).

use std::fmt;

use crate::DwtSignals;

/// One MTB trace packet: an executed non-sequential transfer.
/// Ordered (source, then dest) so transfer sequences can key ordered
/// collections — the dictionary miner relies on that for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceEntry {
    /// Address of the branching instruction.
    pub source: u32,
    /// Address execution continued at.
    pub dest: u32,
}

impl TraceEntry {
    /// Size of one encoded packet in the trace SRAM, in bytes
    /// (source word + destination word, as in the real MTB).
    pub const BYTES: usize = 8;

    /// Builds a packet — used by tests and the fuzzing mutator when
    /// synthesizing adversarial logs.
    pub fn new(source: u32, dest: u32) -> TraceEntry {
        TraceEntry { source, dest }
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x} -> {:#010x}", self.source, self.dest)
    }
}

/// Static configuration of the MTB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtbConfig {
    /// Capacity of the trace SRAM in *entries* (the AN505 image maps
    /// 4 KiB of MTB SRAM = 512 entries; that is the default).
    pub capacity: usize,
    /// Instructions executed between a `TSTART` assertion and the first
    /// recorded packet, modelling the hardware's activation latency. The
    /// paper compensates with `NOP` padding at MTBAR trampoline heads
    /// (§V-C); the offline linker inserts exactly this many `NOP`s.
    pub activation_delay: u32,
}

impl Default for MtbConfig {
    fn default() -> MtbConfig {
        MtbConfig {
            capacity: 4096 / TraceEntry::BYTES,
            activation_delay: 1,
        }
    }
}

/// The MTB tracing state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceState {
    /// Not recording.
    Off,
    /// `TSTART` seen; becomes `On` after the activation delay elapses.
    Arming {
        /// Remaining instruction steps before recording starts.
        remaining: u32,
    },
    /// Recording.
    On,
}

/// The Micro Trace Buffer.
///
/// ```
/// use trace_units::{DwtSignals, Mtb, MtbConfig};
/// let mut mtb = Mtb::new(MtbConfig { capacity: 8, activation_delay: 0 });
/// mtb.set_master_trace(true); // TSTARTEN: trace everything
/// mtb.record(0x100, 0x200);
/// assert_eq!(mtb.entries().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mtb {
    config: MtbConfig,
    master_trace: bool,
    state: TraceState,
    buffer: Vec<TraceEntry>,
    /// Next write position within the circular buffer.
    position: usize,
    /// Whether the write pointer has wrapped at least once since the
    /// last drain (oldest packets were overwritten).
    wrapped: bool,
    /// Packets recorded since the last drain (watermark bookkeeping).
    since_drain: usize,
    /// Total packets recorded since the last [`Mtb::reset`] (monotonic,
    /// not bounded by capacity) — the quantity the paper reports as
    /// `CF_Log` size.
    total_recorded: u64,
    watermark: Option<usize>,
    watermark_hit: bool,
}

impl Mtb {
    /// Creates an MTB with the given configuration.
    pub fn new(config: MtbConfig) -> Mtb {
        Mtb {
            config,
            master_trace: false,
            state: TraceState::Off,
            buffer: Vec::with_capacity(config.capacity),
            position: 0,
            wrapped: false,
            since_drain: 0,
            total_recorded: 0,
            watermark: None,
            watermark_hit: false,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> MtbConfig {
        self.config
    }

    /// Sets the `TSTARTEN` bit of `MTB_MASTER`: when true the MTB traces
    /// unconditionally, ignoring DWT start/stop inputs (the *naive MTB*
    /// baseline of the paper).
    pub fn set_master_trace(&mut self, enable: bool) {
        self.master_trace = enable;
        if enable {
            self.state = TraceState::On;
        } else if self.state == TraceState::On {
            self.state = TraceState::Off;
        }
    }

    /// Configures the `MTB_FLOW` watermark: a debug event fires when the
    /// write position reaches `entries`. `None` disables the watermark.
    pub fn set_flow_watermark(&mut self, entries: Option<usize>) {
        self.watermark = entries.map(|e| e.min(self.config.capacity));
    }

    /// Whether the watermark debug event is pending.
    pub fn watermark_hit(&self) -> bool {
        self.watermark_hit
    }

    /// Applies the DWT start/stop signals for the instruction about to
    /// execute, then advances the activation-delay state machine by one
    /// instruction step.
    pub fn tick(&mut self, signals: DwtSignals) {
        if self.master_trace {
            return;
        }
        // Stop dominates: the MTBDR range deactivates tracing outright.
        if signals.stop {
            self.state = TraceState::Off;
            return;
        }
        if signals.start {
            match self.state {
                TraceState::Off => {
                    self.state = if self.config.activation_delay == 0 {
                        TraceState::On
                    } else {
                        TraceState::Arming {
                            remaining: self.config.activation_delay,
                        }
                    };
                }
                TraceState::Arming { remaining } => {
                    let remaining = remaining.saturating_sub(1);
                    self.state = if remaining == 0 {
                        TraceState::On
                    } else {
                        TraceState::Arming { remaining }
                    };
                }
                TraceState::On => {}
            }
        }
    }

    /// Whether the MTB would record a packet right now.
    pub fn is_tracing(&self) -> bool {
        self.master_trace || self.state == TraceState::On
    }

    /// Records a non-sequential transfer if tracing is active.
    ///
    /// Returns `true` when a packet was written.
    pub fn record(&mut self, source: u32, dest: u32) -> bool {
        if !self.is_tracing() {
            return false;
        }
        let entry = TraceEntry { source, dest };
        if self.buffer.len() < self.config.capacity {
            self.buffer.push(entry);
        } else {
            // Overwriting the oldest packet: data is being lost.
            self.buffer[self.position] = entry;
            self.wrapped = true;
            rap_obs::counter!("trace_mtb_overwrites_total").inc();
        }
        self.position = (self.position + 1) % self.config.capacity;
        self.since_drain += 1;
        self.total_recorded += 1;
        rap_obs::counter!("trace_mtb_packets_total").inc();
        if let Some(mark) = self.watermark {
            if self.since_drain >= mark && !self.watermark_hit {
                self.watermark_hit = true;
                rap_obs::counter!("trace_mtb_watermark_hits_total").inc();
                rap_obs::event("mtb_watermark", source as u64, self.since_drain as u64);
            }
        }
        true
    }

    /// The packets currently in the buffer, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        if !self.wrapped || self.buffer.len() < self.config.capacity {
            self.buffer.clone()
        } else {
            let mut out = Vec::with_capacity(self.buffer.len());
            out.extend_from_slice(&self.buffer[self.position..]);
            out.extend_from_slice(&self.buffer[..self.position]);
            out
        }
    }

    /// Whether packets have been lost to wrap-around since the last
    /// drain (the failure mode partial reports exist to prevent).
    pub fn overflowed(&self) -> bool {
        self.wrapped
    }

    /// Total packets recorded since the last [`Mtb::reset`], including
    /// any that were overwritten. `CF_Log` size in bytes is
    /// `total_recorded() * TraceEntry::BYTES`.
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Drains the buffer for a (partial) report: returns the packets in
    /// order and resets the head pointer and the watermark event, as the
    /// paper's partial-report handler does (§IV-E).
    pub fn drain(&mut self) -> Vec<TraceEntry> {
        let out = self.entries();
        rap_obs::counter!("trace_mtb_drains_total").inc();
        rap_obs::counter!("trace_mtb_drained_packets_total").add(out.len() as u64);
        self.buffer.clear();
        self.position = 0;
        self.wrapped = false;
        self.since_drain = 0;
        self.watermark_hit = false;
        out
    }

    /// Fully resets the unit (buffer, counters, tracing state).
    pub fn reset(&mut self) {
        self.drain();
        self.total_recorded = 0;
        self.master_trace = false;
        self.state = TraceState::Off;
        self.watermark = None;
    }
}

impl Default for Mtb {
    fn default() -> Mtb {
        Mtb::new(MtbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> DwtSignals {
        DwtSignals {
            start: true,
            stop: false,
        }
    }

    fn stop() -> DwtSignals {
        DwtSignals {
            start: false,
            stop: true,
        }
    }

    #[test]
    fn master_trace_records_everything() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 4,
            activation_delay: 3,
        });
        mtb.set_master_trace(true);
        assert!(mtb.record(0, 4));
        assert_eq!(mtb.total_recorded(), 1);
    }

    #[test]
    fn off_by_default() {
        let mut mtb = Mtb::default();
        assert!(!mtb.record(0, 4));
        assert_eq!(mtb.total_recorded(), 0);
    }

    #[test]
    fn activation_delay_arms_before_recording() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 8,
            activation_delay: 2,
        });
        mtb.tick(start()); // arming, remaining = 2
        assert!(!mtb.is_tracing());
        assert!(!mtb.record(0x10, 0x20));
        mtb.tick(start()); // remaining = 1
        assert!(!mtb.is_tracing());
        mtb.tick(start()); // on
        assert!(mtb.is_tracing());
        assert!(mtb.record(0x10, 0x20));
    }

    #[test]
    fn zero_delay_starts_immediately() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 8,
            activation_delay: 0,
        });
        mtb.tick(start());
        assert!(mtb.is_tracing());
    }

    #[test]
    fn stop_signal_halts_tracing() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 8,
            activation_delay: 0,
        });
        mtb.tick(start());
        assert!(mtb.record(0, 4));
        mtb.tick(stop());
        assert!(!mtb.record(8, 12));
        assert_eq!(mtb.entries().len(), 1);
    }

    #[test]
    fn circular_wrap_keeps_most_recent() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 3,
            activation_delay: 0,
        });
        mtb.set_master_trace(true);
        for i in 0..5u32 {
            mtb.record(i * 8, i * 8 + 4);
        }
        assert!(mtb.overflowed());
        let entries = mtb.entries();
        assert_eq!(entries.len(), 3);
        // Oldest two were overwritten: remaining sources are 16, 24, 32.
        let sources: Vec<u32> = entries.iter().map(|e| e.source).collect();
        assert_eq!(sources, vec![16, 24, 32]);
        assert_eq!(mtb.total_recorded(), 5);
    }

    #[test]
    fn watermark_fires_and_drain_clears() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 8,
            activation_delay: 0,
        });
        mtb.set_master_trace(true);
        mtb.set_flow_watermark(Some(2));
        mtb.record(0, 4);
        assert!(!mtb.watermark_hit());
        mtb.record(8, 12);
        assert!(mtb.watermark_hit());
        let drained = mtb.drain();
        assert_eq!(drained.len(), 2);
        assert!(!mtb.watermark_hit());
        assert_eq!(mtb.entries().len(), 0);
        // Total survives drains (it is the CF_Log size metric)…
        assert_eq!(mtb.total_recorded(), 2);
        // …but not a full reset.
        mtb.reset();
        assert_eq!(mtb.total_recorded(), 0);
    }

    #[test]
    fn restart_after_stop_rearms_with_delay() {
        let mut mtb = Mtb::new(MtbConfig {
            capacity: 8,
            activation_delay: 1,
        });
        mtb.tick(start());
        mtb.tick(start());
        assert!(mtb.is_tracing());
        mtb.tick(stop());
        assert!(!mtb.is_tracing());
        mtb.tick(start());
        assert!(!mtb.is_tracing(), "must re-arm after a stop");
        mtb.tick(start());
        assert!(mtb.is_tracing());
    }
}
