//! Register-level programming interface for the trace units.
//!
//! The behavioural models ([`crate::Mtb`], [`crate::Dwt`]) expose typed
//! methods; real Secure-World firmware programs the units through
//! memory-mapped registers. [`TraceRegFile`] models that surface: a
//! small register file whose layout follows the MTB-M33 and DWT
//! programming models closely enough that driver-style code (write
//! `MTB_MASTER`, set up comparator pairs, set `MTB_FLOW`) works as it
//! would on hardware, and [`TraceRegFile::program`] commits the
//! register state into the behavioural models.
//!
//! | offset | register | modelled bits |
//! |---|---|---|
//! | `0x00` | `MTB_POSITION` | read-only: write pointer (entries) |
//! | `0x04` | `MTB_MASTER` | bit 31 `EN`, bit 5 `TSTARTEN` |
//! | `0x08` | `MTB_FLOW` | bits 31:3 `WATERMARK` (byte offset), bit 0 enable |
//! | `0x10 + 8n` | `DWT_COMP{n}` | comparator address |
//! | `0x14 + 8n` | `DWT_FUNCTION{n}` | bits 1:0 — 0 off, 1 start, 2 stop |
//!
//! Comparators pair up (0-1 and 2-3): the even comparator holds the
//! range base, the odd one the range limit, and the even comparator's
//! `FUNCTION` selects the MTB action — exactly the paired usage of
//! §IV-B.

use crate::{Dwt, DwtError, Mtb, PcRange, RangeAction, TraceEntry};

/// `MTB_MASTER.EN`.
pub const MASTER_EN: u32 = 1 << 31;
/// `MTB_MASTER.TSTARTEN` — trace unconditionally.
pub const MASTER_TSTARTEN: u32 = 1 << 5;
/// `DWT_FUNCTION` action: disabled.
pub const FUNC_OFF: u32 = 0;
/// `DWT_FUNCTION` action: assert `MTB_TSTART` while matching.
pub const FUNC_START: u32 = 1;
/// `DWT_FUNCTION` action: assert `MTB_TSTOP` while matching.
pub const FUNC_STOP: u32 = 2;

/// Register offsets.
pub mod offset {
    /// `MTB_POSITION` (read-only).
    pub const MTB_POSITION: u32 = 0x00;
    /// `MTB_MASTER`.
    pub const MTB_MASTER: u32 = 0x04;
    /// `MTB_FLOW`.
    pub const MTB_FLOW: u32 = 0x08;
    /// `DWT_COMP{n}` for `n` in `0..4`.
    pub fn dwt_comp(n: usize) -> u32 {
        0x10 + 8 * n as u32
    }
    /// `DWT_FUNCTION{n}` for `n` in `0..4`.
    pub fn dwt_function(n: usize) -> u32 {
        0x14 + 8 * n as u32
    }
}

/// An error raised while programming the units from register state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An odd comparator carries a `FUNCTION` action (only even
    /// comparators select the pair's action).
    OddComparatorFunction {
        /// The offending comparator index.
        index: usize,
    },
    /// A pair's base is not below its limit.
    BadRange {
        /// The pair's even comparator index.
        index: usize,
    },
    /// The DWT rejected the configuration.
    Dwt(DwtError),
    /// A write touched an unknown register offset.
    UnknownRegister {
        /// The offending byte offset.
        offset: u32,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::OddComparatorFunction { index } => {
                write!(f, "comparator {index} is a range limit; clear its FUNCTION")
            }
            ProgramError::BadRange { index } => {
                write!(f, "comparator pair {index} has base >= limit")
            }
            ProgramError::Dwt(e) => write!(f, "dwt rejected configuration: {e}"),
            ProgramError::UnknownRegister { offset } => {
                write!(f, "no register at offset {offset:#x}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<DwtError> for ProgramError {
    fn from(e: DwtError) -> ProgramError {
        ProgramError::Dwt(e)
    }
}

/// The modelled register file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceRegFile {
    master: u32,
    flow: u32,
    comp: [u32; 4],
    function: [u32; 4],
}

impl TraceRegFile {
    /// Creates a reset register file (everything zero/disabled).
    pub fn new() -> TraceRegFile {
        TraceRegFile::default()
    }

    /// Writes a register.
    ///
    /// # Errors
    ///
    /// [`ProgramError::UnknownRegister`] for unmapped offsets and
    /// writes to the read-only `MTB_POSITION`.
    pub fn write(&mut self, offset: u32, value: u32) -> Result<(), ProgramError> {
        match offset {
            o if o == offset::MTB_MASTER => self.master = value,
            o if o == offset::MTB_FLOW => self.flow = value,
            _ => {
                for n in 0..4 {
                    if offset == offset::dwt_comp(n) {
                        self.comp[n] = value;
                        return Ok(());
                    }
                    if offset == offset::dwt_function(n) {
                        self.function[n] = value & 0x3;
                        return Ok(());
                    }
                }
                return Err(ProgramError::UnknownRegister { offset });
            }
        }
        Ok(())
    }

    /// Reads a register (`MTB_POSITION` reflects the live MTB).
    ///
    /// # Errors
    ///
    /// [`ProgramError::UnknownRegister`] for unmapped offsets.
    pub fn read(&self, offset: u32, mtb: &Mtb) -> Result<u32, ProgramError> {
        match offset {
            o if o == offset::MTB_POSITION => Ok((mtb.entries().len() * TraceEntry::BYTES) as u32),
            o if o == offset::MTB_MASTER => Ok(self.master),
            o if o == offset::MTB_FLOW => Ok(self.flow),
            _ => {
                for n in 0..4 {
                    if offset == offset::dwt_comp(n) {
                        return Ok(self.comp[n]);
                    }
                    if offset == offset::dwt_function(n) {
                        return Ok(self.function[n]);
                    }
                }
                Err(ProgramError::UnknownRegister { offset })
            }
        }
    }

    /// Commits the register state into the behavioural models,
    /// replacing any previous configuration.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn program(&self, dwt: &mut Dwt, mtb: &mut Mtb) -> Result<(), ProgramError> {
        // MTB master control.
        mtb.set_master_trace(self.master & MASTER_EN != 0 && self.master & MASTER_TSTARTEN != 0);
        // Watermark: byte offset → entries; bit 0 enables.
        if self.flow & 1 != 0 {
            let bytes = (self.flow & !7) as usize;
            mtb.set_flow_watermark(Some(bytes / TraceEntry::BYTES));
        } else {
            mtb.set_flow_watermark(None);
        }

        // Comparator pairs.
        dwt.clear();
        for pair in [0usize, 2] {
            let action_bits = self.function[pair];
            if self.function[pair + 1] != FUNC_OFF {
                return Err(ProgramError::OddComparatorFunction { index: pair + 1 });
            }
            let action = match action_bits {
                FUNC_OFF => continue,
                FUNC_START => RangeAction::StartMtb,
                FUNC_STOP => RangeAction::StopMtb,
                _ => continue,
            };
            let base = self.comp[pair];
            let limit = self.comp[pair + 1];
            if base >= limit {
                return Err(ProgramError::BadRange { index: pair });
            }
            dwt.watch_range(PcRange {
                base,
                limit,
                action,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DwtSignals, MtbConfig};

    fn units() -> (Dwt, Mtb) {
        (
            Dwt::new(),
            Mtb::new(MtbConfig {
                capacity: 16,
                activation_delay: 0,
            }),
        )
    }

    #[test]
    fn master_tstarten_traces_everything() {
        let (mut dwt, mut mtb) = units();
        let mut regs = TraceRegFile::new();
        regs.write(offset::MTB_MASTER, MASTER_EN | MASTER_TSTARTEN)
            .unwrap();
        regs.program(&mut dwt, &mut mtb).unwrap();
        assert!(mtb.record(0, 4));
    }

    #[test]
    fn paired_comparators_define_regions() {
        let (mut dwt, mut mtb) = units();
        let mut regs = TraceRegFile::new();
        // MTBDR [0, 0x100): stop. MTBAR [0x100, 0x200): start.
        regs.write(offset::dwt_comp(0), 0x000).unwrap();
        regs.write(offset::dwt_comp(1), 0x100).unwrap();
        regs.write(offset::dwt_function(0), FUNC_STOP).unwrap();
        regs.write(offset::dwt_comp(2), 0x100).unwrap();
        regs.write(offset::dwt_comp(3), 0x200).unwrap();
        regs.write(offset::dwt_function(2), FUNC_START).unwrap();
        regs.program(&mut dwt, &mut mtb).unwrap();

        assert_eq!(
            dwt.evaluate(0x80),
            DwtSignals {
                start: false,
                stop: true
            }
        );
        assert_eq!(
            dwt.evaluate(0x180),
            DwtSignals {
                start: true,
                stop: false
            }
        );
    }

    #[test]
    fn flow_watermark_in_bytes() {
        let (mut dwt, mut mtb) = units();
        let mut regs = TraceRegFile::new();
        regs.write(offset::MTB_MASTER, MASTER_EN | MASTER_TSTARTEN)
            .unwrap();
        // Watermark at 16 bytes = 2 entries, enabled.
        regs.write(offset::MTB_FLOW, 16 | 1).unwrap();
        regs.program(&mut dwt, &mut mtb).unwrap();
        mtb.record(0, 4);
        assert!(!mtb.watermark_hit());
        mtb.record(8, 12);
        assert!(mtb.watermark_hit());
    }

    #[test]
    fn position_register_reflects_fill() {
        let (_, mut mtb) = units();
        mtb.set_master_trace(true);
        let regs = TraceRegFile::new();
        assert_eq!(regs.read(offset::MTB_POSITION, &mtb).unwrap(), 0);
        mtb.record(0, 4);
        mtb.record(8, 12);
        assert_eq!(regs.read(offset::MTB_POSITION, &mtb).unwrap(), 16);
    }

    #[test]
    fn bad_configurations_rejected() {
        let (mut dwt, mut mtb) = units();
        let mut regs = TraceRegFile::new();
        // Function on the odd comparator of a pair.
        regs.write(offset::dwt_function(1), FUNC_START).unwrap();
        assert!(matches!(
            regs.program(&mut dwt, &mut mtb),
            Err(ProgramError::OddComparatorFunction { index: 1 })
        ));
        regs.write(offset::dwt_function(1), FUNC_OFF).unwrap();

        // Empty range.
        regs.write(offset::dwt_comp(0), 0x100).unwrap();
        regs.write(offset::dwt_comp(1), 0x100).unwrap();
        regs.write(offset::dwt_function(0), FUNC_START).unwrap();
        assert!(matches!(
            regs.program(&mut dwt, &mut mtb),
            Err(ProgramError::BadRange { index: 0 })
        ));

        // Unknown offset.
        assert!(matches!(
            regs.write(0x99, 0),
            Err(ProgramError::UnknownRegister { offset: 0x99 })
        ));
        assert!(matches!(
            regs.read(0x99, &mtb),
            Err(ProgramError::UnknownRegister { offset: 0x99 })
        ));
        // MTB_POSITION is read-only.
        assert!(regs.write(offset::MTB_POSITION, 1).is_err());
    }

    #[test]
    fn reprogramming_replaces_old_ranges() {
        let (mut dwt, mut mtb) = units();
        let mut regs = TraceRegFile::new();
        regs.write(offset::dwt_comp(0), 0x000).unwrap();
        regs.write(offset::dwt_comp(1), 0x100).unwrap();
        regs.write(offset::dwt_function(0), FUNC_START).unwrap();
        regs.program(&mut dwt, &mut mtb).unwrap();
        assert!(dwt.evaluate(0x50).start);

        regs.write(offset::dwt_function(0), FUNC_OFF).unwrap();
        regs.program(&mut dwt, &mut mtb).unwrap();
        assert!(!dwt.evaluate(0x50).start);
        assert_eq!(dwt.comparators_in_use(), 0);
    }
}
