//! Streaming sub-path matcher — the device-side half of the
//! speculation dictionary (SpecCFA-style, §"sub-path speculation").
//!
//! The Secure World feeds every outgoing MTB transfer through a
//! [`SubPathMatcher`] before a report is signed. The matcher runs one
//! implicit DFA per dictionary entry: a bounded buffer holds the
//! transfers that still prefix-match at least one entry, and the
//! moment no entry can be extended the longest *completed* entry is
//! emitted as a compact `(at, id)` hit record while unmatched
//! transfers fall through verbatim. Matching is greedy-longest and
//! anchored: a new candidate set only opens when the buffer is empty,
//! which keeps the device-side cost `O(K · max_len)` per transfer with
//! no backtracking over emitted output.
//!
//! The matcher is deliberately ignorant of report formats and keys —
//! it maps a transfer sequence to (residual transfers, hit records)
//! and nothing else, so it lives here next to the MTB model it
//! filters.

use crate::mtb::TraceEntry;

/// One emitted dictionary hit: the entry `id` matched immediately
/// before residual-output index `at`.
///
/// `at` indexes the *compressed* transfer vector: all transfers of the
/// matched sub-path expand in place of the hit, before the residual
/// entry at `at` (several hits may share one `at` when matches are
/// back-to-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubPathHit {
    /// Residual-output index the hit expands before.
    pub at: u32,
    /// Dictionary entry id.
    pub id: u32,
}

/// Greedy streaming matcher over a fixed set of dictionary entries.
#[derive(Debug, Clone)]
pub struct SubPathMatcher {
    entries: Vec<Vec<TraceEntry>>,
    buf: Vec<TraceEntry>,
    out: Vec<TraceEntry>,
    hits: Vec<SubPathHit>,
}

impl SubPathMatcher {
    /// Creates a matcher for the given dictionary entries. Entries of
    /// length < 2 can never compress (a hit record is 9 wire bytes, a
    /// transfer 8) and are ignored.
    pub fn new(entries: Vec<Vec<TraceEntry>>) -> SubPathMatcher {
        SubPathMatcher {
            entries,
            buf: Vec::new(),
            out: Vec::new(),
            hits: Vec::new(),
        }
    }

    /// Feeds one outgoing transfer.
    pub fn feed(&mut self, t: TraceEntry) {
        self.buf.push(t);
        self.settle(false);
    }

    /// Flushes the pending buffer and returns the residual transfers
    /// plus the hit records, in stream order.
    pub fn finish(mut self) -> (Vec<TraceEntry>, Vec<SubPathHit>) {
        self.settle(true);
        (self.out, self.hits)
    }

    /// Resolves the buffer as far as the greedy policy allows. While
    /// any entry strictly extends the buffered prefix we wait for more
    /// input (`flush` forgoes that wait); otherwise the longest
    /// completed entry (ties → lowest id) is emitted and the match
    /// re-anchors, or the front transfer falls through to the residual
    /// output.
    fn settle(&mut self, flush: bool) {
        while !self.buf.is_empty() {
            if !flush
                && self
                    .entries
                    .iter()
                    .any(|e| e.len() > self.buf.len() && e[..self.buf.len()] == self.buf[..])
            {
                return;
            }
            let complete = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.len() >= 2 && self.buf.starts_with(e))
                .max_by(|(ia, ea), (ib, eb)| ea.len().cmp(&eb.len()).then(ib.cmp(ia)));
            if let Some((id, entry)) = complete {
                self.hits.push(SubPathHit {
                    at: self.out.len() as u32,
                    id: id as u32,
                });
                self.buf.drain(..entry.len());
            } else {
                let front = self.buf.remove(0);
                self.out.push(front);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(source: u32, dest: u32) -> TraceEntry {
        TraceEntry { source, dest }
    }

    fn run(
        entries: Vec<Vec<TraceEntry>>,
        input: &[TraceEntry],
    ) -> (Vec<TraceEntry>, Vec<SubPathHit>) {
        let mut m = SubPathMatcher::new(entries);
        for &e in input {
            m.feed(e);
        }
        m.finish()
    }

    #[test]
    fn no_entries_passes_through() {
        let input = [t(1, 2), t(3, 4)];
        let (out, hits) = run(vec![], &input);
        assert_eq!(out, input);
        assert!(hits.is_empty());
    }

    #[test]
    fn exact_repeated_match_compresses() {
        let body = vec![t(1, 2), t(3, 4)];
        let mut input = Vec::new();
        for _ in 0..3 {
            input.extend_from_slice(&body);
        }
        let (out, hits) = run(vec![body], &input);
        assert!(out.is_empty());
        assert_eq!(
            hits,
            vec![
                SubPathHit { at: 0, id: 0 },
                SubPathHit { at: 0, id: 0 },
                SubPathHit { at: 0, id: 0 },
            ]
        );
    }

    #[test]
    fn greedy_prefers_longest_entry() {
        let short = vec![t(1, 2), t(3, 4)];
        let long = vec![t(1, 2), t(3, 4), t(5, 6)];
        let (out, hits) = run(vec![short, long], &[t(1, 2), t(3, 4), t(5, 6), t(9, 9)]);
        assert_eq!(out, vec![t(9, 9)]);
        assert_eq!(hits, vec![SubPathHit { at: 0, id: 1 }]);
    }

    #[test]
    fn failed_extension_falls_back_to_completed_prefix() {
        // The long entry's prefix matches but its tail never arrives;
        // the short completed entry must still be emitted.
        let short = vec![t(1, 2), t(3, 4)];
        let long = vec![t(1, 2), t(3, 4), t(5, 6)];
        let (out, hits) = run(vec![short, long], &[t(1, 2), t(3, 4), t(7, 8)]);
        assert_eq!(out, vec![t(7, 8)]);
        assert_eq!(hits, vec![SubPathHit { at: 0, id: 0 }]);
    }

    #[test]
    fn partial_prefix_at_finish_falls_through() {
        let entry = vec![t(1, 2), t(3, 4), t(5, 6)];
        let (out, hits) = run(vec![entry], &[t(1, 2), t(3, 4)]);
        assert_eq!(out, vec![t(1, 2), t(3, 4)]);
        assert!(hits.is_empty());
    }

    #[test]
    fn unmatched_front_reanchors_the_window() {
        let entry = vec![t(1, 2), t(3, 4)];
        let (out, hits) = run(
            vec![entry],
            &[t(9, 9), t(1, 2), t(3, 4), t(9, 9), t(1, 2), t(3, 4)],
        );
        assert_eq!(out, vec![t(9, 9), t(9, 9)]);
        assert_eq!(
            hits,
            vec![SubPathHit { at: 1, id: 0 }, SubPathHit { at: 2, id: 0 }]
        );
    }

    #[test]
    fn single_transfer_entries_are_ignored() {
        let (out, hits) = run(vec![vec![t(1, 2)]], &[t(1, 2), t(1, 2)]);
        assert_eq!(out, vec![t(1, 2), t(1, 2)]);
        assert!(hits.is_empty());
    }

    #[test]
    fn tie_on_length_takes_lowest_id() {
        let a = vec![t(1, 2), t(3, 4)];
        let b = vec![t(1, 2), t(3, 4)];
        let (_, hits) = run(vec![a, b], &[t(1, 2), t(3, 4)]);
        assert_eq!(hits, vec![SubPathHit { at: 0, id: 0 }]);
    }
}
