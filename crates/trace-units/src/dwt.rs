//! Data Watchpoint and Trace (DWT) unit model.
//!
//! The Cortex-M33 DWT provides four comparators that can monitor the
//! program counter and signal other units. RAP-Track uses two comparator
//! *pairs* as PC-range matchers: one pair bounds the MTBAR and asserts
//! `MTB_TSTART`, the other bounds the MTBDR and asserts `MTB_TSTOP`
//! (paper §IV-B).

use std::fmt;

/// Number of hardware comparators in the unit.
pub const NUM_COMPARATORS: usize = 4;

/// What a matching comparator pair signals to the MTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeAction {
    /// Assert `MTB_TSTART` while the PC is inside the range.
    StartMtb,
    /// Assert `MTB_TSTOP` while the PC is inside the range.
    StopMtb,
}

/// A configured PC range watched by two comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcRange {
    /// Inclusive lower bound.
    pub base: u32,
    /// Exclusive upper bound.
    pub limit: u32,
    /// Signal asserted while the PC is inside `[base, limit)`.
    pub action: RangeAction,
}

impl PcRange {
    /// Whether `pc` falls inside the watched range.
    pub fn contains(&self, pc: u32) -> bool {
        pc >= self.base && pc < self.limit
    }
}

/// Signals the DWT asserts towards the MTB for the current PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DwtSignals {
    /// `MTB_TSTART` asserted.
    pub start: bool,
    /// `MTB_TSTOP` asserted.
    pub stop: bool,
}

/// Errors raised by DWT configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DwtError {
    /// All four comparators are already allocated.
    OutOfComparators,
    /// `base >= limit`.
    EmptyRange {
        /// The offending base.
        base: u32,
        /// The offending limit.
        limit: u32,
    },
}

impl fmt::Display for DwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DwtError::OutOfComparators => {
                write!(f, "all {NUM_COMPARATORS} DWT comparators are in use")
            }
            DwtError::EmptyRange { base, limit } => {
                write!(f, "empty PC range {base:#x}..{limit:#x}")
            }
        }
    }
}

impl std::error::Error for DwtError {}

/// The DWT unit: up to two PC ranges (four comparators).
///
/// ```
/// use trace_units::{Dwt, PcRange, RangeAction};
/// let mut dwt = Dwt::new();
/// dwt.watch_range(PcRange { base: 0x100, limit: 0x200, action: RangeAction::StartMtb })?;
/// assert!(dwt.evaluate(0x150).start);
/// assert!(!dwt.evaluate(0x250).start);
/// # Ok::<(), trace_units::DwtError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dwt {
    ranges: Vec<PcRange>,
}

impl Dwt {
    /// Creates a DWT with no comparators configured.
    pub fn new() -> Dwt {
        Dwt::default()
    }

    /// Allocates a comparator pair to watch `range`.
    ///
    /// # Errors
    ///
    /// [`DwtError::OutOfComparators`] when both pairs are in use and
    /// [`DwtError::EmptyRange`] when `base >= limit`.
    pub fn watch_range(&mut self, range: PcRange) -> Result<(), DwtError> {
        if range.base >= range.limit {
            return Err(DwtError::EmptyRange {
                base: range.base,
                limit: range.limit,
            });
        }
        if (self.ranges.len() + 1) * 2 > NUM_COMPARATORS {
            return Err(DwtError::OutOfComparators);
        }
        self.ranges.push(range);
        Ok(())
    }

    /// Releases all comparators.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Number of comparators currently allocated.
    pub fn comparators_in_use(&self) -> usize {
        self.ranges.len() * 2
    }

    /// The configured ranges.
    pub fn ranges(&self) -> &[PcRange] {
        &self.ranges
    }

    /// Evaluates the comparators against the current PC.
    pub fn evaluate(&self, pc: u32) -> DwtSignals {
        let mut signals = DwtSignals::default();
        for range in &self.ranges {
            if range.contains(pc) {
                match range.action {
                    RangeAction::StartMtb => signals.start = true,
                    RangeAction::StopMtb => signals.stop = true,
                }
            }
        }
        signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_matching() {
        let range = PcRange {
            base: 0x100,
            limit: 0x200,
            action: RangeAction::StartMtb,
        };
        assert!(range.contains(0x100));
        assert!(range.contains(0x1FE));
        assert!(!range.contains(0x200));
        assert!(!range.contains(0xFF));
    }

    #[test]
    fn two_ranges_exhaust_comparators() {
        let mut dwt = Dwt::new();
        let r = |base, action| PcRange {
            base,
            limit: base + 0x10,
            action,
        };
        dwt.watch_range(r(0x000, RangeAction::StopMtb)).unwrap();
        dwt.watch_range(r(0x100, RangeAction::StartMtb)).unwrap();
        assert_eq!(dwt.comparators_in_use(), 4);
        assert_eq!(
            dwt.watch_range(r(0x200, RangeAction::StartMtb)),
            Err(DwtError::OutOfComparators)
        );
        dwt.clear();
        assert_eq!(dwt.comparators_in_use(), 0);
    }

    #[test]
    fn empty_range_rejected() {
        let mut dwt = Dwt::new();
        assert!(matches!(
            dwt.watch_range(PcRange {
                base: 0x100,
                limit: 0x100,
                action: RangeAction::StartMtb
            }),
            Err(DwtError::EmptyRange { .. })
        ));
    }

    #[test]
    fn signals_reflect_membership() {
        let mut dwt = Dwt::new();
        dwt.watch_range(PcRange {
            base: 0x1000,
            limit: 0x2000,
            action: RangeAction::StopMtb,
        })
        .unwrap();
        dwt.watch_range(PcRange {
            base: 0x2000,
            limit: 0x3000,
            action: RangeAction::StartMtb,
        })
        .unwrap();
        assert_eq!(
            dwt.evaluate(0x1800),
            DwtSignals {
                start: false,
                stop: true
            }
        );
        assert_eq!(
            dwt.evaluate(0x2800),
            DwtSignals {
                start: true,
                stop: false
            }
        );
        assert_eq!(dwt.evaluate(0x4000), DwtSignals::default());
    }
}
