//! # trace-units — MTB and DWT hardware models
//!
//! Register-accurate behavioural models of the two commodity ARM tracing
//! extensions RAP-Track builds on:
//!
//! * [`Mtb`] — the Micro Trace Buffer: a circular SRAM trace of every
//!   non-sequential PC change executed while tracing is active, with
//!   `TSTARTEN` master enable, `TSTART`/`TSTOP` inputs, a configurable
//!   activation latency and the `MTB_FLOW` watermark debug event.
//! * [`Dwt`] — the Data Watchpoint and Trace unit: four PC comparators
//!   used as two range matchers that drive the MTB's start/stop inputs.
//! * [`TraceFabric`] — the wiring between them, stepped by the CPU.
//!
//! The paper trusts both units "to correctly implement their
//! specification" (§III); these models implement exactly the behaviour
//! the design relies on.

#![warn(missing_docs)]

mod dwt;
mod matcher;
mod mtb;
pub mod regs;

pub use dwt::{Dwt, DwtError, DwtSignals, PcRange, RangeAction, NUM_COMPARATORS};
pub use matcher::{SubPathHit, SubPathMatcher};
pub use mtb::{Mtb, MtbConfig, TraceEntry};
pub use regs::{ProgramError, TraceRegFile};

/// The DWT → MTB wiring, stepped once per executed instruction.
///
/// ```
/// use trace_units::{MtbConfig, PcRange, RangeAction, TraceFabric};
/// let mut fabric = TraceFabric::new(MtbConfig { capacity: 16, activation_delay: 0 });
/// fabric.dwt_mut().watch_range(PcRange {
///     base: 0x200, limit: 0x300, action: RangeAction::StartMtb,
/// })?;
/// fabric.pre_step(0x250);            // PC inside MTBAR: tracing on
/// fabric.on_branch(0x250, 0x100);    // recorded
/// assert_eq!(fabric.mtb().total_recorded(), 1);
/// fabric.pre_step(0x100);            // outside: no signals, state holds
/// # Ok::<(), trace_units::DwtError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceFabric {
    dwt: Dwt,
    mtb: Mtb,
    /// Signals asserted on the previous step, for edge-triggered
    /// comparator-match counting (the DWT asserts level signals; a
    /// "match" observability event is the rising edge).
    last_signals: DwtSignals,
}

impl TraceFabric {
    /// Creates a fabric with an MTB of the given configuration and an
    /// unconfigured DWT.
    pub fn new(config: MtbConfig) -> TraceFabric {
        TraceFabric {
            dwt: Dwt::new(),
            mtb: Mtb::new(config),
            last_signals: DwtSignals::default(),
        }
    }

    /// The DWT unit.
    pub fn dwt(&self) -> &Dwt {
        &self.dwt
    }

    /// Mutable access to the DWT (Secure-World configuration interface).
    pub fn dwt_mut(&mut self) -> &mut Dwt {
        &mut self.dwt
    }

    /// The MTB unit.
    pub fn mtb(&self) -> &Mtb {
        &self.mtb
    }

    /// Mutable access to the MTB (Secure-World configuration interface).
    pub fn mtb_mut(&mut self) -> &mut Mtb {
        &mut self.mtb
    }

    /// Called with the PC of the instruction about to execute:
    /// evaluates the DWT comparators and advances the MTB state machine.
    pub fn pre_step(&mut self, pc: u32) {
        let signals = self.dwt.evaluate(pc);
        // Count comparator matches on edges only: asserting `start`
        // across a whole MTBAR region is one match, not one per
        // instruction executed inside it.
        if signals.start && !self.last_signals.start {
            rap_obs::counter!("trace_dwt_start_matches_total").inc();
        }
        if signals.stop && !self.last_signals.stop {
            rap_obs::counter!("trace_dwt_stop_matches_total").inc();
        }
        self.last_signals = signals;
        self.mtb.tick(signals);
    }

    /// Called when the executed instruction changed the PC
    /// non-sequentially; records a packet if tracing is active.
    pub fn on_branch(&mut self, source: u32, dest: u32) -> bool {
        self.mtb.record(source, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end MTBAR/MTBDR semantics from the paper (§IV-B):
    /// transitions *into* the activation region are not recorded;
    /// transitions *out of* it are.
    #[test]
    fn mtbar_mtbdr_transition_semantics() {
        let mut fabric = TraceFabric::new(MtbConfig {
            capacity: 64,
            activation_delay: 0,
        });
        // MTBDR = [0x000, 0x100), MTBAR = [0x100, 0x200).
        fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: 0x000,
                limit: 0x100,
                action: RangeAction::StopMtb,
            })
            .unwrap();
        fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: 0x100,
                limit: 0x200,
                action: RangeAction::StartMtb,
            })
            .unwrap();

        // Executing in MTBDR: the branch into MTBAR is NOT recorded.
        fabric.pre_step(0x10);
        assert!(!fabric.on_branch(0x10, 0x100));

        // Executing in MTBAR: the branch back to MTBDR IS recorded.
        fabric.pre_step(0x100);
        assert!(fabric.on_branch(0x100, 0x20));

        let entries = fabric.mtb().entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].source, 0x100);
        assert_eq!(entries[0].dest, 0x20);
    }

    /// With a non-zero activation delay, the first instruction inside
    /// MTBAR is not yet traced — exactly why the linker pads trampoline
    /// heads with NOPs.
    #[test]
    fn activation_delay_requires_nop_padding() {
        let mut fabric = TraceFabric::new(MtbConfig {
            capacity: 64,
            activation_delay: 1,
        });
        fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: 0x100,
                limit: 0x200,
                action: RangeAction::StartMtb,
            })
            .unwrap();

        // First instruction in MTBAR (would-be branch): missed.
        fabric.pre_step(0x100);
        assert!(!fabric.on_branch(0x100, 0x40));
        // After one padding NOP the next instruction is traced.
        fabric.pre_step(0x102);
        assert!(fabric.on_branch(0x102, 0x40));
    }
}
