//! # rap-cli — the file-driven RAP-Track toolchain
//!
//! Everything the library pipeline does, driven by files, so the whole
//! paper workflow runs from a shell:
//!
//! ```text
//! rap link app.tasm -o app.img -m app.map     # offline phase
//! rap disasm app.img                          # inspect the layout
//! rap attest app.img app.map --chal 7 -o session.rpt
//! rap verify app.img app.map session.rpt --chal 7
//! ```
//!
//! The command implementations live here (library form, fully tested);
//! `main.rs` is a thin argv adapter.

#![warn(missing_docs)]

use std::fmt;

use armv8m_isa::{parse_module, Image};
use rap_link::{link, read_map, write_map, ClassifyOptions, LinkOptions, TransformOptions};
use rap_obs::Json;
use rap_serve::{AttestClient, ClientConfig, Server, ServerConfig};
use rap_track::{
    decode_stream, device_key, encode_stream, BatchOptions, CfaEngine, Challenge, EngineConfig,
    FleetJob, Verifier, VerifierStats,
};

/// A CLI-level failure, already formatted for the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> CliError {
                CliError(e.to_string())
            }
        })*
    };
}

from_error!(
    armv8m_isa::ParseError,
    armv8m_isa::AsmError,
    armv8m_isa::DecodeError,
    rap_link::LinkError,
    rap_link::MapFormatError,
    rap_track::WireError,
    rap_track::BuildError,
    rap_serve::ClientError,
    rap_serve::StartError,
    mcu_sim::ExecError,
    rap_obs::JsonError,
    std::io::Error,
);

/// Options for [`cmd_link`].
#[derive(Debug, Clone, Copy)]
pub struct LinkCmdOptions {
    /// Load/link base address.
    pub base: u32,
    /// Disable the §IV-D loop optimizations.
    pub no_loop_opt: bool,
    /// MTBAR stub NOP padding.
    pub padding: u32,
}

impl Default for LinkCmdOptions {
    fn default() -> LinkCmdOptions {
        LinkCmdOptions {
            base: 0,
            no_loop_opt: false,
            padding: 1,
        }
    }
}

/// `rap asm`: assembles text assembly into a raw image (no CFA).
///
/// Returns `(image bytes, human summary)`.
///
/// # Errors
///
/// Parse or assembly failures, formatted.
pub fn cmd_asm(source: &str, base: u32) -> Result<(Vec<u8>, String), CliError> {
    let module = parse_module(source)?;
    let image = module.assemble(base)?;
    let summary = format!(
        "assembled {} instructions, {} bytes at {:#010x}",
        image.instrs().len(),
        image.bytes().len(),
        base
    );
    Ok((image.bytes().to_vec(), summary))
}

/// `rap link`: runs the offline phase on text assembly.
///
/// Returns `(deployed image bytes, map text, human summary)`.
///
/// # Errors
///
/// Parse, classification or re-assembly failures, formatted.
pub fn cmd_link(
    source: &str,
    options: LinkCmdOptions,
) -> Result<(Vec<u8>, String, String), CliError> {
    let module = parse_module(source)?;
    let link_options = LinkOptions {
        classify: if options.no_loop_opt {
            ClassifyOptions {
                loop_opt: false,
                static_loop_elision: false,
            }
        } else {
            ClassifyOptions::default()
        },
        transform: TransformOptions {
            nop_padding: options.padding,
        },
    };
    let linked = link(&module, options.base, link_options)?;
    let summary = format!(
        "linked: {} -> {} bytes ({} trampolines, {} optimized loops)",
        linked.map.original_size,
        linked.image.bytes().len(),
        linked.map.site_count(),
        linked.map.loops_by_latch.len()
    );
    Ok((
        linked.image.bytes().to_vec(),
        write_map(&linked.map),
        summary,
    ))
}

/// `rap disasm`: disassembles a raw image.
///
/// # Errors
///
/// Decode failures, formatted.
pub fn cmd_disasm(image_bytes: &[u8], base: u32) -> Result<String, CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    Ok(image.disassemble())
}

/// `rap decompile`: re-emits a raw image as re-assemblable `.tasm`.
///
/// # Errors
///
/// Decode failures, formatted.
pub fn cmd_decompile(image_bytes: &[u8], base: u32) -> Result<String, CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    Ok(image.to_tasm())
}

/// `rap attest`: runs an attested execution and returns the encoded
/// report stream plus a summary.
///
/// # Errors
///
/// Decode, map or execution failures, formatted.
pub fn cmd_attest(
    image_bytes: &[u8],
    map_text: &str,
    base: u32,
    chal_seed: u64,
    key_seed: &str,
    watermark: Option<usize>,
) -> Result<(Vec<u8>, String), CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let engine = CfaEngine::new(device_key(key_seed));
    let mut machine = mcu_sim::Machine::new(image);
    let chal = Challenge::from_seed(chal_seed);
    let att = engine.attest(
        &mut machine,
        &map,
        chal,
        EngineConfig {
            watermark,
            ..EngineConfig::default()
        },
    )?;
    let summary = format!(
        "attested: {} instrs, {} cycles, {} report(s), CF_Log {} bytes",
        att.outcome.instrs,
        att.outcome.cycles,
        att.reports.len(),
        att.cflog_bytes()
    );
    Ok((encode_stream(&att.reports), summary))
}

/// `rap verify`: authenticates a report stream and reconstructs the
/// path; returns a human-readable verdict plus the verifier's
/// operational counters for the run (the command builds a fresh
/// [`Verifier`], so the stats cover exactly this verification).
///
/// # Errors
///
/// Only I/O-shaped failures (bad files) error out; a failed
/// *verification* is reported in the returned verdict string with
/// `ok == false`.
pub fn cmd_verify(
    image_bytes: &[u8],
    map_text: &str,
    report_bytes: &[u8],
    base: u32,
    chal_seed: u64,
    key_seed: &str,
) -> Result<(bool, String, VerifierStats), CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let reports = decode_stream(report_bytes)?;
    let verifier = Verifier::builder()
        .key(device_key(key_seed))
        .image(image)
        .map(map)
        .build()?;
    let (ok, verdict) = match verifier.verify(Challenge::from_seed(chal_seed), &reports) {
        Ok(path) => (
            true,
            format!(
                "OK: lossless path accepted ({} events, {} replay steps)",
                path.events.len(),
                path.steps
            ),
        ),
        Err(v) => (false, format!("REJECTED: {v}")),
    };
    Ok((ok, verdict, verifier.stats()))
}

/// `rap verify-fleet`: authenticates many report streams for one
/// deployed binary concurrently, one stream per input file. Returns
/// `(all accepted, human-readable per-device verdicts + totals,
/// verifier stats for the run)`.
///
/// All streams answer the same challenge round (one broadcast `--chal`)
/// and share the verifier's replay cache, so straight-line stretches
/// common to the fleet are decoded once.
///
/// # Errors
///
/// Only I/O-shaped failures (bad image, map or stream encodings) error
/// out; per-device verification failures are reported in the verdict
/// text with `ok == false`.
pub fn cmd_verify_fleet(
    image_bytes: &[u8],
    map_text: &str,
    named_streams: &[(String, Vec<u8>)],
    base: u32,
    chal_seed: u64,
    key_seed: &str,
    threads: usize,
) -> Result<(bool, String, VerifierStats), CliError> {
    use std::fmt::Write as _;

    if threads == 0 {
        return Err(CliError(
            "--threads must be >= 1 (omit the flag to use all cores)".into(),
        ));
    }
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let chal = Challenge::from_seed(chal_seed);
    let mut jobs = Vec::with_capacity(named_streams.len());
    for (name, bytes) in named_streams {
        jobs.push(FleetJob {
            device: name.clone(),
            chal,
            reports: decode_stream(bytes)?,
        });
    }

    let verifier = Verifier::builder()
        .key(device_key(key_seed))
        .image(image)
        .map(map)
        .build()?;
    // What the pool will actually run with (threads clamp to the job
    // count) — reported in the verdict, and recorded by `Fleet::run`
    // itself in the `fleet_effective_threads` / `fleet_chunk_size`
    // gauges so a `--metrics` capture carries it too.
    let (eff_threads, chunk) = rap_track::effective_batch_config(jobs.len(), threads);
    let start = std::time::Instant::now();
    let outcomes = verifier
        .fleet(BatchOptions::with_threads(threads))
        .run(jobs);
    let wall = start.elapsed();

    let mut out = String::new();
    let mut accepted = 0usize;
    for outcome in &outcomes {
        match &outcome.result {
            Ok(path) => {
                accepted += 1;
                let _ = writeln!(
                    out,
                    "OK       {}: {} events, {} replay steps ({:.1?})",
                    outcome.device,
                    path.events.len(),
                    path.steps,
                    outcome.wall
                );
            }
            Err(v) => {
                let _ = writeln!(
                    out,
                    "REJECTED {}: {v} ({:.1?})",
                    outcome.device, outcome.wall
                );
            }
        }
    }
    let stats = verifier.stats();
    let per_sec = if wall.as_secs_f64() > 0.0 {
        outcomes.len() as f64 / wall.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        out,
        "{accepted}/{} accepted in {wall:.1?} ({per_sec:.0} streams/sec, {eff_threads} threads, chunk {chunk})",
        outcomes.len()
    );
    let _ = writeln!(
        out,
        "replay cache: {} hits, {} misses ({:.0}% hit), {} cached + {} live steps",
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.cached_steps,
        stats.live_steps
    );
    Ok((accepted == outcomes.len(), out, stats))
}

/// Builds the `--metrics` artifact: the global registry's movement
/// since `baseline` (so concurrent history outside the command does not
/// leak in) plus the run's [`VerifierStats`], as pretty-printed JSON.
///
/// The top-level shape is `{ "metrics": <snapshot>, "verifier_stats":
/// {...} }`; [`cmd_stats`] renders it back for humans.
pub fn metrics_json(baseline: &rap_obs::Snapshot, stats: &VerifierStats) -> String {
    let delta = rap_obs::global().snapshot().diff(baseline);
    Json::obj([
        ("metrics", delta.to_json()),
        (
            "verifier_stats",
            Json::obj([
                ("cache_hits", Json::Uint(stats.cache_hits)),
                ("cache_misses", Json::Uint(stats.cache_misses)),
                ("cached_steps", Json::Uint(stats.cached_steps)),
                ("live_steps", Json::Uint(stats.live_steps)),
                ("jobs", Json::Uint(stats.jobs)),
                ("wall_ns", Json::Uint(stats.wall_ns)),
            ]),
        ),
    ])
    .to_pretty()
}

/// `rap stats`: renders a previously written `--metrics` JSON file (or
/// a bare registry snapshot) as a human-readable table.
///
/// # Errors
///
/// Malformed JSON or a snapshot with the wrong shape.
pub fn cmd_stats(json_text: &str) -> Result<String, CliError> {
    let doc = rap_obs::json::parse(json_text)?;
    let snap_json = doc.get("metrics").unwrap_or(&doc);
    let snap = rap_obs::Snapshot::from_json(snap_json)?;
    let mut out = snap.render();
    if let Some(vs) = doc.get("verifier_stats") {
        use std::fmt::Write as _;
        let field = |name: &str| vs.get(name).and_then(Json::as_u64).unwrap_or(0);
        let stats = VerifierStats {
            cache_hits: field("cache_hits"),
            cache_misses: field("cache_misses"),
            cached_steps: field("cached_steps"),
            live_steps: field("live_steps"),
            jobs: field("jobs"),
            wall_ns: field("wall_ns"),
        };
        let _ = writeln!(out, "verifier:");
        let _ = writeln!(
            out,
            "  {} job(s), mean {} ns/job ({:.0} jobs/busy-sec)",
            stats.jobs,
            stats.mean_job_ns(),
            stats.jobs_per_busy_sec()
        );
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses ({:.0}% hit), {} cached + {} live steps",
            stats.cache_hits,
            stats.cache_misses,
            stats.hit_rate() * 100.0,
            stats.cached_steps,
            stats.live_steps
        );
    }
    Ok(out)
}

/// `rap explain`: reports the offline phase's classification decisions
/// for a text-assembly program, including loop-rejection reasons.
///
/// # Errors
///
/// Parse or CFG failures, formatted.
pub fn cmd_explain(source: &str, options: LinkCmdOptions) -> Result<String, CliError> {
    let module = parse_module(source)?;
    let link_options = LinkOptions {
        classify: if options.no_loop_opt {
            ClassifyOptions {
                loop_opt: false,
                static_loop_elision: false,
            }
        } else {
            ClassifyOptions::default()
        },
        transform: TransformOptions {
            nop_padding: options.padding,
        },
    };
    let report = rap_link::explain(&module, link_options).map_err(|e| CliError(e.to_string()))?;
    Ok(report.to_string())
}

/// `rap inspect`: pretty-prints a map file.
///
/// # Errors
///
/// Map-format failures, formatted.
pub fn cmd_inspect(map_text: &str) -> Result<String, CliError> {
    let map = read_map(map_text)?;
    let mut out = String::new();
    if let (Some(dr), Some(ar)) = (map.mtbdr, map.mtbar) {
        out.push_str(&format!(
            "MTBDR [{:#010x}, {:#010x})  {} bytes\n",
            dr.start,
            dr.end,
            dr.len()
        ));
        out.push_str(&format!(
            "MTBAR [{:#010x}, {:#010x})  {} bytes\n",
            ar.start,
            ar.end,
            ar.len()
        ));
    }
    out.push_str(&format!(
        "{} trampoline sites, {} optimized loops, {} functions\n",
        map.site_count(),
        map.loops_by_latch.len(),
        map.funcs.len()
    ));
    Ok(out)
}

/// Options for `rap fuzz` (the argv-level mirror of
/// [`rap_fuzz::FuzzConfig`]).
#[derive(Debug, Clone)]
pub struct FuzzCmdOptions {
    /// Campaign seed.
    pub seed: u64,
    /// Number of generated programs.
    pub iters: u64,
    /// Arm the inverted sabotage oracle (self-test: the injected fault
    /// must be detected).
    pub sabotage: bool,
    /// Replay a single case from its printed case seed.
    pub replay: Option<u64>,
}

impl Default for FuzzCmdOptions {
    fn default() -> FuzzCmdOptions {
        let d = rap_fuzz::FuzzConfig::default();
        FuzzCmdOptions {
            seed: d.seed,
            iters: d.iters,
            sabotage: d.sabotage,
            replay: d.replay,
        }
    }
}

/// `rap fuzz`: runs a deterministic differential fuzzing campaign over
/// the transform/trace/verify pipeline (or replays one case).
///
/// Returns `(ok, human summary, JSON summary)`. Both renderings are
/// pure functions of the options — no timestamps, no wall-clock — so
/// two invocations with equal arguments produce byte-identical output
/// (the repro contract). Under `--sabotage` the success sense inverts:
/// `ok` means the injected fault *was* detected.
pub fn cmd_fuzz(options: &FuzzCmdOptions) -> (bool, String, String) {
    let cfg = rap_fuzz::FuzzConfig {
        seed: options.seed,
        iters: options.iters,
        sabotage: options.sabotage,
        replay: options.replay,
        ..rap_fuzz::FuzzConfig::default()
    };
    let summary = rap_fuzz::run(&cfg);
    (
        summary.ok(),
        summary.render(),
        summary.to_json().to_pretty(),
    )
}

/// Options for [`cmd_serve`].
#[derive(Debug, Clone)]
pub struct ServeCmdOptions {
    /// Load/link base address of the deployed image.
    pub base: u32,
    /// Device-key seed the fleet attests under.
    pub key_seed: String,
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Verification worker threads.
    pub threads: usize,
    /// Stop accepting and drain after this many connections (smoke
    /// tests); `None` serves until shutdown.
    pub limit: Option<u64>,
    /// Session secret for resumption-token MACs; `None` generates a
    /// random one (reported back so the operator can log it).
    pub secret: Option<String>,
    /// Per-connection pipelining window cap granted to devices.
    pub window: u16,
}

impl Default for ServeCmdOptions {
    fn default() -> ServeCmdOptions {
        ServeCmdOptions {
            base: 0,
            key_seed: "default-device".to_owned(),
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            limit: None,
            secret: None,
            window: 8,
        }
    }
}

/// 32 random bytes for the session secret: the OS RNG when available,
/// else a clock/pid-seeded SplitMix64 fill (still unguessable enough
/// for a dev instance; production passes `--secret`).
fn generate_session_secret() -> Vec<u8> {
    use std::io::Read as _;
    let mut buf = [0u8; 32];
    if std::fs::File::open("/dev/urandom")
        .and_then(|mut f| f.read_exact(&mut buf))
        .is_ok()
    {
        return buf.to_vec();
    }
    let mut state = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(std::process::id()) << 32);
    for chunk in buf.chunks_mut(8) {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
    }
    buf.to_vec()
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// `rap serve`: starts the networked attestation service for one
/// deployed binary. Returns the running [`Server`] (the caller prints
/// the bound address and joins or shuts it down), the shared
/// [`Verifier`] for end-of-run stats, and — when no `--secret` was
/// given — the hex of the generated session secret so the operator can
/// log it.
///
/// # Errors
///
/// Image/map decode failures, an empty `--secret`, and the bind
/// failure, formatted.
pub fn cmd_serve(
    image_bytes: &[u8],
    map_text: &str,
    options: &ServeCmdOptions,
) -> Result<(Server, Verifier, Option<String>), CliError> {
    let image = Image::from_bytes(options.base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let verifier = Verifier::builder()
        .key(device_key(&options.key_seed))
        .image(image)
        .map(map)
        .build()?;
    let (session_secret, generated) = match &options.secret {
        Some(s) => (s.as_bytes().to_vec(), None),
        None => {
            let bytes = generate_session_secret();
            let hex = hex_encode(&bytes);
            (bytes, Some(hex))
        }
    };
    let server = Server::start(
        verifier.clone(),
        options.addr.as_str(),
        ServerConfig {
            threads: options.threads.max(1),
            conn_limit: options.limit,
            window: options.window.max(1),
            session_secret,
            ..ServerConfig::default()
        },
    )?;
    Ok((server, verifier, generated))
}

/// Options for [`cmd_attest_remote`].
#[derive(Debug, Clone)]
pub struct AttestRemoteCmdOptions {
    /// Load/link base address of the deployed image.
    pub base: u32,
    /// Device-key seed to sign evidence with.
    pub key_seed: String,
    /// Server address (`host:port`).
    pub addr: String,
    /// Device name sent in `HELLO`.
    pub device: String,
    /// Challenge–response rounds to run on one connection.
    pub rounds: u32,
    /// Connect/busy retries before giving up.
    pub retries: u32,
    /// Partial-report watermark for the attested execution.
    pub watermark: Option<usize>,
    /// Rounds kept in flight at once (the requested pipeline window).
    pub window: u16,
    /// After the first batch of rounds, close the connection and run
    /// the same number again on a resumed session (no re-`HELLO`).
    pub resume: bool,
}

impl Default for AttestRemoteCmdOptions {
    fn default() -> AttestRemoteCmdOptions {
        AttestRemoteCmdOptions {
            base: 0,
            key_seed: "default-device".to_owned(),
            addr: String::new(),
            device: "device-0".to_owned(),
            rounds: 1,
            retries: 4,
            watermark: None,
            window: 1,
            resume: false,
        }
    }
}

/// Everything `run_remote_rounds` needs to produce evidence for a
/// challenge: the deployed image/map plus the prover's key and
/// watermark setting.
struct RemoteProver<'a> {
    image: &'a Image,
    map: &'a rap_link::LinkMap,
    key: &'a rap_track::Key,
    watermark: Option<usize>,
}

/// Runs `rounds` pipelined challenge–response rounds on `conn`,
/// appending one summary line per verdict (numbered from
/// `round_base`). Returns how many rounds were accepted.
fn run_remote_rounds(
    conn: &mut rap_serve::Connection,
    rounds: usize,
    round_base: u32,
    prover: &RemoteProver<'_>,
    out: &mut String,
) -> Result<u32, CliError> {
    use std::fmt::Write as _;

    let mut attest_err = None;
    let verdicts = conn.pipelined(rounds, |chal| {
        let engine = CfaEngine::new(prover.key.clone());
        let mut machine = mcu_sim::Machine::new(prover.image.clone());
        match engine.attest(
            &mut machine,
            prover.map,
            chal,
            EngineConfig {
                watermark: prover.watermark,
                ..EngineConfig::default()
            },
        ) {
            Ok(att) => att.reports,
            Err(e) => {
                // An empty stream is always rejected server-side;
                // surface the local execution failure to the user.
                attest_err = Some(e);
                Vec::new()
            }
        }
    })?;
    if let Some(e) = attest_err {
        return Err(CliError(format!("attested execution failed: {e}")));
    }
    let mut accepted = 0u32;
    for (i, verdict) in verdicts.iter().enumerate() {
        let round = round_base + i as u32;
        if verdict.accepted {
            accepted += 1;
            let _ = writeln!(
                out,
                "round {round}: OK ({} events, {} replay steps)",
                verdict.events, verdict.steps
            );
        } else {
            let _ = writeln!(out, "round {round}: REJECTED: {}", verdict.detail);
        }
    }
    Ok(accepted)
}

/// `rap attest-remote`: runs attested executions against a remote
/// `rap serve` instance — for each server challenge, executes the
/// application locally, signs the evidence, and reports the server's
/// verdict. `--window` keeps that many rounds in flight; `--resume`
/// closes the connection after the first batch and runs the same
/// number of rounds again on a resumed session (no re-`HELLO`).
/// Returns `(all rounds accepted, human summary)`.
///
/// # Errors
///
/// Image/map decode failures, transport failures, and protocol
/// violations, formatted. A *rejected verdict* is not an error — it is
/// reported in the summary with `ok == false`.
pub fn cmd_attest_remote(
    image_bytes: &[u8],
    map_text: &str,
    options: &AttestRemoteCmdOptions,
) -> Result<(bool, String), CliError> {
    use std::fmt::Write as _;

    let image = Image::from_bytes(options.base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let key = device_key(&options.key_seed);

    let client = AttestClient::new(
        options.addr.clone(),
        ClientConfig {
            retries: options.retries,
            window: options.window.max(1),
            ..ClientConfig::default()
        },
    );
    let mut conn = client.open(&options.device)?;

    let prover = RemoteProver {
        image: &image,
        map: &map,
        key: &key,
        watermark: options.watermark,
    };
    let mut out = String::new();
    let per_batch = options.rounds.max(1);
    let mut accepted = run_remote_rounds(&mut conn, per_batch as usize, 0, &prover, &mut out)?;
    let mut total = per_batch;
    if options.resume {
        let token = conn
            .close()
            .ok_or_else(|| CliError("server did not grant a resumption token".to_owned()))?;
        let mut conn = client.resume(&options.device, token)?;
        let _ = writeln!(
            out,
            "session resumed: running {per_batch} more round(s) without re-HELLO"
        );
        accepted += run_remote_rounds(&mut conn, per_batch as usize, per_batch, &prover, &mut out)?;
        total += per_batch;
    }
    let _ = writeln!(out, "{accepted}/{total} round(s) accepted");
    Ok((accepted == total, out))
}

/// A demonstration program used by tests and `rap demo`.
pub const DEMO_PROGRAM: &str = r"
; RAP-Track demo: a variable loop, a conditional and a call.
.func main
    movw r2, #6
    mov r0, r2
spin:
    subs r0, r0, #1
    cmp r0, #0
    bne spin
    cmp r2, #3
    ble small
    bl bump
small:
    halt
.func bump
    adds r7, r7, #1
    bx lr
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_and_disasm_roundtrip() {
        let (bytes, summary) = cmd_asm(DEMO_PROGRAM, 0).expect("assembles");
        assert!(summary.contains("assembled"));
        let listing = cmd_disasm(&bytes, 0).expect("disassembles");
        assert!(listing.contains("movw r2, #6"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn full_file_driven_pipeline() {
        let (img, map_text, summary) =
            cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).expect("links");
        assert!(summary.contains("trampolines"));

        let (reports, att_summary) =
            cmd_attest(&img, &map_text, 0, 7, "cli-test", None).expect("attests");
        assert!(att_summary.contains("report(s)"));

        let (ok, verdict, stats) =
            cmd_verify(&img, &map_text, &reports, 0, 7, "cli-test").expect("verifies");
        assert!(ok, "{verdict}");
        assert!(verdict.contains("OK"));
        assert_eq!(stats.jobs, 1);
        assert!(stats.cached_steps + stats.live_steps > 0);
    }

    #[test]
    fn verify_fleet_reports_per_device_verdicts() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (good, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None).unwrap();
        let (bad, _) = cmd_attest(&img, &map_text, 0, 8, "cli-test", None).unwrap();

        let streams = vec![
            ("alpha.rpt".to_owned(), good.clone()),
            ("bravo.rpt".to_owned(), good),
        ];
        let (ok, verdict, stats) =
            cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 2).expect("runs");
        assert!(ok, "{verdict}");
        assert!(verdict.contains("alpha.rpt"));
        assert!(verdict.contains("2/2 accepted"));
        assert!(verdict.contains("replay cache"));
        assert_eq!(stats.jobs, 2);

        let streams = vec![("charlie.rpt".to_owned(), bad)];
        let (ok, verdict, _) =
            cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 1).expect("runs");
        assert!(!ok);
        assert!(verdict.contains("REJECTED"));
    }

    #[test]
    fn verify_fleet_rejects_zero_threads_and_reports_effective_config() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (good, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None).unwrap();
        let streams = vec![("alpha.rpt".to_owned(), good)];

        let err = cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 0)
            .expect_err("--threads 0 must be rejected, not clamped");
        assert!(err.0.contains("--threads"), "unclear error: {}", err.0);

        // One job, 8 requested threads: the verdict reports the pool
        // the batch layer actually ran (clamped to the job count).
        let (ok, verdict, _) =
            cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 8).expect("runs");
        assert!(ok, "{verdict}");
        assert!(verdict.contains("1 threads, chunk 1"), "{verdict}");
        let snap = rap_obs::global().snapshot();
        assert_eq!(snap.gauge("fleet_effective_threads"), 1);
        assert_eq!(snap.gauge("fleet_chunk_size"), 1);
    }

    #[test]
    fn metrics_json_round_trips_through_stats() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None).unwrap();

        let baseline = rap_obs::global().snapshot();
        let (ok, _, stats) = cmd_verify(&img, &map_text, &reports, 0, 7, "cli-test").unwrap();
        assert!(ok);
        let json = metrics_json(&baseline, &stats);

        // The artifact embeds the run's VerifierStats verbatim.
        let doc = rap_obs::json::parse(&json).expect("parses");
        let vs = doc.get("verifier_stats").expect("has verifier_stats");
        assert_eq!(
            vs.get("jobs").and_then(rap_obs::Json::as_u64),
            Some(stats.jobs)
        );
        assert_eq!(
            vs.get("live_steps").and_then(rap_obs::Json::as_u64),
            Some(stats.live_steps)
        );

        // And `rap stats` renders it back for humans.
        let rendered = cmd_stats(&json).expect("renders");
        assert!(rendered.contains("verifier:"), "{rendered}");
        assert!(rendered.contains("cache:"), "{rendered}");
    }

    #[test]
    fn stats_rejects_malformed_json() {
        assert!(cmd_stats("{ not json").is_err());
        assert!(cmd_stats("[1, 2, 3]").is_err());
    }

    #[test]
    fn fuzz_is_deterministic_and_passes() {
        let options = FuzzCmdOptions {
            seed: 1,
            iters: 10,
            ..FuzzCmdOptions::default()
        };
        let (ok_a, text_a, json_a) = cmd_fuzz(&options);
        let (ok_b, text_b, json_b) = cmd_fuzz(&options);
        assert!(ok_a, "{text_a}");
        assert_eq!(ok_a, ok_b);
        assert_eq!(text_a, text_b, "summaries must be byte-identical");
        assert_eq!(json_a, json_b);
        assert!(text_a.contains("verdict: OK"));
        let doc = rap_obs::json::parse(&json_a).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("cases_run").and_then(Json::as_u64), Some(10));
    }

    #[test]
    fn fuzz_sabotage_fails_detectably_and_replays() {
        let (ok, text, json) = cmd_fuzz(&FuzzCmdOptions {
            seed: 3,
            iters: 20,
            sabotage: true,
            ..FuzzCmdOptions::default()
        });
        assert!(ok, "sabotage must be detected: {text}");
        assert!(text.contains("FAIL [sabotage]"), "{text}");
        assert!(text.contains("repro: rap fuzz --replay"), "{text}");

        // Pull the printed case seed out of the JSON and replay it.
        let doc = rap_obs::json::parse(&json).expect("valid JSON");
        let failures = doc.get("failures").and_then(Json::as_array).unwrap();
        let case_seed = failures[0].get("case_seed").and_then(Json::as_u64).unwrap();
        let (ok, text, _) = cmd_fuzz(&FuzzCmdOptions {
            replay: Some(case_seed),
            sabotage: true,
            ..FuzzCmdOptions::default()
        });
        assert!(ok, "replayed sabotage case must fail again: {text}");
        assert!(text.contains("FAIL [sabotage]"), "{text}");
    }

    #[test]
    fn serve_and_attest_remote_loopback() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();

        // Three connections: a benign device running a pipelined +
        // resumed session (two connections), then one signing with the
        // wrong key — after which the server drains on its own
        // (--limit 3).
        let options = ServeCmdOptions {
            key_seed: "cli-serve".to_owned(),
            threads: 2,
            limit: Some(3),
            ..ServeCmdOptions::default()
        };
        let (server, verifier, generated_secret) =
            cmd_serve(&img, &map_text, &options).expect("server starts");
        assert!(
            generated_secret.is_some_and(|hex| hex.len() == 64),
            "no --secret: a random one is generated and reported"
        );
        let addr = server.local_addr().to_string();

        let (ok, summary) = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                key_seed: "cli-serve".to_owned(),
                addr: addr.clone(),
                device: "benign".to_owned(),
                rounds: 2,
                window: 2,
                resume: true,
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect("benign rounds complete");
        assert!(ok, "{summary}");
        assert!(summary.contains("session resumed"), "{summary}");
        assert!(summary.contains("4/4 round(s) accepted"), "{summary}");

        let (ok, summary) = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                key_seed: "wrong-key".to_owned(),
                addr,
                device: "imposter".to_owned(),
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect("attack round completes (rejection is a verdict)");
        assert!(!ok, "{summary}");
        assert!(summary.contains("REJECTED"), "{summary}");

        let stats = server.join();
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.resumed, 1);
        assert_eq!(stats.verdicts_accepted, 4);
        assert_eq!(stats.verdicts_rejected, 1);
        assert!(verifier.stats().jobs >= 5);
    }

    #[test]
    fn attest_remote_reports_transport_failure() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let err = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                addr: "127.0.0.1:1".to_owned(), // nothing listens here
                retries: 0,
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect_err("refused connection is an error, not a verdict");
        assert!(!err.0.is_empty());
    }

    #[test]
    fn wrong_challenge_rejected() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None).unwrap();
        let (ok, verdict, _) = cmd_verify(&img, &map_text, &reports, 0, 8, "cli-test").unwrap();
        assert!(!ok);
        assert!(verdict.contains("REJECTED"));
    }

    #[test]
    fn wrong_key_rejected() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "device-a", None).unwrap();
        let (ok, verdict, _) = cmd_verify(&img, &map_text, &reports, 0, 7, "device-b").unwrap();
        assert!(!ok);
        assert!(verdict.contains("authentication"));
    }

    #[test]
    fn tampered_image_rejected_via_h_mem() {
        let (mut img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None).unwrap();
        // The verifier is handed a doctored binary.
        img[0] ^= 0x01;
        if let Ok((ok, _, _)) = cmd_verify(&img, &map_text, &reports, 0, 7, "cli-test") {
            assert!(!ok);
        } // (a decode error is an acceptable rejection too)
    }

    #[test]
    fn no_loop_opt_grows_the_log() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (opt_reports, _) = cmd_attest(&img, &map_text, 0, 7, "k", None).unwrap();

        let options = LinkCmdOptions {
            no_loop_opt: true,
            ..LinkCmdOptions::default()
        };
        let (img2, map2, _) = cmd_link(DEMO_PROGRAM, options).unwrap();
        let (raw_reports, _) = cmd_attest(&img2, &map2, 0, 7, "k", None).unwrap();
        assert!(raw_reports.len() > opt_reports.len());

        // Both verify against their own artifacts.
        assert!(
            cmd_verify(&img, &map_text, &opt_reports, 0, 7, "k")
                .unwrap()
                .0
        );
        assert!(cmd_verify(&img2, &map2, &raw_reports, 0, 7, "k").unwrap().0);
    }

    #[test]
    fn decompile_round_trips_through_asm() {
        let (img, _) = cmd_asm(DEMO_PROGRAM, 0).unwrap();
        let tasm = cmd_decompile(&img, 0).unwrap();
        let (img2, _) = cmd_asm(&tasm, 0).unwrap();
        assert_eq!(img, img2);
    }

    #[test]
    fn explain_reports_loop_decisions() {
        let out = cmd_explain(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        assert!(out.contains("functions:"));
        assert!(out.contains("LOGGED"), "{out}");
    }

    #[test]
    fn inspect_summarizes() {
        let (_, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let out = cmd_inspect(&map_text).unwrap();
        assert!(out.contains("MTBAR"));
        assert!(out.contains("trampoline sites"));
    }

    #[test]
    fn parse_errors_are_reported_with_location() {
        let err = cmd_asm("bogus r0, r1\n", 0).unwrap_err();
        assert!(err.0.contains("line 1"), "{err}");
    }
}
