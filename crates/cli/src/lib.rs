//! # rap-cli — the file-driven RAP-Track toolchain
//!
//! Everything the library pipeline does, driven by files, so the whole
//! paper workflow runs from a shell:
//!
//! ```text
//! rap link app.tasm -o app.img -m app.map     # offline phase
//! rap disasm app.img                          # inspect the layout
//! rap attest app.img app.map --chal 7 -o session.rpt
//! rap verify app.img app.map session.rpt --chal 7
//! ```
//!
//! The command implementations live here (library form, fully tested);
//! `main.rs` is a thin argv adapter.

#![warn(missing_docs)]

mod audit;
mod fleet;

pub use audit::{cmd_audit, cmd_audit_show, cmd_audit_tail, cmd_audit_verify};
pub use fleet::{
    cmd_fleet_admin, cmd_fleet_run, cmd_fleet_status, cmd_fleet_status_remote, FleetRunOptions,
};

use std::fmt;

use armv8m_isa::{parse_module, Image};
use rap_link::{link, read_map, write_map, ClassifyOptions, LinkOptions, TransformOptions};
use rap_obs::Json;
use rap_serve::{AdminClient, AttestClient, ClientConfig, Server, ServerConfig, StatsFormat};
use rap_track::{
    decode_stream, device_key, encode_stream, BatchOptions, CfaEngine, Challenge, DictParams,
    EngineConfig, FleetJob, SubPathDict, Verifier, VerifierStats,
};

/// A CLI-level failure, already formatted for the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> CliError {
                CliError(e.to_string())
            }
        })*
    };
}

from_error!(
    armv8m_isa::ParseError,
    armv8m_isa::AsmError,
    armv8m_isa::DecodeError,
    rap_link::LinkError,
    rap_link::MapFormatError,
    rap_track::WireError,
    rap_track::BuildError,
    rap_track::DictFormatError,
    rap_serve::ClientError,
    rap_serve::StartError,
    mcu_sim::ExecError,
    rap_obs::JsonError,
    std::io::Error,
);

/// Options for [`cmd_link`].
#[derive(Debug, Clone, Copy)]
pub struct LinkCmdOptions {
    /// Load/link base address.
    pub base: u32,
    /// Disable the §IV-D loop optimizations.
    pub no_loop_opt: bool,
    /// MTBAR stub NOP padding.
    pub padding: u32,
}

impl Default for LinkCmdOptions {
    fn default() -> LinkCmdOptions {
        LinkCmdOptions {
            base: 0,
            no_loop_opt: false,
            padding: 1,
        }
    }
}

/// `rap asm`: assembles text assembly into a raw image (no CFA).
///
/// Returns `(image bytes, human summary)`.
///
/// # Errors
///
/// Parse or assembly failures, formatted.
pub fn cmd_asm(source: &str, base: u32) -> Result<(Vec<u8>, String), CliError> {
    let module = parse_module(source)?;
    let image = module.assemble(base)?;
    let summary = format!(
        "assembled {} instructions, {} bytes at {:#010x}",
        image.instrs().len(),
        image.bytes().len(),
        base
    );
    Ok((image.bytes().to_vec(), summary))
}

/// `rap link`: runs the offline phase on text assembly.
///
/// Returns `(deployed image bytes, map text, human summary)`.
///
/// # Errors
///
/// Parse, classification or re-assembly failures, formatted.
pub fn cmd_link(
    source: &str,
    options: LinkCmdOptions,
) -> Result<(Vec<u8>, String, String), CliError> {
    let module = parse_module(source)?;
    let link_options = LinkOptions {
        classify: if options.no_loop_opt {
            ClassifyOptions {
                loop_opt: false,
                static_loop_elision: false,
            }
        } else {
            ClassifyOptions::default()
        },
        transform: TransformOptions {
            nop_padding: options.padding,
        },
    };
    let linked = link(&module, options.base, link_options)?;
    let summary = format!(
        "linked: {} -> {} bytes ({} trampolines, {} optimized loops)",
        linked.map.original_size,
        linked.image.bytes().len(),
        linked.map.site_count(),
        linked.map.loops_by_latch.len()
    );
    Ok((
        linked.image.bytes().to_vec(),
        write_map(&linked.map),
        summary,
    ))
}

/// `rap disasm`: disassembles a raw image.
///
/// # Errors
///
/// Decode failures, formatted.
pub fn cmd_disasm(image_bytes: &[u8], base: u32) -> Result<String, CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    Ok(image.disassemble())
}

/// `rap decompile`: re-emits a raw image as re-assemblable `.tasm`.
///
/// # Errors
///
/// Decode failures, formatted.
pub fn cmd_decompile(image_bytes: &[u8], base: u32) -> Result<String, CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    Ok(image.to_tasm())
}

/// Parses a `--dict` artifact, formatted for the user on failure.
fn parse_dict(text: &str) -> Result<SubPathDict, CliError> {
    SubPathDict::from_text(text).map_err(CliError::from)
}

/// `rap attest`: runs an attested execution and returns the encoded
/// report stream plus a summary. With `dict_text`, the device-side
/// sub-path matcher compresses recurring transfer runs into
/// dictionary-hit records before each report is signed.
///
/// # Errors
///
/// Decode, map, dictionary-format or execution failures, formatted.
pub fn cmd_attest(
    image_bytes: &[u8],
    map_text: &str,
    base: u32,
    chal_seed: u64,
    key_seed: &str,
    watermark: Option<usize>,
    dict_text: Option<&str>,
) -> Result<(Vec<u8>, String), CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let mut engine = CfaEngine::new(device_key(key_seed));
    if let Some(text) = dict_text {
        engine = engine.with_dict(parse_dict(text)?.entries().to_vec());
    }
    let mut machine = mcu_sim::Machine::new(image);
    let chal = Challenge::from_seed(chal_seed);
    let att = engine.attest(
        &mut machine,
        &map,
        chal,
        EngineConfig {
            watermark,
            ..EngineConfig::default()
        },
    )?;
    let dict_hits: usize = att.reports.iter().map(|r| r.log.dict_hits.len()).sum();
    let mut summary = format!(
        "attested: {} instrs, {} cycles, {} report(s), CF_Log {} bytes",
        att.outcome.instrs,
        att.outcome.cycles,
        att.reports.len(),
        att.cflog_bytes()
    );
    if dict_text.is_some() {
        summary.push_str(&format!(" ({dict_hits} dictionary hits)"));
    }
    Ok((encode_stream(&att.reports), summary))
}

/// `rap verify`: authenticates a report stream and reconstructs the
/// path; returns a human-readable verdict plus the verifier's
/// operational counters for the run (the command builds a fresh
/// [`Verifier`], so the stats cover exactly this verification).
///
/// # Errors
///
/// Only I/O-shaped failures (bad files) error out; a failed
/// *verification* is reported in the returned verdict string with
/// `ok == false`.
pub fn cmd_verify(
    image_bytes: &[u8],
    map_text: &str,
    report_bytes: &[u8],
    base: u32,
    chal_seed: u64,
    key_seed: &str,
    dict_text: Option<&str>,
) -> Result<(bool, String, VerifierStats), CliError> {
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let reports = decode_stream(report_bytes)?;
    let mut builder = Verifier::builder()
        .key(device_key(key_seed))
        .image(image)
        .map(map);
    if let Some(text) = dict_text {
        builder = builder.dict(parse_dict(text)?);
    }
    let verifier = builder.build()?;
    // Every verification seals a proof-carrying record; the OK/REJECTED
    // line is a view of it, and the `sealed:` line is the identity an
    // audit log or fleet transition would cite.
    let (record, result) =
        verifier.verify_record(key_seed, 0, Challenge::from_seed(chal_seed), &reports);
    let (ok, verdict) = match result {
        Ok(path) => (
            true,
            format!(
                "OK: lossless path accepted ({} events, {} replay steps)",
                path.events.len(),
                path.steps
            ),
        ),
        Err(v) => (false, format!("REJECTED: {v}")),
    };
    let verdict = format!("{verdict}\nsealed: {}", record.render());
    Ok((ok, verdict, verifier.stats()))
}

/// `rap verify-fleet`: authenticates many report streams for one
/// deployed binary concurrently, one stream per input file. Returns
/// `(all accepted, human-readable per-device verdicts + totals,
/// verifier stats for the run)`.
///
/// All streams answer the same challenge round (one broadcast `--chal`)
/// and share the verifier's replay cache, so straight-line stretches
/// common to the fleet are decoded once.
///
/// # Errors
///
/// Only I/O-shaped failures (bad image, map or stream encodings) error
/// out; per-device verification failures are reported in the verdict
/// text with `ok == false`.
#[allow(clippy::too_many_arguments)] // flag-per-argument mirrors the CLI surface
pub fn cmd_verify_fleet(
    image_bytes: &[u8],
    map_text: &str,
    named_streams: &[(String, Vec<u8>)],
    base: u32,
    chal_seed: u64,
    key_seed: &str,
    threads: usize,
    dict_text: Option<&str>,
) -> Result<(bool, String, VerifierStats), CliError> {
    use std::fmt::Write as _;

    if threads == 0 {
        return Err(CliError(
            "--threads must be >= 1 (omit the flag to use all cores)".into(),
        ));
    }
    let image = Image::from_bytes(base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let chal = Challenge::from_seed(chal_seed);
    let mut jobs = Vec::with_capacity(named_streams.len());
    for (name, bytes) in named_streams {
        jobs.push(FleetJob {
            device: name.clone(),
            chal,
            reports: decode_stream(bytes)?,
        });
    }

    let mut builder = Verifier::builder()
        .key(device_key(key_seed))
        .image(image)
        .map(map);
    if let Some(text) = dict_text {
        builder = builder.dict(parse_dict(text)?);
    }
    let verifier = builder.build()?;
    // What the pool will actually run with (threads clamp to the job
    // count) — reported in the verdict, and recorded by `Fleet::run`
    // itself in the `fleet_effective_threads` / `fleet_chunk_size`
    // gauges so a `--metrics` capture carries it too.
    let (eff_threads, chunk) = rap_track::effective_batch_config(jobs.len(), threads);
    let start = std::time::Instant::now();
    let outcomes = verifier
        .fleet(BatchOptions::with_threads(threads))
        .run(jobs);
    let wall = start.elapsed();

    let mut out = String::new();
    let mut accepted = 0usize;
    for outcome in &outcomes {
        match &outcome.result {
            Ok(path) => {
                accepted += 1;
                let _ = writeln!(
                    out,
                    "OK       {}: {} events, {} replay steps ({:.1?})",
                    outcome.device,
                    path.events.len(),
                    path.steps,
                    outcome.wall
                );
            }
            Err(v) => {
                let _ = writeln!(
                    out,
                    "REJECTED {}: {v} ({:.1?})",
                    outcome.device, outcome.wall
                );
            }
        }
    }
    let stats = verifier.stats();
    let per_sec = if wall.as_secs_f64() > 0.0 {
        outcomes.len() as f64 / wall.as_secs_f64()
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        out,
        "{accepted}/{} accepted in {wall:.1?} ({per_sec:.0} streams/sec, {eff_threads} threads, chunk {chunk})",
        outcomes.len()
    );
    let _ = writeln!(
        out,
        "replay cache: {} hits, {} misses ({:.0}% hit), {} cached + {} live steps",
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.cached_steps,
        stats.live_steps
    );
    Ok((accepted == outcomes.len(), out, stats))
}

/// Builds the `--metrics` artifact: the global registry's movement
/// since `baseline` (so concurrent history outside the command does not
/// leak in) plus the run's [`VerifierStats`], as pretty-printed JSON.
///
/// The top-level shape is `{ "metrics": <snapshot>, "verifier_stats":
/// {...} }`; [`cmd_stats`] renders it back for humans.
pub fn metrics_json(baseline: &rap_obs::Snapshot, stats: &VerifierStats) -> String {
    let delta = rap_obs::global().snapshot().diff(baseline);
    Json::obj([
        ("metrics", delta.to_json()),
        (
            "verifier_stats",
            Json::obj([
                ("cache_hits", Json::Uint(stats.cache_hits)),
                ("cache_misses", Json::Uint(stats.cache_misses)),
                ("cached_steps", Json::Uint(stats.cached_steps)),
                ("live_steps", Json::Uint(stats.live_steps)),
                ("jobs", Json::Uint(stats.jobs)),
                ("wall_ns", Json::Uint(stats.wall_ns)),
            ]),
        ),
    ])
    .to_pretty()
}

/// `rap stats`: renders a previously written `--metrics` JSON file (or
/// a bare registry snapshot) as a human-readable table.
///
/// # Errors
///
/// Malformed JSON or a snapshot with the wrong shape.
pub fn cmd_stats(json_text: &str) -> Result<String, CliError> {
    let doc = rap_obs::json::parse(json_text)?;
    let snap_json = doc.get("metrics").unwrap_or(&doc);
    let snap = rap_obs::Snapshot::from_json(snap_json)?;
    let mut out = snap.render();
    if let Some(vs) = doc.get("verifier_stats") {
        use std::fmt::Write as _;
        let field = |name: &str| vs.get(name).and_then(Json::as_u64).unwrap_or(0);
        let stats = VerifierStats {
            cache_hits: field("cache_hits"),
            cache_misses: field("cache_misses"),
            cached_steps: field("cached_steps"),
            live_steps: field("live_steps"),
            jobs: field("jobs"),
            wall_ns: field("wall_ns"),
        };
        let _ = writeln!(out, "verifier:");
        let _ = writeln!(
            out,
            "  {} job(s), mean {} ns/job ({:.0} jobs/busy-sec)",
            stats.jobs,
            stats.mean_job_ns(),
            stats.jobs_per_busy_sec()
        );
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses ({:.0}% hit), {} cached + {} live steps",
            stats.cache_hits,
            stats.cache_misses,
            stats.hit_rate() * 100.0,
            stats.cached_steps,
            stats.live_steps
        );
    }
    Ok(out)
}

/// `rap explain`: reports the offline phase's classification decisions
/// for a text-assembly program, including loop-rejection reasons.
///
/// # Errors
///
/// Parse or CFG failures, formatted.
pub fn cmd_explain(source: &str, options: LinkCmdOptions) -> Result<String, CliError> {
    let module = parse_module(source)?;
    let link_options = LinkOptions {
        classify: if options.no_loop_opt {
            ClassifyOptions {
                loop_opt: false,
                static_loop_elision: false,
            }
        } else {
            ClassifyOptions::default()
        },
        transform: TransformOptions {
            nop_padding: options.padding,
        },
    };
    let report = rap_link::explain(&module, link_options).map_err(|e| CliError(e.to_string()))?;
    Ok(report.to_string())
}

/// `rap inspect`: pretty-prints a map file.
///
/// # Errors
///
/// Map-format failures, formatted.
pub fn cmd_inspect(map_text: &str) -> Result<String, CliError> {
    let map = read_map(map_text)?;
    let mut out = String::new();
    if let (Some(dr), Some(ar)) = (map.mtbdr, map.mtbar) {
        out.push_str(&format!(
            "MTBDR [{:#010x}, {:#010x})  {} bytes\n",
            dr.start,
            dr.end,
            dr.len()
        ));
        out.push_str(&format!(
            "MTBAR [{:#010x}, {:#010x})  {} bytes\n",
            ar.start,
            ar.end,
            ar.len()
        ));
    }
    out.push_str(&format!(
        "{} trampoline sites, {} optimized loops, {} functions\n",
        map.site_count(),
        map.loops_by_latch.len(),
        map.funcs.len()
    ));
    Ok(out)
}

/// Options for `rap fuzz` (the argv-level mirror of
/// [`rap_fuzz::FuzzConfig`]).
#[derive(Debug, Clone)]
pub struct FuzzCmdOptions {
    /// Campaign seed.
    pub seed: u64,
    /// Number of generated programs.
    pub iters: u64,
    /// Arm the inverted sabotage oracle (self-test: the injected fault
    /// must be detected).
    pub sabotage: bool,
    /// Replay a single case from its printed case seed.
    pub replay: Option<u64>,
}

impl Default for FuzzCmdOptions {
    fn default() -> FuzzCmdOptions {
        let d = rap_fuzz::FuzzConfig::default();
        FuzzCmdOptions {
            seed: d.seed,
            iters: d.iters,
            sabotage: d.sabotage,
            replay: d.replay,
        }
    }
}

/// `rap fuzz`: runs a deterministic differential fuzzing campaign over
/// the transform/trace/verify pipeline (or replays one case).
///
/// Returns `(ok, human summary, JSON summary)`. Both renderings are
/// pure functions of the options — no timestamps, no wall-clock — so
/// two invocations with equal arguments produce byte-identical output
/// (the repro contract). Under `--sabotage` the success sense inverts:
/// `ok` means the injected fault *was* detected.
pub fn cmd_fuzz(options: &FuzzCmdOptions) -> (bool, String, String) {
    let cfg = rap_fuzz::FuzzConfig {
        seed: options.seed,
        iters: options.iters,
        sabotage: options.sabotage,
        replay: options.replay,
        ..rap_fuzz::FuzzConfig::default()
    };
    let summary = rap_fuzz::run(&cfg);
    (
        summary.ok(),
        summary.render(),
        summary.to_json().to_pretty(),
    )
}

/// Options for [`cmd_profile`].
#[derive(Debug, Clone)]
pub struct ProfileCmdOptions {
    /// Load/link base address.
    pub base: u32,
    /// Dictionary label (free text, recorded in the artifact).
    pub label: String,
    /// Keep at most this many entries (by wire bytes saved).
    pub top_k: usize,
    /// Minimum occurrences for a sub-path to qualify.
    pub min_support: u32,
    /// Longest sub-path considered (transfers).
    pub max_len: usize,
    /// Partial-report watermark for the profiling run.
    pub watermark: Option<usize>,
    /// Instruction budget for the profiling run; `None` keeps the
    /// engine default.
    pub max_instrs: Option<u64>,
}

impl Default for ProfileCmdOptions {
    fn default() -> ProfileCmdOptions {
        let params = DictParams::default();
        ProfileCmdOptions {
            base: 0,
            label: "workload".to_owned(),
            top_k: params.top_k,
            min_support: params.min_support,
            max_len: params.max_len,
            watermark: None,
            max_instrs: None,
        }
    }
}

/// `rap profile`: the offline profiling pass. Runs the deployed image
/// once in `mcu-sim`, mines the top-K recurring transfer sub-paths
/// from the resulting `CF_Log`, and returns the versioned dictionary
/// artifact (keyed to the image hash) plus a human summary with the
/// estimated compression.
///
/// The run is deterministic — fixed challenge, throwaway key — so the
/// same image, workload devices and parameters always produce a
/// byte-identical artifact.
///
/// # Errors
///
/// Decode, map or execution failures, formatted.
pub fn cmd_profile(
    image_bytes: &[u8],
    map_text: &str,
    options: &ProfileCmdOptions,
) -> Result<(String, String), CliError> {
    let image = Image::from_bytes(options.base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let engine = CfaEngine::new(device_key("rap-profile"));
    let mut machine = mcu_sim::Machine::new(image);
    let defaults = EngineConfig::default();
    let att = engine.attest(
        &mut machine,
        &map,
        Challenge::from_seed(0),
        EngineConfig {
            watermark: options.watermark,
            max_instrs: options.max_instrs.unwrap_or(defaults.max_instrs),
        },
    )?;
    let h_mem = att
        .reports
        .first()
        .map(|r| r.h_mem)
        .ok_or_else(|| CliError("profiling run produced no reports".into()))?;
    let log = att.combined_log();
    let params = DictParams {
        top_k: options.top_k,
        min_support: options.min_support,
        max_len: options.max_len,
    };
    let dict = SubPathDict::mine(&log, h_mem, &options.label, params);
    let (raw, compressed) = dict.estimate(&log.mtb);
    let saved = if raw > 0 {
        100.0 * (raw - compressed) as f64 / raw as f64
    } else {
        0.0
    };
    let summary = format!(
        "profiled `{}`: {} transfers, {} dictionary entries; est. CF_Log {} -> {} bytes ({saved:.0}% saved)",
        options.label,
        log.mtb.len(),
        dict.len(),
        raw,
        compressed,
    );
    Ok((dict.to_text(), summary))
}

/// Options for [`cmd_serve`].
#[derive(Debug, Clone)]
pub struct ServeCmdOptions {
    /// Load/link base address of the deployed image.
    pub base: u32,
    /// Device-key seed the fleet attests under.
    pub key_seed: String,
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Verification worker threads.
    pub threads: usize,
    /// Stop accepting and drain after this many connections (smoke
    /// tests); `None` serves until shutdown.
    pub limit: Option<u64>,
    /// Session secret for resumption-token MACs; `None` generates a
    /// random one (reported back so the operator can log it).
    pub secret: Option<String>,
    /// Per-connection pipelining window cap granted to devices.
    pub window: u16,
    /// Admin telemetry bind address (`--admin`); `None` leaves the
    /// telemetry plane off.
    pub admin: Option<String>,
    /// Slow-round exemplar threshold in milliseconds (`--slow-ms`);
    /// `None` keeps the server default. `0` retains every round —
    /// useful for smoke tests and demos.
    pub slow_ms: Option<u64>,
    /// Contents of a `--dict` artifact for this deployed image; devices
    /// may then submit dictionary-compressed report streams.
    pub dict: Option<String>,
    /// Path of the hash-chained audit log (`--audit-log`); every sealed
    /// verdict is appended, batched once per drain tick. `None` keeps
    /// auditing off.
    pub audit_log: Option<String>,
}

impl Default for ServeCmdOptions {
    fn default() -> ServeCmdOptions {
        ServeCmdOptions {
            base: 0,
            key_seed: "default-device".to_owned(),
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            limit: None,
            secret: None,
            window: 8,
            admin: None,
            slow_ms: None,
            dict: None,
            audit_log: None,
        }
    }
}

/// 32 random bytes for the session secret: the OS RNG when available,
/// else a clock/pid-seeded SplitMix64 fill (still unguessable enough
/// for a dev instance; production passes `--secret`).
fn generate_session_secret() -> Vec<u8> {
    use std::io::Read as _;
    let mut buf = [0u8; 32];
    if std::fs::File::open("/dev/urandom")
        .and_then(|mut f| f.read_exact(&mut buf))
        .is_ok()
    {
        return buf.to_vec();
    }
    let mut state = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(std::process::id()) << 32);
    for chunk in buf.chunks_mut(8) {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
    }
    buf.to_vec()
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// `rap serve`: starts the networked attestation service for one
/// deployed binary. Returns the running [`Server`] (the caller prints
/// the bound address and joins or shuts it down), the shared
/// [`Verifier`] for end-of-run stats, and — when no `--secret` was
/// given — the hex of the generated session secret so the operator can
/// log it.
///
/// # Errors
///
/// Image/map decode failures, an empty `--secret`, and the bind
/// failure, formatted.
pub fn cmd_serve(
    image_bytes: &[u8],
    map_text: &str,
    options: &ServeCmdOptions,
) -> Result<(Server, Verifier, Option<String>), CliError> {
    let image = Image::from_bytes(options.base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let mut builder = Verifier::builder()
        .key(device_key(&options.key_seed))
        .image(image)
        .map(map);
    if let Some(text) = &options.dict {
        builder = builder.dict(parse_dict(text)?);
    }
    let verifier = builder.build()?;
    let (session_secret, generated) = match &options.secret {
        Some(s) => (s.as_bytes().to_vec(), None),
        None => {
            let bytes = generate_session_secret();
            let hex = hex_encode(&bytes);
            (bytes, Some(hex))
        }
    };
    let defaults = ServerConfig::default();
    let server = Server::start(
        verifier.clone(),
        options.addr.as_str(),
        ServerConfig {
            threads: options.threads.max(1),
            conn_limit: options.limit,
            window: options.window.max(1),
            session_secret,
            admin_addr: options.admin.clone(),
            slow_round_threshold: options.slow_ms.map_or(
                defaults.slow_round_threshold,
                std::time::Duration::from_millis,
            ),
            audit_log: options.audit_log.as_ref().map(std::path::PathBuf::from),
            ..defaults
        },
    )?;
    Ok((server, verifier, generated))
}

/// Options for [`cmd_attest_remote`].
#[derive(Debug, Clone)]
pub struct AttestRemoteCmdOptions {
    /// Load/link base address of the deployed image.
    pub base: u32,
    /// Device-key seed to sign evidence with.
    pub key_seed: String,
    /// Server address (`host:port`).
    pub addr: String,
    /// Device name sent in `HELLO`.
    pub device: String,
    /// Challenge–response rounds to run on one connection.
    pub rounds: u32,
    /// Connect/busy retries before giving up.
    pub retries: u32,
    /// Partial-report watermark for the attested execution.
    pub watermark: Option<usize>,
    /// Rounds kept in flight at once (the requested pipeline window).
    pub window: u16,
    /// After the first batch of rounds, close the connection and run
    /// the same number again on a resumed session (no re-`HELLO`).
    pub resume: bool,
    /// Contents of a `--dict` artifact: evidence is dictionary-
    /// compressed before signing (the server must load the same
    /// dictionary).
    pub dict: Option<String>,
}

impl Default for AttestRemoteCmdOptions {
    fn default() -> AttestRemoteCmdOptions {
        AttestRemoteCmdOptions {
            base: 0,
            key_seed: "default-device".to_owned(),
            addr: String::new(),
            device: "device-0".to_owned(),
            rounds: 1,
            retries: 4,
            watermark: None,
            window: 1,
            resume: false,
            dict: None,
        }
    }
}

/// Everything `run_remote_rounds` needs to produce evidence for a
/// challenge: the deployed image/map plus the prover's key and
/// watermark setting.
struct RemoteProver<'a> {
    image: &'a Image,
    map: &'a rap_link::LinkMap,
    key: &'a rap_track::Key,
    watermark: Option<usize>,
    dict_entries: Option<&'a [Vec<trace_units::TraceEntry>]>,
}

/// Runs `rounds` pipelined challenge–response rounds on `conn`,
/// appending one summary line per verdict (numbered from
/// `round_base`). Returns how many rounds were accepted.
fn run_remote_rounds(
    conn: &mut rap_serve::Connection,
    rounds: usize,
    round_base: u32,
    prover: &RemoteProver<'_>,
    out: &mut String,
) -> Result<u32, CliError> {
    use std::fmt::Write as _;

    let mut attest_err = None;
    let verdicts = conn.pipelined(rounds, |chal| {
        let mut engine = CfaEngine::new(prover.key.clone());
        if let Some(entries) = prover.dict_entries {
            engine = engine.with_dict(entries.to_vec());
        }
        let mut machine = mcu_sim::Machine::new(prover.image.clone());
        match engine.attest(
            &mut machine,
            prover.map,
            chal,
            EngineConfig {
                watermark: prover.watermark,
                ..EngineConfig::default()
            },
        ) {
            Ok(att) => att.reports,
            Err(e) => {
                // An empty stream is always rejected server-side;
                // surface the local execution failure to the user.
                attest_err = Some(e);
                Vec::new()
            }
        }
    })?;
    if let Some(e) = attest_err {
        return Err(CliError(format!("attested execution failed: {e}")));
    }
    let mut accepted = 0u32;
    for (i, verdict) in verdicts.iter().enumerate() {
        let round = round_base + i as u32;
        if verdict.accepted {
            accepted += 1;
            let _ = writeln!(
                out,
                "round {round}: OK ({} events, {} replay steps)",
                verdict.events, verdict.steps
            );
        } else {
            let _ = writeln!(out, "round {round}: REJECTED: {}", verdict.detail);
        }
    }
    Ok(accepted)
}

/// `rap attest-remote`: runs attested executions against a remote
/// `rap serve` instance — for each server challenge, executes the
/// application locally, signs the evidence, and reports the server's
/// verdict. `--window` keeps that many rounds in flight; `--resume`
/// closes the connection after the first batch and runs the same
/// number of rounds again on a resumed session (no re-`HELLO`).
/// Returns `(all rounds accepted, human summary)`.
///
/// # Errors
///
/// Image/map decode failures, transport failures, and protocol
/// violations, formatted. A *rejected verdict* is not an error — it is
/// reported in the summary with `ok == false`.
pub fn cmd_attest_remote(
    image_bytes: &[u8],
    map_text: &str,
    options: &AttestRemoteCmdOptions,
) -> Result<(bool, String), CliError> {
    use std::fmt::Write as _;

    let image = Image::from_bytes(options.base, image_bytes.to_vec())?;
    let map = read_map(map_text)?;
    let key = device_key(&options.key_seed);

    let client = AttestClient::new(
        options.addr.clone(),
        ClientConfig {
            retries: options.retries,
            window: options.window.max(1),
            ..ClientConfig::default()
        },
    );
    let dict = options.dict.as_deref().map(parse_dict).transpose()?;
    let mut conn = client.open(&options.device)?;

    let prover = RemoteProver {
        image: &image,
        map: &map,
        key: &key,
        watermark: options.watermark,
        dict_entries: dict.as_ref().map(|d| d.entries()),
    };
    let mut out = String::new();
    let per_batch = options.rounds.max(1);
    let mut accepted = run_remote_rounds(&mut conn, per_batch as usize, 0, &prover, &mut out)?;
    let mut total = per_batch;
    if options.resume {
        let token = conn
            .close()
            .ok_or_else(|| CliError("server did not grant a resumption token".to_owned()))?;
        let mut conn = client.resume(&options.device, token)?;
        let _ = writeln!(
            out,
            "session resumed: running {per_batch} more round(s) without re-HELLO"
        );
        accepted += run_remote_rounds(&mut conn, per_batch as usize, per_batch, &prover, &mut out)?;
        total += per_batch;
    }
    let _ = writeln!(out, "{accepted}/{total} round(s) accepted");
    Ok((accepted == total, out))
}

/// Options for [`cmd_top`].
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Admin telemetry address (the `admin on ADDR` line `rap serve
    /// --admin` prints).
    pub addr: String,
    /// Poll interval between frames.
    pub interval: std::time::Duration,
    /// Number of frames to render; `0` runs until the process dies.
    pub iters: u64,
    /// Device-table rows shown (top-K slowest devices by p99).
    pub top_k: usize,
}

impl Default for TopOptions {
    fn default() -> TopOptions {
        TopOptions {
            addr: String::new(),
            interval: std::time::Duration::from_secs(1),
            iters: 0,
            top_k: 8,
        }
    }
}

/// One scrape of the admin endpoint: the telemetry JSON document plus
/// the slow-round exemplar document, both parsed.
#[derive(Debug, Clone)]
pub struct TopSample {
    /// The `STATS` (JSON format) reply: uptime, server counters,
    /// metrics snapshot, per-device table.
    pub stats: Json,
    /// The `EXEMPLARS` reply: the slow-round ring.
    pub exemplars: Json,
}

/// Fetches one [`TopSample`] from a server's admin endpoint.
///
/// # Errors
///
/// Transport failures and malformed replies, formatted.
pub fn scrape_admin(addr: &str) -> Result<TopSample, CliError> {
    let mut conn = AdminClient::new(addr).connect()?;
    let stats = rap_obs::json::parse(&conn.stats(StatsFormat::Json)?)?;
    let exemplars = rap_obs::json::parse(&conn.exemplars()?)?;
    Ok(TopSample { stats, exemplars })
}

/// Human-scale duration formatting for nanosecond values.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one `rap top` dashboard frame: interval-diffed counter
/// rates (when a previous sample and its age in seconds are given),
/// windowed round-latency quantiles, queue-depth gauges, the top-K
/// slowest devices by p99, and the most recent slow-round exemplars
/// with their stage span chains. Pure — all state comes in through the
/// samples, so tests can drive it directly.
///
/// # Errors
///
/// Samples missing the expected document shape, formatted.
pub fn render_top_frame(
    prev: Option<(&TopSample, f64)>,
    cur: &TopSample,
    top_k: usize,
) -> Result<String, CliError> {
    use std::fmt::Write as _;

    let uint = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    let metrics_of = |sample: &TopSample| -> Result<rap_obs::Snapshot, CliError> {
        let json = sample
            .stats
            .get("metrics")
            .ok_or_else(|| CliError("telemetry JSON has no `metrics` field".into()))?;
        Ok(rap_obs::Snapshot::from_json(json)?)
    };
    let snap = metrics_of(cur)?;
    let server = cur
        .stats
        .get("server")
        .ok_or_else(|| CliError("telemetry JSON has no `server` field".into()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "rap top — uptime {:.1}s",
        uint(&cur.stats, "uptime_ns") as f64 / 1e9
    );

    // Counter totals, with interval rates once two samples exist.
    let rated = |name: &str| -> String {
        let now = uint(server, name);
        match prev {
            Some((p, dt)) if dt > 0.0 => {
                let before = p.stats.get("server").map_or(0, |s| uint(s, name));
                format!("{now} ({:.1}/s)", now.saturating_sub(before) as f64 / dt)
            }
            _ => now.to_string(),
        }
    };
    let _ = writeln!(
        out,
        "rounds   {} ok, {} rejected",
        rated("verdicts_accepted"),
        rated("verdicts_rejected"),
    );
    let _ = writeln!(
        out,
        "conns    {} accepted, {} resumed, {} shed, {} error(s) sent",
        rated("accepted"),
        rated("resumed"),
        rated("shed"),
        rated("errors_sent"),
    );

    // Round latency over the window between the two samples (falls
    // back to the lifetime histogram on the first frame).
    let window = match prev {
        Some((p, _)) => snap.diff(&metrics_of(p)?),
        None => snap.clone(),
    };
    if let Some(h) = window.histogram("serve_round_latency_ns") {
        if h.count > 0 {
            let _ = writeln!(
                out,
                "latency  p50 {}, p99 {}, mean {} over {} round(s)",
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.mean() as u64),
                h.count
            );
        }
    }
    let _ = writeln!(
        out,
        "queues   accept {} / shard {}",
        snap.gauge("serve_accept_queue_depth"),
        snap.gauge("serve_shard_queue_depth"),
    );

    // Top-K slowest devices by bucket-estimated p99.
    if let Some(devices) = cur.stats.get("devices").and_then(Json::entries) {
        let mut rows: Vec<(&str, u64, u64, u64, u64)> = devices
            .iter()
            .map(|(name, d)| {
                (
                    name.as_str(),
                    uint(d, "rounds"),
                    uint(d, "rejects"),
                    uint(d, "resumes"),
                    uint(d, "p99_ns"),
                )
            })
            .collect();
        rows.sort_by(|a, b| b.4.cmp(&a.4).then(a.0.cmp(b.0)));
        if !rows.is_empty() {
            let _ = writeln!(
                out,
                "devices  ({} total, top {} by p99)",
                rows.len(),
                top_k.min(rows.len())
            );
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>8} {:>8} {:>10}",
                "device", "rounds", "rejects", "resumes", "p99"
            );
            for (name, rounds, rejects, resumes, p99) in rows.into_iter().take(top_k) {
                let _ = writeln!(
                    out,
                    "  {name:<24} {rounds:>8} {rejects:>8} {resumes:>8} {:>10}",
                    fmt_ns(p99)
                );
            }
        }
    }

    // The most recent slow-round exemplars, newest first, with the
    // accept→verdict span chain.
    let retained = uint(&cur.exemplars, "retained");
    let _ = writeln!(
        out,
        "slow     {} retained of {} round(s) seen (threshold {}, {} evicted)",
        retained,
        uint(&cur.exemplars, "rounds_seen"),
        fmt_ns(uint(&cur.exemplars, "threshold_ns")),
        uint(&cur.exemplars, "evicted"),
    );
    if let Some(exemplars) = cur.exemplars.get("exemplars").and_then(Json::as_array) {
        for ex in exemplars.iter().rev().take(3) {
            let spans = ex
                .get("spans")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|s| {
                    format!(
                        "{} {}",
                        s.get("stage").and_then(Json::as_str).unwrap_or("?"),
                        fmt_ns(uint(s, "dur_ns"))
                    )
                })
                .collect::<Vec<_>>()
                .join(" > ");
            let _ = writeln!(
                out,
                "  #{} {} {} [{}]: {spans}",
                uint(ex, "trace_id"),
                ex.get("device").and_then(Json::as_str).unwrap_or("?"),
                fmt_ns(uint(ex, "total_ns")),
                if ex.get("accepted") == Some(&Json::Bool(true)) {
                    "ok"
                } else {
                    "rejected"
                },
            );
        }
    }
    Ok(out)
}

/// `rap top`: polls a server's admin endpoint and renders a dashboard
/// frame per interval into `sink` (the binary clears the terminal
/// between frames; tests collect the strings).
///
/// # Errors
///
/// Scrape or render failures, formatted.
pub fn cmd_top(options: &TopOptions, mut sink: impl FnMut(&str)) -> Result<(), CliError> {
    let mut prev: Option<(TopSample, std::time::Instant)> = None;
    let mut frames = 0u64;
    loop {
        let cur = scrape_admin(&options.addr)?;
        let now = std::time::Instant::now();
        let age = prev
            .as_ref()
            .map(|(s, at)| (s, now.saturating_duration_since(*at).as_secs_f64()));
        let frame = render_top_frame(age, &cur, options.top_k)?;
        sink(&frame);
        prev = Some((cur, now));
        frames += 1;
        if options.iters != 0 && frames >= options.iters {
            return Ok(());
        }
        std::thread::sleep(options.interval);
    }
}

/// Prometheus text → `name -> value` for every metric the exposition
/// declares as `# TYPE ... counter` (histograms and gauges are
/// skipped: only counters are monotonic, which is what the smoke
/// check's sandwich relies on).
fn parse_prometheus_counters(text: &str) -> std::collections::BTreeMap<String, u64> {
    let mut declared = std::collections::BTreeSet::new();
    let mut out = std::collections::BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, "counter")) = rest.rsplit_once(' ') {
                declared.insert(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') || line.contains('{') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if declared.contains(name) {
                if let Ok(v) = value.parse::<u64>() {
                    out.insert(name.to_string(), v);
                }
            }
        }
    }
    out
}

/// `rap top ADDR --smoke OUT`: scrapes the admin endpoint four times —
/// Prometheus, JSON, Prometheus again, exemplars — and checks that the
/// two renderings agree: every counter present in both expositions
/// must satisfy `prom_before <= json <= prom_after` (the JSON scrape
/// happened between the two Prometheus ones, and counters are
/// monotonic). Returns `(ok, human summary, JSON artifact)`; CI stores
/// the artifact as `TELEMETRY_smoke.json`.
///
/// # Errors
///
/// Transport failures and malformed replies, formatted. A *failed
/// check* is not an error — it is reported with `ok == false`.
pub fn cmd_telemetry_smoke(addr: &str) -> Result<(bool, String, String), CliError> {
    use std::fmt::Write as _;

    let mut conn = AdminClient::new(addr).connect()?;
    let prom_before = conn.stats(StatsFormat::Prometheus)?;
    let json_body = conn.stats(StatsFormat::Json)?;
    let prom_after = conn.stats(StatsFormat::Prometheus)?;
    let exemplars = rap_obs::json::parse(&conn.exemplars()?)?;

    let doc = rap_obs::json::parse(&json_body)?;
    let snap = rap_obs::Snapshot::from_json(
        doc.get("metrics")
            .ok_or_else(|| CliError("telemetry JSON has no `metrics` field".into()))?,
    )?;
    let before = parse_prometheus_counters(&prom_before);
    let after = parse_prometheus_counters(&prom_after);

    let mut checked = 0u64;
    let mut mismatches = Vec::new();
    for (name, mid) in &snap.counters {
        let (Some(&lo), Some(&hi)) = (before.get(name), after.get(name)) else {
            continue;
        };
        checked += 1;
        if !(lo <= *mid && *mid <= hi) {
            mismatches.push(format!("{name}: prom {lo} / json {mid} / prom {hi}"));
        }
    }
    let uint = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    let devices = doc
        .get("devices")
        .and_then(Json::entries)
        .map_or(0, <[_]>::len) as u64;
    let ok = checked > 0 && mismatches.is_empty();

    let artifact = Json::obj([
        ("ok", Json::Bool(ok)),
        ("scrapes", Json::Uint(4)),
        ("counters_checked", Json::Uint(checked)),
        (
            "mismatches",
            Json::Arr(mismatches.iter().cloned().map(Json::Str).collect()),
        ),
        ("rounds_seen", Json::Uint(uint(&exemplars, "rounds_seen"))),
        (
            "exemplars_retained",
            Json::Uint(uint(&exemplars, "retained")),
        ),
        ("devices", Json::Uint(devices)),
    ])
    .to_pretty();

    let mut summary = format!(
        "telemetry smoke: {} counter(s) sandwich-checked across Prometheus/JSON, {} mismatch(es)\n",
        checked,
        mismatches.len()
    );
    for m in &mismatches {
        let _ = writeln!(summary, "  MISMATCH {m}");
    }
    let _ = writeln!(
        summary,
        "{} device(s), {} round(s) seen, {} exemplar(s) retained",
        devices,
        uint(&exemplars, "rounds_seen"),
        uint(&exemplars, "retained")
    );
    let _ = writeln!(summary, "verdict: {}", if ok { "OK" } else { "FAIL" });
    Ok((ok, summary, artifact))
}

/// `rap stats --watch ADDR`: one live frame — the server's metrics
/// snapshot rendered as the usual `rap stats` table, followed by the
/// per-device aggregate table (the binary loops on the interval).
///
/// # Errors
///
/// Transport failures and malformed replies, formatted.
pub fn cmd_stats_watch(addr: &str) -> Result<String, CliError> {
    use std::fmt::Write as _;

    let mut conn = AdminClient::new(addr).connect()?;
    let doc = rap_obs::json::parse(&conn.stats(StatsFormat::Json)?)?;
    let snap = rap_obs::Snapshot::from_json(
        doc.get("metrics")
            .ok_or_else(|| CliError("telemetry JSON has no `metrics` field".into()))?,
    )?;
    let mut out = snap.render();
    if let Some(devices) = doc.get("devices").and_then(Json::entries) {
        if !devices.is_empty() {
            let _ = writeln!(out, "devices:");
            for (name, d) in devices {
                let uint = |key: &str| d.get(key).and_then(Json::as_u64).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {name}: {} round(s), {} reject(s), {} resume(s), p99 {}",
                    uint("rounds"),
                    uint("rejects"),
                    uint("resumes"),
                    fmt_ns(uint("p99_ns"))
                );
            }
        }
    }
    Ok(out)
}

/// A demonstration program used by tests and `rap demo`.
pub const DEMO_PROGRAM: &str = r"
; RAP-Track demo: a variable loop, a conditional and a call.
.func main
    movw r2, #6
    mov r0, r2
spin:
    subs r0, r0, #1
    cmp r0, #0
    bne spin
    cmp r2, #3
    ble small
    bl bump
small:
    halt
.func bump
    adds r7, r7, #1
    bx lr
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_and_disasm_roundtrip() {
        let (bytes, summary) = cmd_asm(DEMO_PROGRAM, 0).expect("assembles");
        assert!(summary.contains("assembled"));
        let listing = cmd_disasm(&bytes, 0).expect("disassembles");
        assert!(listing.contains("movw r2, #6"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn full_file_driven_pipeline() {
        let (img, map_text, summary) =
            cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).expect("links");
        assert!(summary.contains("trampolines"));

        let (reports, att_summary) =
            cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).expect("attests");
        assert!(att_summary.contains("report(s)"));

        let (ok, verdict, stats) =
            cmd_verify(&img, &map_text, &reports, 0, 7, "cli-test", None).expect("verifies");
        assert!(ok, "{verdict}");
        assert!(verdict.contains("OK"));
        assert_eq!(stats.jobs, 1);
        assert!(stats.cached_steps + stats.live_steps > 0);
    }

    /// A general loop (internal conditional) logging one MTB entry per
    /// iteration — the shape dictionaries compress.
    const LOOPY_PROGRAM: &str = r"
.func main
    movw r0, #40
    movw r1, #0
loop:
    cmp r1, #100
    beq skip
    adds r1, r1, #1
skip:
    subs r0, r0, #1
    cmp r0, #0
    bne loop
    halt
";

    #[test]
    fn profile_dict_compresses_and_verifies() {
        let (img, map_text, _) = cmd_link(LOOPY_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (dict_text, summary) =
            cmd_profile(&img, &map_text, &ProfileCmdOptions::default()).expect("profiles");
        assert!(summary.contains("dictionary entries"), "{summary}");

        let (plain, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).unwrap();
        let (compressed, att_summary) =
            cmd_attest(&img, &map_text, 0, 7, "cli-test", None, Some(&dict_text)).unwrap();
        assert!(att_summary.contains("dictionary hits"), "{att_summary}");
        assert!(
            compressed.len() < plain.len(),
            "compressed stream ({}) not smaller than plain ({})",
            compressed.len(),
            plain.len()
        );

        // Without the dictionary the stream must reject typed, not panic.
        let (ok, verdict, _) =
            cmd_verify(&img, &map_text, &compressed, 0, 7, "cli-test", None).unwrap();
        assert!(!ok && verdict.contains("dictionary"), "{verdict}");
        // With it, the compressed stream verifies.
        let (ok, verdict, _) = cmd_verify(
            &img,
            &map_text,
            &compressed,
            0,
            7,
            "cli-test",
            Some(&dict_text),
        )
        .unwrap();
        assert!(ok, "{verdict}");
    }

    #[test]
    fn profile_artifact_is_deterministic() {
        let (img, map_text, _) = cmd_link(LOOPY_PROGRAM, LinkCmdOptions::default()).unwrap();
        let options = ProfileCmdOptions::default();
        let (a, _) = cmd_profile(&img, &map_text, &options).unwrap();
        let (b, _) = cmd_profile(&img, &map_text, &options).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn verify_fleet_reports_per_device_verdicts() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (good, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).unwrap();
        let (bad, _) = cmd_attest(&img, &map_text, 0, 8, "cli-test", None, None).unwrap();

        let streams = vec![
            ("alpha.rpt".to_owned(), good.clone()),
            ("bravo.rpt".to_owned(), good),
        ];
        let (ok, verdict, stats) =
            cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 2, None).expect("runs");
        assert!(ok, "{verdict}");
        assert!(verdict.contains("alpha.rpt"));
        assert!(verdict.contains("2/2 accepted"));
        assert!(verdict.contains("replay cache"));
        assert_eq!(stats.jobs, 2);

        let streams = vec![("charlie.rpt".to_owned(), bad)];
        let (ok, verdict, _) =
            cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 1, None).expect("runs");
        assert!(!ok);
        assert!(verdict.contains("REJECTED"));
    }

    #[test]
    fn verify_fleet_rejects_zero_threads_and_reports_effective_config() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (good, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).unwrap();
        let streams = vec![("alpha.rpt".to_owned(), good)];

        let err = cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 0, None)
            .expect_err("--threads 0 must be rejected, not clamped");
        assert!(err.0.contains("--threads"), "unclear error: {}", err.0);

        // One job, 8 requested threads: the verdict reports the pool
        // the batch layer actually ran (clamped to the job count).
        let (ok, verdict, _) =
            cmd_verify_fleet(&img, &map_text, &streams, 0, 7, "cli-test", 8, None).expect("runs");
        assert!(ok, "{verdict}");
        assert!(verdict.contains("1 threads, chunk 1"), "{verdict}");
        let snap = rap_obs::global().snapshot();
        assert_eq!(snap.gauge("fleet_effective_threads"), 1);
        assert_eq!(snap.gauge("fleet_chunk_size"), 1);
    }

    #[test]
    fn metrics_json_round_trips_through_stats() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).unwrap();

        let baseline = rap_obs::global().snapshot();
        let (ok, _, stats) = cmd_verify(&img, &map_text, &reports, 0, 7, "cli-test", None).unwrap();
        assert!(ok);
        let json = metrics_json(&baseline, &stats);

        // The artifact embeds the run's VerifierStats verbatim.
        let doc = rap_obs::json::parse(&json).expect("parses");
        let vs = doc.get("verifier_stats").expect("has verifier_stats");
        assert_eq!(
            vs.get("jobs").and_then(rap_obs::Json::as_u64),
            Some(stats.jobs)
        );
        assert_eq!(
            vs.get("live_steps").and_then(rap_obs::Json::as_u64),
            Some(stats.live_steps)
        );

        // And `rap stats` renders it back for humans.
        let rendered = cmd_stats(&json).expect("renders");
        assert!(rendered.contains("verifier:"), "{rendered}");
        assert!(rendered.contains("cache:"), "{rendered}");
    }

    #[test]
    fn stats_rejects_malformed_json() {
        assert!(cmd_stats("{ not json").is_err());
        assert!(cmd_stats("[1, 2, 3]").is_err());
    }

    #[test]
    fn fuzz_is_deterministic_and_passes() {
        let options = FuzzCmdOptions {
            seed: 1,
            iters: 10,
            ..FuzzCmdOptions::default()
        };
        let (ok_a, text_a, json_a) = cmd_fuzz(&options);
        let (ok_b, text_b, json_b) = cmd_fuzz(&options);
        assert!(ok_a, "{text_a}");
        assert_eq!(ok_a, ok_b);
        assert_eq!(text_a, text_b, "summaries must be byte-identical");
        assert_eq!(json_a, json_b);
        assert!(text_a.contains("verdict: OK"));
        let doc = rap_obs::json::parse(&json_a).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("cases_run").and_then(Json::as_u64), Some(10));
    }

    #[test]
    fn fuzz_sabotage_fails_detectably_and_replays() {
        let (ok, text, json) = cmd_fuzz(&FuzzCmdOptions {
            seed: 3,
            iters: 20,
            sabotage: true,
            ..FuzzCmdOptions::default()
        });
        assert!(ok, "sabotage must be detected: {text}");
        assert!(text.contains("FAIL [sabotage]"), "{text}");
        assert!(text.contains("repro: rap fuzz --replay"), "{text}");

        // Pull the printed case seed out of the JSON and replay it.
        let doc = rap_obs::json::parse(&json).expect("valid JSON");
        let failures = doc.get("failures").and_then(Json::as_array).unwrap();
        let case_seed = failures[0].get("case_seed").and_then(Json::as_u64).unwrap();
        let (ok, text, _) = cmd_fuzz(&FuzzCmdOptions {
            replay: Some(case_seed),
            sabotage: true,
            ..FuzzCmdOptions::default()
        });
        assert!(ok, "replayed sabotage case must fail again: {text}");
        assert!(text.contains("FAIL [sabotage]"), "{text}");
    }

    #[test]
    fn serve_and_attest_remote_loopback() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();

        // Three connections: a benign device running a pipelined +
        // resumed session (two connections), then one signing with the
        // wrong key — after which the server drains on its own
        // (--limit 3).
        let options = ServeCmdOptions {
            key_seed: "cli-serve".to_owned(),
            threads: 2,
            limit: Some(3),
            ..ServeCmdOptions::default()
        };
        let (server, verifier, generated_secret) =
            cmd_serve(&img, &map_text, &options).expect("server starts");
        assert!(
            generated_secret.is_some_and(|hex| hex.len() == 64),
            "no --secret: a random one is generated and reported"
        );
        let addr = server.local_addr().to_string();

        let (ok, summary) = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                key_seed: "cli-serve".to_owned(),
                addr: addr.clone(),
                device: "benign".to_owned(),
                rounds: 2,
                window: 2,
                resume: true,
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect("benign rounds complete");
        assert!(ok, "{summary}");
        assert!(summary.contains("session resumed"), "{summary}");
        assert!(summary.contains("4/4 round(s) accepted"), "{summary}");

        let (ok, summary) = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                key_seed: "wrong-key".to_owned(),
                addr,
                device: "imposter".to_owned(),
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect("attack round completes (rejection is a verdict)");
        assert!(!ok, "{summary}");
        assert!(summary.contains("REJECTED"), "{summary}");

        let stats = server.join();
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.resumed, 1);
        assert_eq!(stats.verdicts_accepted, 4);
        assert_eq!(stats.verdicts_rejected, 1);
        assert!(verifier.stats().jobs >= 5);
    }

    #[test]
    fn top_and_telemetry_smoke_against_live_server() {
        use std::time::{Duration, Instant};

        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let options = ServeCmdOptions {
            key_seed: "cli-top".to_owned(),
            threads: 2,
            admin: Some("127.0.0.1:0".to_owned()),
            slow_ms: Some(0), // every round qualifies as slow
            ..ServeCmdOptions::default()
        };
        let (server, _verifier, _) = cmd_serve(&img, &map_text, &options).expect("server starts");
        let addr = server.local_addr().to_string();
        let admin = server
            .admin_addr()
            .expect("admin listener bound")
            .to_string();

        let (ok, summary) = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                key_seed: "cli-top".to_owned(),
                addr,
                device: "top-device".to_owned(),
                rounds: 3,
                window: 2,
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect("rounds complete");
        assert!(ok, "{summary}");

        // Exemplar finalization lands just after the verdicts hit the
        // wire, so poll the smoke until the collector saw all rounds.
        let deadline = Instant::now() + Duration::from_secs(10);
        let (ok, summary, artifact) = loop {
            let result = cmd_telemetry_smoke(&admin).expect("smoke runs");
            let doc = rap_obs::json::parse(&result.2).unwrap();
            let seen = doc.get("rounds_seen").and_then(Json::as_u64).unwrap_or(0);
            if seen >= 3 || Instant::now() > deadline {
                break result;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(ok, "{summary}");
        let doc = rap_obs::json::parse(&artifact).expect("artifact parses");
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert!(doc.get("counters_checked").and_then(Json::as_u64).unwrap() > 0);
        assert!(
            doc.get("exemplars_retained")
                .and_then(Json::as_u64)
                .unwrap()
                >= 3
        );
        assert_eq!(doc.get("devices").and_then(Json::as_u64), Some(1));

        // Two dashboard frames; the second carries interval rates plus
        // the device table and exemplar span chains.
        let mut frames = Vec::new();
        cmd_top(
            &TopOptions {
                addr: admin.clone(),
                interval: Duration::from_millis(10),
                iters: 2,
                top_k: 4,
            },
            |frame| frames.push(frame.to_owned()),
        )
        .expect("top runs");
        assert_eq!(frames.len(), 2);
        let last = &frames[1];
        assert!(last.contains("rap top"), "{last}");
        assert!(last.contains("top-device"), "{last}");
        assert!(last.contains("/s)"), "interval rates rendered: {last}");
        assert!(last.contains("queues"), "{last}");
        assert!(
            last.contains("replay"),
            "exemplar span chain rendered: {last}"
        );

        // `rap stats --watch` renders the same document for humans.
        let watch = cmd_stats_watch(&admin).expect("watch frame renders");
        assert!(watch.contains("top-device"), "{watch}");
        assert!(watch.contains("counters:"), "{watch}");

        server.shutdown();
    }

    #[test]
    fn prometheus_counter_parse_skips_gauges_and_histograms() {
        let text = "\
# TYPE requests counter
requests 41
# TYPE depth gauge
depth 7
# TYPE lat histogram
lat_bucket{le=\"10\"} 3
lat_sum 12
lat_count 3
";
        let counters = parse_prometheus_counters(text);
        assert_eq!(counters.get("requests"), Some(&41));
        assert!(!counters.contains_key("depth"), "gauges are not monotonic");
        assert!(
            !counters.contains_key("lat_sum"),
            "histogram series skipped"
        );
        assert!(!counters.contains_key("lat_count"));
    }

    #[test]
    fn attest_remote_reports_transport_failure() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let err = cmd_attest_remote(
            &img,
            &map_text,
            &AttestRemoteCmdOptions {
                addr: "127.0.0.1:1".to_owned(), // nothing listens here
                retries: 0,
                ..AttestRemoteCmdOptions::default()
            },
        )
        .expect_err("refused connection is an error, not a verdict");
        assert!(!err.0.is_empty());
    }

    #[test]
    fn wrong_challenge_rejected() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).unwrap();
        let (ok, verdict, _) =
            cmd_verify(&img, &map_text, &reports, 0, 8, "cli-test", None).unwrap();
        assert!(!ok);
        assert!(verdict.contains("REJECTED"));
    }

    #[test]
    fn wrong_key_rejected() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "device-a", None, None).unwrap();
        let (ok, verdict, _) =
            cmd_verify(&img, &map_text, &reports, 0, 7, "device-b", None).unwrap();
        assert!(!ok);
        assert!(verdict.contains("authentication"));
    }

    #[test]
    fn tampered_image_rejected_via_h_mem() {
        let (mut img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (reports, _) = cmd_attest(&img, &map_text, 0, 7, "cli-test", None, None).unwrap();
        // The verifier is handed a doctored binary.
        img[0] ^= 0x01;
        if let Ok((ok, _, _)) = cmd_verify(&img, &map_text, &reports, 0, 7, "cli-test", None) {
            assert!(!ok);
        } // (a decode error is an acceptable rejection too)
    }

    #[test]
    fn no_loop_opt_grows_the_log() {
        let (img, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let (opt_reports, _) = cmd_attest(&img, &map_text, 0, 7, "k", None, None).unwrap();

        let options = LinkCmdOptions {
            no_loop_opt: true,
            ..LinkCmdOptions::default()
        };
        let (img2, map2, _) = cmd_link(DEMO_PROGRAM, options).unwrap();
        let (raw_reports, _) = cmd_attest(&img2, &map2, 0, 7, "k", None, None).unwrap();
        assert!(raw_reports.len() > opt_reports.len());

        // Both verify against their own artifacts.
        assert!(
            cmd_verify(&img, &map_text, &opt_reports, 0, 7, "k", None)
                .unwrap()
                .0
        );
        assert!(
            cmd_verify(&img2, &map2, &raw_reports, 0, 7, "k", None)
                .unwrap()
                .0
        );
    }

    #[test]
    fn decompile_round_trips_through_asm() {
        let (img, _) = cmd_asm(DEMO_PROGRAM, 0).unwrap();
        let tasm = cmd_decompile(&img, 0).unwrap();
        let (img2, _) = cmd_asm(&tasm, 0).unwrap();
        assert_eq!(img, img2);
    }

    #[test]
    fn explain_reports_loop_decisions() {
        let out = cmd_explain(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        assert!(out.contains("functions:"));
        assert!(out.contains("LOGGED"), "{out}");
    }

    #[test]
    fn inspect_summarizes() {
        let (_, map_text, _) = cmd_link(DEMO_PROGRAM, LinkCmdOptions::default()).unwrap();
        let out = cmd_inspect(&map_text).unwrap();
        assert!(out.contains("MTBAR"));
        assert!(out.contains("trampoline sites"));
    }

    #[test]
    fn parse_errors_are_reported_with_location() {
        let err = cmd_asm("bogus r0, r1\n", 0).unwrap_err();
        assert!(err.0.contains("line 1"), "{err}");
    }
}
