//! `rap audit` — offline tooling over the hash-chained verdict log
//! (library form).
//!
//! - `verify`: replay the chain, reporting either a clean summary or
//!   the typed *first break* with its byte offset; with `--key` the
//!   seal on every record is checked too (a re-signed splice with
//!   recomputed chain hashes is only catchable this way).
//! - `show`: render every record (oldest first), one line each.
//! - `tail`: render only the newest records.

use std::fmt::Write as _;

use rap_audit::{ChainEntry, ChainReport, ChainVerifier};
use rap_track::{device_key, short_hash_hex, verdict_seal_key};

use crate::CliError;

/// Derives the record seal key from a `--key` device seed (the same
/// derivation the verifier uses, so an operator who can start `rap
/// serve --key SEED` can audit its log).
fn seal_key_from_seed(seed: &str) -> Vec<u8> {
    verdict_seal_key(&device_key(seed))
}

fn scan(log_bytes: &[u8], key_seed: Option<&str>) -> (Vec<ChainEntry>, ChainReport) {
    let verifier = match key_seed {
        Some(seed) => ChainVerifier::with_seal_key(seal_key_from_seed(seed)),
        None => ChainVerifier::new(),
    };
    verifier.scan(log_bytes)
}

/// `rap audit verify`: replays the whole chain. Returns `(clean,
/// summary)` — `clean` is `false` on any break, and the summary names
/// the typed break and its byte offset.
pub fn cmd_audit_verify(log_bytes: &[u8], key_seed: Option<&str>) -> (bool, String) {
    let (_, report) = scan(log_bytes, key_seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "entries={} verified_bytes={} head={}",
        report.entries,
        report.verified_bytes,
        short_hash_hex(&report.head)
    );
    match &report.first_break {
        None => {
            let seals = if key_seed.is_some() {
                "chain and seals verified"
            } else {
                "chain verified (no --key: seals not checked)"
            };
            let _ = writeln!(out, "OK: {seals}");
            (true, out)
        }
        Some(b) => {
            let _ = writeln!(out, "BROKEN: {b}");
            (false, out)
        }
    }
}

/// `rap audit show`: renders every verified record, oldest first, one
/// line per entry (`#index [entry-hash] record`). A broken chain still
/// renders the clean prefix, then the break.
pub fn cmd_audit_show(log_bytes: &[u8], key_seed: Option<&str>) -> (bool, String) {
    render_entries(log_bytes, key_seed, None)
}

/// `rap audit tail`: like [`cmd_audit_show`] but only the newest
/// `count` records.
pub fn cmd_audit_tail(log_bytes: &[u8], key_seed: Option<&str>, count: usize) -> (bool, String) {
    render_entries(log_bytes, key_seed, Some(count))
}

fn render_entries(
    log_bytes: &[u8],
    key_seed: Option<&str>,
    newest: Option<usize>,
) -> (bool, String) {
    let (entries, report) = scan(log_bytes, key_seed);
    let skip = match newest {
        Some(n) => entries.len().saturating_sub(n),
        None => 0,
    };
    let mut out = String::new();
    for entry in &entries[skip..] {
        let _ = writeln!(
            out,
            "#{:<4} [{}] {}",
            entry.index,
            short_hash_hex(&entry.entry_hash),
            entry.record.render()
        );
    }
    match &report.first_break {
        None => (true, out),
        Some(b) => {
            let _ = writeln!(out, "BROKEN: {b}");
            (false, out)
        }
    }
}

/// Parses a `rap audit` invocation (`sub` plus the already-read log
/// bytes) — the argv adapter calls this.
///
/// # Errors
///
/// Unknown subcommands, formatted.
pub fn cmd_audit(
    sub: &str,
    log_bytes: &[u8],
    key_seed: Option<&str>,
    tail: usize,
) -> Result<(bool, String), CliError> {
    match sub {
        "verify" => Ok(cmd_audit_verify(log_bytes, key_seed)),
        "show" => Ok(cmd_audit_show(log_bytes, key_seed)),
        "tail" => Ok(cmd_audit_tail(log_bytes, key_seed, tail)),
        other => Err(CliError(format!("unknown audit subcommand `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_track::{VerdictDraft, VerdictRecord};

    fn log_bytes(records: usize) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("rap-cli-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{records}.ralog"));
        let mut log = rap_audit::AuditLog::create(&path).unwrap();
        let key = seal_key_from_seed("audit-cli");
        for seq in 0..records as u64 {
            log.append_record(&VerdictRecord::seal(
                &key,
                VerdictDraft {
                    device: format!("dev-{seq}"),
                    accepted: seq % 2 == 0,
                    seq,
                    kind: if seq % 2 == 0 {
                        String::new()
                    } else {
                        "return-mismatch".to_string()
                    },
                    ..VerdictDraft::default()
                },
            ));
        }
        log.flush().unwrap();
        std::fs::read(&path).unwrap()
    }

    #[test]
    fn verify_reports_clean_and_broken() {
        let bytes = log_bytes(3);
        let (ok, out) = cmd_audit_verify(&bytes, Some("audit-cli"));
        assert!(ok, "{out}");
        assert!(out.contains("entries=3"));
        assert!(out.contains("chain and seals verified"));

        let (ok, out) = cmd_audit_verify(&bytes, None);
        assert!(ok, "{out}");
        assert!(out.contains("seals not checked"));

        let mut tampered = bytes.clone();
        let mid = tampered.len() / 2;
        tampered[mid] ^= 1;
        let (ok, out) = cmd_audit_verify(&tampered, None);
        assert!(!ok);
        assert!(out.contains("BROKEN:"), "{out}");
    }

    #[test]
    fn wrong_key_is_a_bad_seal() {
        let bytes = log_bytes(2);
        let (ok, out) = cmd_audit_verify(&bytes, Some("not-the-seed"));
        assert!(!ok);
        assert!(out.contains("fails seal verification"), "{out}");
    }

    #[test]
    fn show_and_tail_render_records() {
        let bytes = log_bytes(5);
        let (ok, out) = cmd_audit_show(&bytes, Some("audit-cli"));
        assert!(ok, "{out}");
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("ACCEPT dev-0"), "{out}");
        assert!(out.contains("REJECT dev-1"), "{out}");

        let (ok, tail) = cmd_audit_tail(&bytes, None, 2);
        assert!(ok);
        assert_eq!(tail.lines().count(), 2);
        assert!(tail.starts_with("#3"), "{tail}");
    }

    #[test]
    fn unknown_subcommand_is_typed() {
        assert!(cmd_audit("frobnicate", &[], None, 0).is_err());
    }
}
