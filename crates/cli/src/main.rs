//! `rap` — the RAP-Track command-line toolchain (argv adapter over
//! [`rap_cli`]).

use std::fs;
use std::process::ExitCode;

use rap_cli::{CliError, LinkCmdOptions};

const USAGE: &str = "\
rap — RAP-Track toolchain (DAC 2025 reproduction)

USAGE:
  rap asm     <in.tasm> -o <out.img> [--base ADDR]
  rap link    <in.tasm> -o <out.img> -m <out.map> [--base ADDR]
              [--no-loop-opt] [--pad N]
  rap disasm  <img> [--base ADDR]
  rap decompile <img> [--base ADDR]   # emit re-assemblable .tasm
  rap attest  <img> <map> --chal N -o <out.rpt>
              [--base ADDR] [--key SEED] [--watermark N] [--dict DICT]
  rap verify  <img> <map> <rpt> --chal N [--base ADDR] [--key SEED]
              [--dict DICT] [--metrics OUT.json] [--trace OUT]
  rap verify-fleet <img> <map> <rpt>... --chal N [--base ADDR]
              [--key SEED] [--threads T] [--dict DICT]
              [--metrics OUT.json] [--trace OUT]
  rap profile <img> <map> -o <out.dict> [--base ADDR] [--label NAME]
              [--top-k K] [--min-support N] [--max-len L]
              [--watermark N] [--max-instrs N]   # mine a sub-path dict
  rap fuzz    [--seed N] [--iters K] [--json OUT.json] [--sabotage]
              [--replay CASE_SEED]    # differential fuzzing campaign
  rap serve   <img> <map> [--addr HOST:PORT] [--threads T] [--key SEED]
              [--limit N] [--secret S] [--window W] [--admin HOST:PORT]
              [--slow-ms N] [--dict DICT] [--metrics OUT.json]
              [--audit-log LOG] [--base ADDR]
  rap audit   verify <log> [--key SEED]   # replay the hash chain
  rap audit   show <log> [--key SEED]     # render every sealed verdict
  rap audit   tail <log> [--key SEED] [--last N]
  rap attest-remote <img> <map> --addr HOST:PORT [--device NAME]
              [--key SEED] [--rounds N] [--retries R] [--watermark N]
              [--window W] [--resume] [--dict DICT] [--base ADDR]
  rap top     <admin-addr> [--interval MS] [--iters N] [--k K]
              [--no-clear] [--smoke OUT.json]   # live dashboard
  rap fleet   run [--devices N] [--compromised K] [--flaky K]
              [--slots S] [--seed N] [--json OUT.json]
              # deterministic simulated fleet: compromise -> quarantine
  rap fleet   status <registry.json | admin-addr> [--json]
  rap fleet   quarantine <registry.json> <device>
  rap fleet   heal <registry.json> <device>
  rap stats   <metrics.json>          # render a --metrics artifact
  rap stats   --watch <admin-addr> [--interval MS] [--iters N]
  rap inspect <map>
  rap explain <in.tasm> [--no-loop-opt]
  rap demo    # print a sample .tasm program
";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = matches!(
                    name,
                    "base"
                        | "pad"
                        | "chal"
                        | "key"
                        | "watermark"
                        | "threads"
                        | "metrics"
                        | "trace"
                        | "seed"
                        | "iters"
                        | "replay"
                        | "json"
                        | "addr"
                        | "device"
                        | "limit"
                        | "rounds"
                        | "retries"
                        | "secret"
                        | "window"
                        | "admin"
                        | "slow-ms"
                        | "interval"
                        | "k"
                        | "smoke"
                        | "watch"
                        | "dict"
                        | "label"
                        | "top-k"
                        | "min-support"
                        | "max-len"
                        | "max-instrs"
                        | "devices"
                        | "compromised"
                        | "flaky"
                        | "slots"
                        | "audit-log"
                        | "last"
                ) || name == "o"
                    || name == "m";
                let value = if takes_value {
                    it.next().cloned()
                } else {
                    None
                };
                flags.push((name.to_owned(), value));
            } else if a == "-o" || a == "-m" {
                flags.push((a[1..].to_owned(), it.next().cloned()));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => {
                let parsed = if let Some(h) = v.strip_prefix("0x") {
                    u64::from_str_radix(h, 16)
                } else {
                    v.parse()
                };
                parsed.map_err(|_| CliError(format!("bad --{name} value `{v}`")))
            }
        }
    }
}

/// The `--metrics` / `--trace` outputs of a verify command: captured
/// before the run (registry baseline, collector enablement), written
/// after it — including on rejection, which is exactly when an operator
/// wants the numbers.
struct ObsOutputs {
    metrics_path: Option<String>,
    trace_path: Option<String>,
    baseline: rap_obs::Snapshot,
}

impl ObsOutputs {
    fn begin(args: &Args) -> ObsOutputs {
        let trace_path = args.flag("trace").map(str::to_owned);
        if trace_path.is_some() {
            rap_obs::enable_tracing(0);
        }
        ObsOutputs {
            metrics_path: args.flag("metrics").map(str::to_owned),
            trace_path,
            baseline: rap_obs::global().snapshot(),
        }
    }

    fn finish(self, stats: &rap_track::VerifierStats) -> Result<(), CliError> {
        if let Some(path) = &self.metrics_path {
            fs::write(path, rap_cli::metrics_json(&self.baseline, stats))?;
            eprintln!("metrics -> {path}");
        }
        if let Some(path) = &self.trace_path {
            rap_obs::disable_tracing();
            let events = rap_obs::drain_events();
            let body = if path.ends_with(".json") {
                rap_obs::trace::to_json(&events).to_pretty()
            } else {
                rap_obs::trace::render_text(&events)
            };
            fs::write(path, body)?;
            eprintln!("trace   -> {path} ({} events)", events.len());
        }
        Ok(())
    }
}

fn run() -> Result<(), CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return Err(CliError(USAGE.to_owned()));
    };
    let args = Args::parse(&argv[1..]);
    let base = args.num("base", 0)? as u32;
    let need = |n: usize| -> Result<(), CliError> {
        if args.positional.len() < n {
            Err(CliError(format!("missing arguments\n\n{USAGE}")))
        } else {
            Ok(())
        }
    };

    match cmd.as_str() {
        "asm" => {
            need(1)?;
            let source = fs::read_to_string(&args.positional[0])?;
            let (bytes, summary) = rap_cli::cmd_asm(&source, base)?;
            let out = args
                .flag("o")
                .ok_or_else(|| CliError("missing -o <out.img>".into()))?;
            fs::write(out, bytes)?;
            println!("{summary} -> {out}");
        }
        "link" => {
            need(1)?;
            let source = fs::read_to_string(&args.positional[0])?;
            let options = LinkCmdOptions {
                base,
                no_loop_opt: args.has("no-loop-opt"),
                padding: args.num("pad", 1)? as u32,
            };
            let (bytes, map_text, summary) = rap_cli::cmd_link(&source, options)?;
            let out = args
                .flag("o")
                .ok_or_else(|| CliError("missing -o <out.img>".into()))?;
            let map_out = args
                .flag("m")
                .ok_or_else(|| CliError("missing -m <out.map>".into()))?;
            fs::write(out, bytes)?;
            fs::write(map_out, map_text)?;
            println!("{summary} -> {out}, {map_out}");
        }
        "disasm" => {
            need(1)?;
            let bytes = fs::read(&args.positional[0])?;
            print!("{}", rap_cli::cmd_disasm(&bytes, base)?);
        }
        "decompile" => {
            need(1)?;
            let bytes = fs::read(&args.positional[0])?;
            print!("{}", rap_cli::cmd_decompile(&bytes, base)?);
        }
        "attest" => {
            need(2)?;
            let img = fs::read(&args.positional[0])?;
            let map = fs::read_to_string(&args.positional[1])?;
            let chal = args.num("chal", 0)?;
            let key = args.flag("key").unwrap_or("default-device");
            let watermark = args
                .flag("watermark")
                .map(|w| {
                    w.parse::<usize>()
                        .map_err(|_| CliError(format!("bad --watermark `{w}`")))
                })
                .transpose()?;
            let dict = args.flag("dict").map(fs::read_to_string).transpose()?;
            let (stream, summary) =
                rap_cli::cmd_attest(&img, &map, base, chal, key, watermark, dict.as_deref())?;
            let out = args
                .flag("o")
                .ok_or_else(|| CliError("missing -o <out.rpt>".into()))?;
            fs::write(out, stream)?;
            println!("{summary} -> {out}");
        }
        "profile" => {
            need(2)?;
            let img = fs::read(&args.positional[0])?;
            let map = fs::read_to_string(&args.positional[1])?;
            let defaults = rap_cli::ProfileCmdOptions::default();
            let options = rap_cli::ProfileCmdOptions {
                base,
                label: args
                    .flag("label")
                    .unwrap_or(defaults.label.as_str())
                    .to_owned(),
                top_k: args.num("top-k", defaults.top_k as u64)? as usize,
                min_support: args.num("min-support", u64::from(defaults.min_support))? as u32,
                max_len: args.num("max-len", defaults.max_len as u64)? as usize,
                watermark: args
                    .flag("watermark")
                    .map(|w| {
                        w.parse::<usize>()
                            .map_err(|_| CliError(format!("bad --watermark `{w}`")))
                    })
                    .transpose()?,
                max_instrs: if args.has("max-instrs") {
                    Some(args.num("max-instrs", 0)?)
                } else {
                    None
                },
            };
            let (artifact, summary) = rap_cli::cmd_profile(&img, &map, &options)?;
            let out = args
                .flag("o")
                .ok_or_else(|| CliError("missing -o <out.dict>".into()))?;
            fs::write(out, artifact)?;
            println!("{summary} -> {out}");
        }
        "verify" => {
            need(3)?;
            let img = fs::read(&args.positional[0])?;
            let map = fs::read_to_string(&args.positional[1])?;
            let rpt = fs::read(&args.positional[2])?;
            let chal = args.num("chal", 0)?;
            let key = args.flag("key").unwrap_or("default-device");
            let dict = args.flag("dict").map(fs::read_to_string).transpose()?;
            let obs = ObsOutputs::begin(&args);
            let (ok, verdict, stats) =
                rap_cli::cmd_verify(&img, &map, &rpt, base, chal, key, dict.as_deref())?;
            obs.finish(&stats)?;
            println!("{verdict}");
            if !ok {
                std::process::exit(1);
            }
        }
        "verify-fleet" => {
            need(3)?;
            let img = fs::read(&args.positional[0])?;
            let map = fs::read_to_string(&args.positional[1])?;
            let mut streams = Vec::new();
            for path in &args.positional[2..] {
                streams.push((path.clone(), fs::read(path)?));
            }
            let chal = args.num("chal", 0)?;
            let key = args.flag("key").unwrap_or("default-device");
            // Absent flag means "use every core"; an explicit value is
            // passed through verbatim so `--threads 0` is *rejected*
            // downstream instead of silently clamped.
            let threads = if args.has("threads") {
                args.num("threads", 0)? as usize
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            };
            let dict = args.flag("dict").map(fs::read_to_string).transpose()?;
            let obs = ObsOutputs::begin(&args);
            let (ok, verdict, stats) = rap_cli::cmd_verify_fleet(
                &img,
                &map,
                &streams,
                base,
                chal,
                key,
                threads,
                dict.as_deref(),
            )?;
            obs.finish(&stats)?;
            print!("{verdict}");
            if !ok {
                std::process::exit(1);
            }
        }
        "fuzz" => {
            let defaults = rap_cli::FuzzCmdOptions::default();
            let options = rap_cli::FuzzCmdOptions {
                seed: args.num("seed", defaults.seed)?,
                iters: args.num("iters", defaults.iters)?,
                sabotage: args.has("sabotage"),
                replay: if args.has("replay") {
                    Some(args.num("replay", 0)?)
                } else {
                    None
                },
            };
            let (ok, summary, json) = rap_cli::cmd_fuzz(&options);
            if let Some(path) = args.flag("json") {
                fs::write(path, json)?;
                // stderr, so stdout stays byte-identical across runs.
                eprintln!("summary -> {path}");
            }
            print!("{summary}");
            if !ok {
                std::process::exit(1);
            }
        }
        "serve" => {
            need(2)?;
            let img = fs::read(&args.positional[0])?;
            let map = fs::read_to_string(&args.positional[1])?;
            let options = rap_cli::ServeCmdOptions {
                base,
                key_seed: args.flag("key").unwrap_or("default-device").to_owned(),
                addr: args.flag("addr").unwrap_or("127.0.0.1:0").to_owned(),
                threads: args.num("threads", 4)?.max(1) as usize,
                limit: if args.has("limit") {
                    Some(args.num("limit", 0)?)
                } else {
                    None
                },
                secret: args.flag("secret").map(str::to_owned),
                window: args.num("window", 8)?.min(u16::MAX as u64) as u16,
                admin: args.flag("admin").map(str::to_owned),
                slow_ms: if args.has("slow-ms") {
                    Some(args.num("slow-ms", 0)?)
                } else {
                    None
                },
                dict: args.flag("dict").map(fs::read_to_string).transpose()?,
                audit_log: args.flag("audit-log").map(str::to_owned),
            };
            let obs = ObsOutputs::begin(&args);
            let (server, verifier, generated_secret) = rap_cli::cmd_serve(&img, &map, &options)?;
            if let Some(hex) = generated_secret {
                // No --secret given: log the generated one so resumed
                // sessions survive an operator-driven restart.
                println!("session secret (generated): {hex}");
            }
            // Scripts parse this line to learn the ephemeral port.
            println!("listening on {}", server.local_addr());
            if let Some(admin) = server.admin_addr() {
                // And this one for the telemetry plane (`rap top`).
                println!("admin on {admin}");
            }
            use std::io::Write as _;
            std::io::stdout().flush()?;
            // With --limit the accept loop drains on its own; without,
            // this joins until the process is killed.
            let stats = server.join();
            println!(
                "served {} connection(s): {} accepted, {} rejected, {} shed, {} error(s)",
                stats.accepted,
                stats.verdicts_accepted,
                stats.verdicts_rejected,
                stats.shed,
                stats.errors_sent
            );
            obs.finish(&verifier.stats())?;
        }
        "attest-remote" => {
            need(2)?;
            let img = fs::read(&args.positional[0])?;
            let map = fs::read_to_string(&args.positional[1])?;
            let options = rap_cli::AttestRemoteCmdOptions {
                base,
                key_seed: args.flag("key").unwrap_or("default-device").to_owned(),
                addr: args
                    .flag("addr")
                    .ok_or_else(|| CliError("missing --addr HOST:PORT".into()))?
                    .to_owned(),
                device: args.flag("device").unwrap_or("device-0").to_owned(),
                rounds: args.num("rounds", 1)? as u32,
                retries: args.num("retries", 4)? as u32,
                watermark: args
                    .flag("watermark")
                    .map(|w| {
                        w.parse::<usize>()
                            .map_err(|_| CliError(format!("bad --watermark `{w}`")))
                    })
                    .transpose()?,
                window: args.num("window", 1)?.min(u16::MAX as u64) as u16,
                resume: args.has("resume"),
                dict: args.flag("dict").map(fs::read_to_string).transpose()?,
            };
            let (ok, summary) = rap_cli::cmd_attest_remote(&img, &map, &options)?;
            print!("{summary}");
            if !ok {
                std::process::exit(1);
            }
        }
        "top" => {
            need(1)?;
            let addr = args.positional[0].clone();
            if let Some(out_path) = args.flag("smoke") {
                // One-shot CI mode: sandwich-check the Prometheus and
                // JSON renderings, write the artifact, fail loudly.
                let (ok, summary, artifact) = rap_cli::cmd_telemetry_smoke(&addr)?;
                fs::write(out_path, artifact)?;
                eprintln!("telemetry smoke -> {out_path}");
                print!("{summary}");
                if !ok {
                    std::process::exit(1);
                }
            } else {
                let options = rap_cli::TopOptions {
                    addr,
                    interval: std::time::Duration::from_millis(args.num("interval", 1000)?),
                    iters: args.num("iters", 0)?,
                    top_k: args.num("k", 8)?.max(1) as usize,
                };
                let clear = !args.has("no-clear");
                rap_cli::cmd_top(&options, |frame| {
                    use std::io::Write as _;
                    if clear {
                        // Clear screen + home, like top(1).
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{frame}");
                    let _ = std::io::stdout().flush();
                })?;
            }
        }
        "stats" => {
            if let Some(addr) = args.flag("watch") {
                let iters = args.num("iters", 0)?;
                let interval = std::time::Duration::from_millis(args.num("interval", 1000)?);
                let mut frames = 0u64;
                loop {
                    use std::io::Write as _;
                    print!("{}", rap_cli::cmd_stats_watch(addr)?);
                    let _ = std::io::stdout().flush();
                    frames += 1;
                    if iters != 0 && frames >= iters {
                        break;
                    }
                    std::thread::sleep(interval);
                }
            } else {
                need(1)?;
                let text = fs::read_to_string(&args.positional[0])?;
                print!("{}", rap_cli::cmd_stats(&text)?);
            }
        }
        "inspect" => {
            need(1)?;
            let map = fs::read_to_string(&args.positional[0])?;
            print!("{}", rap_cli::cmd_inspect(&map)?);
        }
        "explain" => {
            need(1)?;
            let source = fs::read_to_string(&args.positional[0])?;
            let options = LinkCmdOptions {
                base,
                no_loop_opt: args.has("no-loop-opt"),
                padding: args.num("pad", 1)? as u32,
            };
            print!("{}", rap_cli::cmd_explain(&source, options)?);
        }
        "fleet" => {
            need(1)?;
            match args.positional[0].as_str() {
                "run" => {
                    let defaults = rap_cli::FleetRunOptions::default();
                    let options = rap_cli::FleetRunOptions {
                        devices: args.num("devices", defaults.devices as u64)?.max(1) as usize,
                        compromised: args.num("compromised", defaults.compromised as u64)? as usize,
                        flaky: args.num("flaky", defaults.flaky as u64)? as usize,
                        slots: args.num("slots", defaults.slots)?.max(1),
                        seed: args.num("seed", defaults.seed)?,
                    };
                    let (ok, summary, registry_json) = rap_cli::cmd_fleet_run(&options)?;
                    if let Some(path) = args.flag("json") {
                        fs::write(path, registry_json)?;
                        // stderr, so stdout stays byte-identical
                        // across runs with the same seed.
                        eprintln!("registry -> {path}");
                    }
                    print!("{summary}");
                    if !ok {
                        std::process::exit(1);
                    }
                }
                "status" => {
                    need(2)?;
                    let source = &args.positional[1];
                    let json_out = args.has("json");
                    let rendered = match fs::read_to_string(source) {
                        Ok(text) => rap_cli::cmd_fleet_status(&text, json_out)?,
                        // Not a readable file: treat it as a live
                        // admin address and scrape the fleet section.
                        Err(_) => rap_cli::cmd_fleet_status_remote(source, json_out)?,
                    };
                    print!("{rendered}");
                    if json_out {
                        println!();
                    }
                }
                sub @ ("quarantine" | "heal") => {
                    need(3)?;
                    let path = &args.positional[1];
                    let device = &args.positional[2];
                    let text = fs::read_to_string(path)?;
                    let (line, updated) =
                        rap_cli::cmd_fleet_admin(&text, device, sub == "quarantine")?;
                    fs::write(path, updated)?;
                    println!("{line}");
                }
                other => {
                    return Err(CliError(format!(
                        "unknown fleet subcommand `{other}`\n\n{USAGE}"
                    )));
                }
            }
        }
        "audit" => {
            need(2)?;
            let sub = args.positional[0].as_str();
            let log_bytes = fs::read(&args.positional[1])?;
            let key_seed = args.flag("key");
            let tail = args.num("last", 10)? as usize;
            let (ok, out) = rap_cli::cmd_audit(sub, &log_bytes, key_seed, tail)?;
            print!("{out}");
            if !ok {
                std::process::exit(1);
            }
        }
        "demo" => {
            print!("{}", rap_cli::DEMO_PROGRAM);
        }
        other => {
            return Err(CliError(format!("unknown command `{other}`\n\n{USAGE}")));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rap: {e}");
            ExitCode::from(2)
        }
    }
}
