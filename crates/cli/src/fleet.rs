//! `rap fleet` — the fleet control plane commands (library form).
//!
//! - `run`: drive a deterministic simulated fleet (rap-fleet's
//!   loopback sim) and print its transition log plus a summary table.
//! - `status`: render a persisted registry JSON (or a live admin
//!   STATS scrape — the `fleet` section) as a table.
//! - `quarantine` / `heal`: apply an operator override to a persisted
//!   registry and return the updated document.

use std::fmt::Write as _;

use rap_fleet::{Event, Registry, SimConfig};

use crate::CliError;

impl From<rap_fleet::SimError> for CliError {
    fn from(e: rap_fleet::SimError) -> CliError {
        CliError(e.to_string())
    }
}

impl From<rap_fleet::RegistryParseError> for CliError {
    fn from(e: rap_fleet::RegistryParseError) -> CliError {
        CliError(e.to_string())
    }
}

/// Options for [`cmd_fleet_run`].
#[derive(Debug, Clone)]
pub struct FleetRunOptions {
    /// Total simulated devices.
    pub devices: usize,
    /// Devices that flip to forged reports mid-run.
    pub compromised: usize,
    /// Devices that skip roughly half their slots.
    pub flaky: usize,
    /// Scheduler slots to drive.
    pub slots: u64,
    /// Seed for every actor decision.
    pub seed: u64,
}

impl Default for FleetRunOptions {
    fn default() -> FleetRunOptions {
        FleetRunOptions {
            devices: 4,
            compromised: 1,
            flaky: 0,
            slots: 24,
            seed: 0xF1EE7,
        }
    }
}

/// Renders one registry document as the operator-facing status table.
fn render_registry(registry: &Registry) -> String {
    let counts = registry.state_counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {} device(s) — {} healthy, {} suspect, {} quarantined, {} reprovisioning",
        registry.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3]
    );
    let _ = writeln!(
        out,
        "{:<16} {:<15} {:>7} {:>8} {:>9} {:>6} {:>12} {:>10}",
        "DEVICE", "STATE", "ROUNDS", "REJECTS", "TIMEOUTS", "GATED", "QUARANTINES", "SINCE_MS"
    );
    for (name, m) in registry.devices() {
        let _ = writeln!(
            out,
            "{:<16} {:<15} {:>7} {:>8} {:>9} {:>6} {:>12} {:>10}",
            name,
            m.state().as_str(),
            m.rounds,
            m.rejects,
            m.timeouts,
            m.gated,
            m.quarantine_count,
            m.state_since_ms()
        );
    }
    if !registry.transitions().is_empty() {
        let _ = writeln!(out, "transitions:");
        for r in registry.transitions() {
            let _ = writeln!(out, "  {}", r.render());
        }
    }
    out
}

/// Runs the simulated fleet. Returns `(ok, summary, registry_json)`:
/// `ok` is false when a compromised device ended the run unhealed and
/// unquarantined (detection failed), the summary is deterministic for
/// a given option set, and the JSON is the final registry document
/// (what `rap fleet status` consumes).
pub fn cmd_fleet_run(options: &FleetRunOptions) -> Result<(bool, String, String), CliError> {
    if options.compromised + options.flaky > options.devices {
        return Err(CliError("--compromised + --flaky exceeds --devices".into()));
    }
    let config = SimConfig {
        devices: options.devices,
        compromised: options.compromised,
        flaky: options.flaky,
        slots: options.slots,
        seed: options.seed,
        // Flip a third of the way in, stay compromised to the end —
        // the run must *contain* the device, not wait for remediation.
        flip_at_slot: options.slots / 3,
        restore_at_slot: u64::MAX,
        policy: SimConfig::demo_policy(),
        admin: false,
    };
    let report = rap_fleet::run_sim(&config)?;

    let registry = Registry::from_json(&report.registry_json)?;
    let mut summary = render_registry(&registry);
    let _ = writeln!(
        summary,
        "rounds: {} driven, {} accepted, {} rejected, {} timeout(s); {} session(s) resumed",
        report.rounds_driven,
        report.accepted,
        report.rejected,
        report.timeouts,
        report.server.resumed
    );

    // Containment check: every compromised device must have left
    // Healthy (quarantined, or at least suspect/reprovisioning).
    let contained = report
        .states
        .iter()
        .take(options.compromised)
        .all(|(_, &s)| s != rap_fleet::DeviceState::Healthy);
    let _ = writeln!(
        summary,
        "verdict: {}",
        if contained {
            "OK (compromised devices contained)"
        } else if options.compromised == 0 {
            "OK"
        } else {
            "DETECTION FAILED"
        }
    );
    Ok((
        contained || options.compromised == 0,
        summary,
        report.registry_json.to_pretty(),
    ))
}

/// Extracts the registry document from `text`: either a registry JSON
/// written by `rap fleet run --json`, or a full admin STATS document
/// (uses its top-level `fleet` section).
fn registry_of(text: &str) -> Result<Registry, CliError> {
    let doc = rap_obs::json::parse(text)?;
    let registry_doc = doc.get("fleet").unwrap_or(&doc);
    Ok(Registry::from_json(registry_doc)?)
}

/// Renders a registry document (file contents) as the status table,
/// or re-serializes it compactly with `json_out`.
pub fn cmd_fleet_status(text: &str, json_out: bool) -> Result<String, CliError> {
    let registry = registry_of(text)?;
    if json_out {
        Ok(registry.to_json().to_compact())
    } else {
        Ok(render_registry(&registry))
    }
}

/// Scrapes a live admin endpoint and renders its fleet section.
pub fn cmd_fleet_status_remote(addr: &str, json_out: bool) -> Result<String, CliError> {
    let body = rap_serve::AdminClient::new(addr.to_string())
        .connect()?
        .stats(rap_serve::StatsFormat::Json)?;
    let doc = rap_obs::json::parse(&body)?;
    let fleet = doc.get("fleet").ok_or_else(|| {
        CliError("admin STATS has no fleet section (no fleet plane attached)".into())
    })?;
    if json_out {
        Ok(fleet.to_compact())
    } else {
        Ok(render_registry(&Registry::from_json(fleet)?))
    }
}

/// Applies an operator override (`quarantine` / `heal`) to a persisted
/// registry document. Returns `(report_line, updated_json)` — the
/// caller writes the JSON back where it came from.
pub fn cmd_fleet_admin(
    text: &str,
    device: &str,
    quarantine: bool,
) -> Result<(String, String), CliError> {
    let mut registry = registry_of(text)?;
    if registry.device(device).is_none() {
        return Err(CliError(format!("unknown device `{device}`")));
    }
    // Admin time: strictly after everything the log has seen, so the
    // override sorts last.
    let now_ms = registry
        .devices()
        .map(|(_, m)| m.state_since_ms())
        .chain(registry.transitions().iter().map(|r| r.transition.at_ms))
        .max()
        .unwrap_or(0)
        + 1;
    let event = if quarantine {
        Event::AdminQuarantine
    } else {
        Event::AdminHeal
    };
    let fired = registry.observe(device, now_ms, event);
    let line = match fired.last() {
        Some(t) => format!("{device}: {} -> {} ({})", t.from, t.to, t.cause),
        None => format!(
            "{device}: already {}",
            registry.device(device).expect("checked above").state()
        ),
    };
    Ok((line, registry.to_json().to_pretty()))
}
