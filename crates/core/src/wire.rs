//! Binary wire format for report streams — what actually travels from
//! the Prover to the Verifier.
//!
//! Little-endian framing, one frame per report:
//!
//! ```text
//! magic  "RAPR"            4 bytes
//! ver    u8 = 1 | 2        1
//! flags  u8  bit0 = final, bit1 = overflow
//! seq    u32
//! chal   [u8; 32]
//! h_mem  [u8; 32]
//! nmtb   u32, then nmtb × (source u32, dest u32)
//! nloop  u32, then nloop × u32
//! v2+:   nrec u32, then nrec × (kind u8, ...)
//!          kind 1 = dictionary hit: at u32, id u32
//! tag    [u8; 32]
//! ```
//!
//! Version 2 frames append a typed-record section for
//! speculation-dictionary hits. Reports without dictionary hits are
//! still emitted as version 1, so v1 streams decode (and re-encode)
//! byte-identically; a record with an unknown kind is a typed
//! [`WireError::BadRecordKind`], never a panic.
//!
//! Frames concatenate to form a stream; [`decode_stream`] reads until
//! the buffer is exhausted.

use trace_units::{SubPathHit, TraceEntry};

use crate::report::{CfLog, Challenge, Report};

const MAGIC: &[u8; 4] = b"RAPR";
const VERSION: u8 = 1;
const VERSION_DICT: u8 = 2;
const RECORD_DICT_HIT: u8 = 1;
/// Bytes of one encoded dictionary-hit record (kind + at + id).
const DICT_RECORD_BYTES: usize = 9;

/// A failure while decoding a wire stream.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new decode failures can be added without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended mid-frame.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// The frame did not start with the magic bytes.
    BadMagic {
        /// Byte offset of the bad frame.
        offset: usize,
    },
    /// Unsupported format version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// A declared element count is implausibly large for the buffer.
    BadCount {
        /// The offending count.
        count: u32,
    },
    /// A v2 typed record carried an unknown kind byte.
    BadRecordKind {
        /// The kind byte found.
        kind: u8,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { offset } => write!(f, "stream truncated at byte {offset}"),
            WireError::BadMagic { offset } => write!(f, "bad frame magic at byte {offset}"),
            WireError::BadVersion { found } => write!(f, "unsupported wire version {found}"),
            WireError::BadCount { count } => write!(f, "implausible element count {count}"),
            WireError::BadRecordKind { kind } => write!(f, "unknown record kind {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one report as a wire frame.
pub fn encode_report(report: &Report) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + report.log.size_bytes());
    out.extend_from_slice(MAGIC);
    // Dictionary-free reports stay on v1 so their frames remain
    // byte-identical to what pre-dictionary verifiers pinned.
    if report.log.dict_hits.is_empty() {
        out.push(VERSION);
    } else {
        out.push(VERSION_DICT);
    }
    out.push(u8::from(report.is_final) | u8::from(report.overflow) << 1);
    out.extend_from_slice(&report.seq.to_le_bytes());
    out.extend_from_slice(&report.chal.0);
    out.extend_from_slice(&report.h_mem);
    out.extend_from_slice(&(report.log.mtb.len() as u32).to_le_bytes());
    for e in &report.log.mtb {
        out.extend_from_slice(&e.source.to_le_bytes());
        out.extend_from_slice(&e.dest.to_le_bytes());
    }
    out.extend_from_slice(&(report.log.loop_records.len() as u32).to_le_bytes());
    for r in &report.log.loop_records {
        out.extend_from_slice(&r.to_le_bytes());
    }
    if !report.log.dict_hits.is_empty() {
        out.extend_from_slice(&(report.log.dict_hits.len() as u32).to_le_bytes());
        for h in &report.log.dict_hits {
            out.push(RECORD_DICT_HIT);
            out.extend_from_slice(&h.at.to_le_bytes());
            out.extend_from_slice(&h.id.to_le_bytes());
        }
    }
    out.extend_from_slice(&report.tag);
    out
}

/// Encodes a whole report stream.
pub fn encode_stream(reports: &[Report]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reports {
        out.extend(encode_report(r));
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn arr32(&mut self) -> Result<[u8; 32], WireError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(self.take(32)?);
        Ok(out)
    }
}

/// Decodes a stream of frames until the buffer is exhausted.
///
/// # Errors
///
/// Returns a [`WireError`] on any malformed frame. Authentication is
/// *not* checked here — that is the Verifier's job.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Report>, WireError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    let mut reports = Vec::new();
    while cur.pos < bytes.len() {
        let frame_start = cur.pos;
        if cur.take(4)? != MAGIC {
            return Err(WireError::BadMagic {
                offset: frame_start,
            });
        }
        let version = cur.u8()?;
        if version != VERSION && version != VERSION_DICT {
            return Err(WireError::BadVersion { found: version });
        }
        let flags = cur.u8()?;
        let seq = cur.u32()?;
        let chal = Challenge(cur.arr32()?);
        let h_mem = cur.arr32()?;
        let nmtb = cur.u32()?;
        if nmtb as usize > bytes.len() / 8 + 1 {
            return Err(WireError::BadCount { count: nmtb });
        }
        let mut mtb = Vec::with_capacity(nmtb as usize);
        for _ in 0..nmtb {
            let source = cur.u32()?;
            let dest = cur.u32()?;
            mtb.push(TraceEntry { source, dest });
        }
        let nloop = cur.u32()?;
        if nloop as usize > bytes.len() / 4 + 1 {
            return Err(WireError::BadCount { count: nloop });
        }
        let mut loop_records = Vec::with_capacity(nloop as usize);
        for _ in 0..nloop {
            loop_records.push(cur.u32()?);
        }
        let mut dict_hits = Vec::new();
        if version == VERSION_DICT {
            let nrec = cur.u32()?;
            if nrec as usize > bytes.len() / DICT_RECORD_BYTES + 1 {
                return Err(WireError::BadCount { count: nrec });
            }
            dict_hits.reserve(nrec as usize);
            for _ in 0..nrec {
                let kind = cur.u8()?;
                if kind != RECORD_DICT_HIT {
                    return Err(WireError::BadRecordKind { kind });
                }
                let at = cur.u32()?;
                let id = cur.u32()?;
                dict_hits.push(SubPathHit { at, id });
            }
        }
        let tag = cur.arr32()?;
        reports.push(Report {
            chal,
            h_mem,
            log: CfLog {
                mtb,
                loop_records,
                dict_hits,
            },
            seq,
            is_final: flags & 1 != 0,
            overflow: flags & 2 != 0,
            tag,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::device_key;

    fn sample_reports() -> Vec<Report> {
        let key = device_key("wire");
        let chal = Challenge::from_seed(3);
        let h = rap_crypto::sha256(b"bin");
        vec![
            Report::new(
                &key,
                chal,
                h,
                CfLog {
                    mtb: vec![
                        TraceEntry {
                            source: 0x10,
                            dest: 0x20,
                        },
                        TraceEntry {
                            source: 0x30,
                            dest: 0x40,
                        },
                    ],
                    loop_records: vec![5],
                    dict_hits: vec![],
                },
                0,
                false,
                false,
            ),
            Report::new(&key, chal, h, CfLog::new(), 1, true, true),
        ]
    }

    #[test]
    fn stream_roundtrip() {
        let reports = sample_reports();
        let bytes = encode_stream(&reports);
        let back = decode_stream(&bytes).expect("decodes");
        assert_eq!(back, reports);
        // Authentication survives the trip.
        let key = device_key("wire");
        assert!(back[0].authenticate(&key));
        assert!(back[1].authenticate(&key));
        assert!(back[1].overflow);
        assert!(back[1].is_final);
    }

    #[test]
    fn truncation_detected_at_every_boundary() {
        let bytes = encode_stream(&sample_reports());
        for cut in 1..bytes.len() {
            match decode_stream(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                Ok(reports) => {
                    // A cut exactly between frames decodes the prefix.
                    assert!(reports.len() < 2 || cut == bytes.len());
                }
                Err(other) => panic!("cut {cut}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = encode_stream(&sample_reports());
        bytes[0] = b'X';
        assert!(matches!(
            decode_stream(&bytes),
            Err(WireError::BadMagic { offset: 0 })
        ));
        let mut bytes = encode_stream(&sample_reports());
        bytes[4] = 9;
        assert!(matches!(
            decode_stream(&bytes),
            Err(WireError::BadVersion { found: 9 })
        ));
    }

    #[test]
    fn adversarial_count_rejected() {
        let mut bytes = encode_report(&sample_reports()[1]);
        // Overwrite nmtb (offset 4+1+1+4+32+32 = 74) with u32::MAX.
        bytes[74..78].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_stream(&bytes),
            Err(WireError::BadCount { .. })
        ));
    }

    fn dict_report() -> Report {
        let key = device_key("wire");
        Report::new(
            &key,
            Challenge::from_seed(4),
            rap_crypto::sha256(b"bin"),
            CfLog {
                mtb: vec![TraceEntry {
                    source: 0x50,
                    dest: 0x60,
                }],
                loop_records: vec![2],
                dict_hits: vec![SubPathHit { at: 0, id: 7 }, SubPathHit { at: 1, id: 0 }],
            },
            0,
            true,
            false,
        )
    }

    #[test]
    fn v1_frames_stay_byte_identical() {
        // Pin the exact v1 layout for a dictionary-free report: the
        // version byte is 1 and no record section is emitted.
        let r = &sample_reports()[1];
        let bytes = encode_report(r);
        assert_eq!(bytes[4], 1, "dictionary-free reports stay v1");
        // magic+ver+flags+seq+chal+h_mem+nmtb+nloop+tag
        assert_eq!(bytes.len(), 4 + 1 + 1 + 4 + 32 + 32 + 4 + 4 + 32);
    }

    #[test]
    fn v2_roundtrip_with_dict_hits() {
        let r = dict_report();
        let bytes = encode_report(&r);
        assert_eq!(bytes[4], 2, "dictionary hits force v2");
        let back = decode_stream(&bytes).expect("decodes");
        assert_eq!(back, vec![r]);
        assert!(back[0].authenticate(&device_key("wire")));
    }

    #[test]
    fn v2_truncation_detected_at_every_boundary() {
        let bytes = encode_report(&dict_report());
        for cut in 1..bytes.len() {
            match decode_stream(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_record_kind_is_typed() {
        let bytes = encode_report(&dict_report());
        // The first record's kind byte sits right after nrec, which
        // follows magic(4)+ver+flags+seq(4)+chal+h_mem+nmtb(4)+
        // 1 entry(8)+nloop(4)+1 loop(4).
        let kind_at = 4 + 1 + 1 + 4 + 32 + 32 + 4 + 8 + 4 + 4 + 4;
        assert_eq!(bytes[kind_at], 1);
        let mut bad = bytes.clone();
        bad[kind_at] = 9;
        assert!(matches!(
            decode_stream(&bad),
            Err(WireError::BadRecordKind { kind: 9 })
        ));
    }

    #[test]
    fn adversarial_record_count_rejected() {
        let mut bytes = encode_report(&dict_report());
        let nrec_at = 4 + 1 + 1 + 4 + 32 + 32 + 4 + 8 + 4 + 4;
        bytes[nrec_at..nrec_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_stream(&bytes),
            Err(WireError::BadCount { .. })
        ));
    }

    #[test]
    fn tampered_wire_bytes_fail_authentication() {
        let reports = sample_reports();
        let mut bytes = encode_stream(&reports);
        // Flip one byte inside the first report's first MTB entry.
        bytes[75] ^= 1;
        if let Ok(back) = decode_stream(&bytes) {
            assert!(!back[0].authenticate(&device_key("wire")));
        }
    }
}
