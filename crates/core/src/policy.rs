//! Verifier-side path assessment.
//!
//! Lossless CFA hands the Verifier the *complete* control-flow path;
//! what makes that useful is the policy applied on top (§II-D: "Vrf can
//! validate the entire execution path and observe any unintended …
//! transitions"). This module provides:
//!
//! * [`PathStats`] — a structural summary of a [`VerifiedPath`], and
//! * [`PathPolicy`] — declarative rules over reconstructed paths
//!   (allowed indirect-call targets, required/forbidden functions,
//!   loop-iteration bounds), evaluated to typed [`PolicyFinding`]s.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::verifier::{PathEvent, VerifiedPath};

/// Structural summary of a reconstructed path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Direct calls.
    pub calls: usize,
    /// Indirect calls.
    pub indirect_calls: usize,
    /// Returns (both `POP {PC}` and shadow-stack `BX LR`).
    pub returns: usize,
    /// Taken tracked conditionals.
    pub cond_taken: usize,
    /// Fall-through tracked conditionals.
    pub cond_not_taken: usize,
    /// Forward-loop continue events.
    pub loop_continues: usize,
    /// §IV-D optimized loop executions.
    pub optimized_loops: usize,
    /// Total iterations replayed through optimized loops.
    pub optimized_iterations: u64,
    /// Indirect jumps (switch dispatches).
    pub indirect_jumps: usize,
    /// Iterations per optimized-loop header.
    pub loop_iterations_by_header: BTreeMap<u32, u64>,
}

impl PathStats {
    /// Computes the summary of `path`.
    pub fn of(path: &VerifiedPath) -> PathStats {
        let mut stats = PathStats::default();
        for e in &path.events {
            match e {
                PathEvent::Call { .. } => stats.calls += 1,
                PathEvent::IndirectCall { .. } => stats.indirect_calls += 1,
                PathEvent::Return { .. } => stats.returns += 1,
                PathEvent::CondTaken { .. } => stats.cond_taken += 1,
                PathEvent::CondNotTaken { .. } => stats.cond_not_taken += 1,
                PathEvent::LoopContinue { .. } => stats.loop_continues += 1,
                PathEvent::LoopIterations { header, count } => {
                    stats.optimized_loops += 1;
                    stats.optimized_iterations += u64::from(*count);
                    *stats.loop_iterations_by_header.entry(*header).or_default() +=
                        u64::from(*count);
                }
                PathEvent::IndirectJump { .. } => stats.indirect_jumps += 1,
                PathEvent::Enter(_) | PathEvent::Halt(_) => {}
            }
        }
        stats
    }

    /// Total control-flow decisions evidenced by the log.
    pub fn decisions(&self) -> usize {
        self.indirect_calls
            + self.returns
            + self.cond_taken
            + self.cond_not_taken
            + self.loop_continues
            + self.optimized_loops
            + self.indirect_jumps
    }
}

/// One policy violation discovered in an (authentic!) path.
///
/// Unlike [`crate::Violation`], these do not mean the log is invalid —
/// the execution truly happened — but that it did something the
/// application's owner forbade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyFinding {
    /// An indirect call site reached a target outside its allow-list.
    DisallowedIndirectTarget {
        /// Call-site address.
        site: u32,
        /// The observed target.
        dest: u32,
    },
    /// A function that must execute never did.
    MissingRequiredCall {
        /// The required function's entry address.
        entry: u32,
    },
    /// A forbidden function executed.
    ForbiddenCall {
        /// The forbidden function's entry address.
        entry: u32,
        /// Where it was called from.
        site: u32,
    },
    /// An optimized loop ran more iterations than permitted.
    LoopIterationBound {
        /// The loop header.
        header: u32,
        /// Iterations observed.
        observed: u64,
        /// The configured maximum.
        max: u64,
    },
    /// The path contains more indirect jumps than permitted (a coarse
    /// JOP-resilience bound).
    TooManyIndirectJumps {
        /// Observed count.
        observed: usize,
        /// The configured maximum.
        max: usize,
    },
}

impl std::fmt::Display for PolicyFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyFinding::DisallowedIndirectTarget { site, dest } => write!(
                f,
                "indirect call at {site:#010x} reached disallowed target {dest:#010x}"
            ),
            PolicyFinding::MissingRequiredCall { entry } => {
                write!(f, "required function {entry:#010x} never executed")
            }
            PolicyFinding::ForbiddenCall { entry, site } => write!(
                f,
                "forbidden function {entry:#010x} called from {site:#010x}"
            ),
            PolicyFinding::LoopIterationBound {
                header,
                observed,
                max,
            } => write!(
                f,
                "loop {header:#010x} ran {observed} iterations (max {max})"
            ),
            PolicyFinding::TooManyIndirectJumps { observed, max } => {
                write!(f, "{observed} indirect jumps (max {max})")
            }
        }
    }
}

/// Declarative rules evaluated over verified paths.
#[derive(Debug, Clone, Default)]
pub struct PathPolicy {
    /// Per-site allow-lists for indirect-call targets. Sites not
    /// listed are unconstrained.
    pub allowed_indirect_targets: HashMap<u32, HashSet<u32>>,
    /// Function entries that must appear as call destinations.
    pub required_calls: HashSet<u32>,
    /// Function entries that must never appear as call destinations.
    pub forbidden_calls: HashSet<u32>,
    /// Per-header maxima for optimized-loop iteration counts.
    pub loop_iteration_max: HashMap<u32, u64>,
    /// Global bound on indirect jumps (None = unbounded).
    pub max_indirect_jumps: Option<usize>,
}

impl PathPolicy {
    /// Creates an empty (allow-everything) policy.
    pub fn new() -> PathPolicy {
        PathPolicy::default()
    }

    /// Restricts the indirect-call site at `site` to `targets`.
    #[must_use]
    pub fn allow_indirect(mut self, site: u32, targets: impl IntoIterator<Item = u32>) -> Self {
        self.allowed_indirect_targets
            .entry(site)
            .or_default()
            .extend(targets);
        self
    }

    /// Requires the function at `entry` to execute.
    #[must_use]
    pub fn require_call(mut self, entry: u32) -> Self {
        self.required_calls.insert(entry);
        self
    }

    /// Forbids the function at `entry` from executing.
    #[must_use]
    pub fn forbid_call(mut self, entry: u32) -> Self {
        self.forbidden_calls.insert(entry);
        self
    }

    /// Bounds the iterations of the optimized loop at `header`.
    #[must_use]
    pub fn bound_loop(mut self, header: u32, max: u64) -> Self {
        self.loop_iteration_max.insert(header, max);
        self
    }

    /// Bounds the total number of indirect jumps.
    #[must_use]
    pub fn bound_indirect_jumps(mut self, max: usize) -> Self {
        self.max_indirect_jumps = Some(max);
        self
    }

    /// Evaluates the policy; an empty result means compliance.
    pub fn check(&self, path: &VerifiedPath) -> Vec<PolicyFinding> {
        let mut findings = Vec::new();
        let mut called: HashSet<u32> = HashSet::new();

        for e in &path.events {
            match e {
                PathEvent::IndirectCall { site, dest } => {
                    called.insert(*dest);
                    if let Some(allowed) = self.allowed_indirect_targets.get(site) {
                        if !allowed.contains(dest) {
                            findings.push(PolicyFinding::DisallowedIndirectTarget {
                                site: *site,
                                dest: *dest,
                            });
                        }
                    }
                    if self.forbidden_calls.contains(dest) {
                        findings.push(PolicyFinding::ForbiddenCall {
                            entry: *dest,
                            site: *site,
                        });
                    }
                }
                PathEvent::Call { site, dest } => {
                    called.insert(*dest);
                    if self.forbidden_calls.contains(dest) {
                        findings.push(PolicyFinding::ForbiddenCall {
                            entry: *dest,
                            site: *site,
                        });
                    }
                }
                _ => {}
            }
        }

        for entry in &self.required_calls {
            if !called.contains(entry) {
                findings.push(PolicyFinding::MissingRequiredCall { entry: *entry });
            }
        }

        let stats = PathStats::of(path);
        for (header, iters) in &stats.loop_iterations_by_header {
            if let Some(max) = self.loop_iteration_max.get(header) {
                if iters > max {
                    findings.push(PolicyFinding::LoopIterationBound {
                        header: *header,
                        observed: *iters,
                        max: *max,
                    });
                }
            }
        }
        if let Some(max) = self.max_indirect_jumps {
            if stats.indirect_jumps > max {
                findings.push(PolicyFinding::TooManyIndirectJumps {
                    observed: stats.indirect_jumps,
                    max,
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(events: Vec<PathEvent>) -> VerifiedPath {
        VerifiedPath { events, steps: 1 }
    }

    #[test]
    fn stats_count_each_event_kind() {
        let p = path(vec![
            PathEvent::Enter(0),
            PathEvent::Call { site: 2, dest: 40 },
            PathEvent::IndirectCall { site: 6, dest: 50 },
            PathEvent::Return { site: 52, dest: 10 },
            PathEvent::CondTaken { site: 12, dest: 20 },
            PathEvent::CondNotTaken { site: 22 },
            PathEvent::LoopContinue { site: 24 },
            PathEvent::LoopIterations {
                header: 30,
                count: 9,
            },
            PathEvent::LoopIterations {
                header: 30,
                count: 2,
            },
            PathEvent::IndirectJump { site: 34, dest: 38 },
            PathEvent::Halt(38),
        ]);
        let s = PathStats::of(&p);
        assert_eq!(s.calls, 1);
        assert_eq!(s.indirect_calls, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.cond_taken, 1);
        assert_eq!(s.cond_not_taken, 1);
        assert_eq!(s.loop_continues, 1);
        assert_eq!(s.optimized_loops, 2);
        assert_eq!(s.optimized_iterations, 11);
        assert_eq!(s.loop_iterations_by_header.get(&30), Some(&11));
        assert_eq!(s.indirect_jumps, 1);
        assert_eq!(s.decisions(), 8);
    }

    #[test]
    fn indirect_allow_list() {
        let p = path(vec![PathEvent::IndirectCall { site: 6, dest: 50 }]);
        let ok = PathPolicy::new().allow_indirect(6, [50, 60]);
        assert!(ok.check(&p).is_empty());
        let bad = PathPolicy::new().allow_indirect(6, [60]);
        assert_eq!(
            bad.check(&p),
            vec![PolicyFinding::DisallowedIndirectTarget { site: 6, dest: 50 }]
        );
        // Unlisted sites are unconstrained.
        let other = PathPolicy::new().allow_indirect(99, [1]);
        assert!(other.check(&p).is_empty());
    }

    #[test]
    fn required_and_forbidden_calls() {
        let p = path(vec![
            PathEvent::Call { site: 0, dest: 100 },
            PathEvent::IndirectCall { site: 4, dest: 200 },
        ]);
        let policy = PathPolicy::new()
            .require_call(100)
            .require_call(300)
            .forbid_call(200);
        let findings = policy.check(&p);
        assert!(findings.contains(&PolicyFinding::MissingRequiredCall { entry: 300 }));
        assert!(findings.contains(&PolicyFinding::ForbiddenCall {
            entry: 200,
            site: 4
        }));
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn loop_bounds() {
        let p = path(vec![PathEvent::LoopIterations {
            header: 8,
            count: 1000,
        }]);
        let ok = PathPolicy::new().bound_loop(8, 1000);
        assert!(ok.check(&p).is_empty());
        let bad = PathPolicy::new().bound_loop(8, 999);
        assert_eq!(
            bad.check(&p),
            vec![PolicyFinding::LoopIterationBound {
                header: 8,
                observed: 1000,
                max: 999
            }]
        );
    }

    #[test]
    fn indirect_jump_budget() {
        let p = path(vec![
            PathEvent::IndirectJump { site: 0, dest: 4 },
            PathEvent::IndirectJump { site: 8, dest: 12 },
        ]);
        assert!(PathPolicy::new()
            .bound_indirect_jumps(2)
            .check(&p)
            .is_empty());
        assert_eq!(
            PathPolicy::new().bound_indirect_jumps(1).check(&p),
            vec![PolicyFinding::TooManyIndirectJumps {
                observed: 2,
                max: 1
            }]
        );
    }

    #[test]
    fn end_to_end_policy_on_real_path() {
        // The Geiger workload: its alarm callback must be permitted, a
        // made-up "firmware_update" function must not run, and the
        // history-sum loop is bounded.
        use rap_link::{link, LinkOptions};
        let w = workloads::geiger::workload();
        let linked = link(&w.module, 0, LinkOptions::default()).unwrap();
        let key = crate::device_key("policy");
        let engine = crate::CfaEngine::new(key.clone());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let chal = crate::Challenge::from_seed(1);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                crate::EngineConfig::default(),
            )
            .unwrap();
        let verifier = crate::Verifier::new(key, linked.image.clone(), linked.map.clone());
        let path = verifier.verify(chal, &att.reports).unwrap();

        let alarm = linked.image.symbol("alarm_blink").unwrap();
        let site = linked
            .map
            .sites_by_entry
            .values()
            .find(|s| s.kind == rap_link::SiteKind::IndirectCall)
            .unwrap()
            .mtbdr_addr;
        let policy = PathPolicy::new()
            .allow_indirect(site, [alarm])
            .require_call(linked.image.symbol("compute_cpm").unwrap());
        assert!(policy.check(&path).is_empty());

        // A policy that forbids the alarm flags the bursts.
        let strict = PathPolicy::new().forbid_call(alarm);
        assert!(!strict.check(&path).is_empty());
    }
}
