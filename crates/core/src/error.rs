//! The crate-wide error type: one enum over every fallible layer, so
//! callers that thread results through `?` (services, CLIs) can hold a
//! single `Result<T, rap_track::Error>` instead of juggling
//! [`Violation`], [`WireError`] and [`SessionError`] separately.

use crate::protocol::SessionError;
use crate::verifier::Violation;
use crate::wire::WireError;

/// Any failure the attestation pipeline can produce.
///
/// Each variant wraps the typed error of one layer; `From` impls let
/// `?` lift layer errors automatically. Marked `#[non_exhaustive]`:
/// downstream matches need a wildcard arm so new layers can be added
/// without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Path reconstruction rejected the evidence.
    Violation(Violation),
    /// A wire stream failed to decode.
    Wire(WireError),
    /// The challenge–response session layer rejected the exchange.
    Session(SessionError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Violation(v) => write!(f, "violation: {v}"),
            Error::Wire(w) => write!(f, "wire: {w}"),
            Error::Session(s) => write!(f, "session: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Violation(v) => Some(v),
            Error::Wire(w) => Some(w),
            Error::Session(s) => Some(s),
        }
    }
}

impl From<Violation> for Error {
    fn from(v: Violation) -> Error {
        Error::Violation(v)
    }
}

impl From<WireError> for Error {
    fn from(w: WireError) -> Error {
        Error::Wire(w)
    }
}

impl From<SessionError> for Error {
    fn from(s: SessionError) -> Error {
        Error::Session(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_lift_layer_errors() {
        let e: Error = Violation::ChallengeMismatch.into();
        assert!(matches!(e, Error::Violation(Violation::ChallengeMismatch)));
        let e: Error = WireError::BadVersion { found: 9 }.into();
        assert!(matches!(e, Error::Wire(WireError::BadVersion { found: 9 })));
        let e: Error = SessionError::ChallengeReused.into();
        assert!(matches!(e, Error::Session(SessionError::ChallengeReused)));
    }

    #[test]
    fn display_and_source_chain() {
        let e: Error = SessionError::NoOutstandingChallenge.into();
        assert!(e.to_string().starts_with("session: "));
        let source = std::error::Error::source(&e).expect("has source");
        assert_eq!(
            source.to_string(),
            SessionError::NoOutstandingChallenge.to_string()
        );
    }
}
