//! The RA challenge–response protocol (§II-C): the session layer that
//! drives the four steps around the engine and verifier.
//!
//! 1. Vrf creates a unique `Chal` and sends a CFA request.
//! 2. Prv runs the attested execution and builds the evidence.
//! 3. Prv authenticates the evidence with the device key.
//! 4. Vrf checks the proof (and, here, reconstructs the path).
//!
//! [`VerifierSession`] owns challenge freshness: every request gets a
//! new nonce derived from a counter and session secret, responses are
//! matched to the *outstanding* challenge only, and a challenge is
//! consumed on first use — replaying an old session's reports (or the
//! same session's reports twice) is rejected without touching replay.
//!
//! For pipelined transports the session also supports a *window* of
//! outstanding challenges ([`VerifierSession::issue_windowed_challenge`]):
//! challenges form an ordered queue and responses are matched against
//! the oldest one first, so an out-of-order response fails the HMAC
//! check of the front challenge and is rejected as a
//! [`Violation::ChallengeMismatch`].

use std::collections::{HashSet, VecDeque};

use armv8m_isa::Image;
use rap_crypto::hmac_sha256;
use rap_link::LinkMap;

use crate::report::{Challenge, Key, Report};
use crate::verdict::{stats_digest, VerdictDraft, VerdictRecord};
use crate::verifier::{VerifiedPath, Verifier, Violation};

/// The Verifier's per-device session state.
#[derive(Debug, Clone)]
pub struct VerifierSession {
    verifier: Verifier,
    session_secret: Vec<u8>,
    counter: u64,
    responses: u64,
    outstanding: VecDeque<Challenge>,
    used: HashSet<[u8; 32]>,
}

/// A session-level protocol failure.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new protocol failures can be added without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// A response arrived with no outstanding request.
    NoOutstandingChallenge,
    /// The challenge was already consumed by an earlier response.
    ChallengeReused,
    /// Verification of the evidence failed.
    Verification(Violation),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoOutstandingChallenge => {
                write!(f, "response without an outstanding challenge")
            }
            SessionError::ChallengeReused => write!(f, "challenge reuse detected"),
            SessionError::Verification(v) => write!(f, "verification failed: {v}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl VerifierSession {
    /// Opens a session for one deployed application.
    ///
    /// `session_secret` seeds nonce derivation (a real deployment uses
    /// an OS RNG; determinism keeps tests and benches reproducible).
    pub fn new(key: Key, image: Image, map: LinkMap, session_secret: &[u8]) -> VerifierSession {
        VerifierSession::from_verifier(Verifier::new(key, image, map), session_secret)
    }

    /// Opens a session around an existing [`Verifier`].
    ///
    /// Because verifier clones share one replay cache, sessions built
    /// from clones of the same verifier (one per connection, say) all
    /// benefit from each other's decoded stretches while keeping
    /// challenge freshness strictly per-session.
    pub fn from_verifier(verifier: Verifier, session_secret: &[u8]) -> VerifierSession {
        VerifierSession {
            verifier,
            session_secret: session_secret.to_vec(),
            counter: 0,
            responses: 0,
            outstanding: VecDeque::new(),
            used: HashSet::new(),
        }
    }

    /// The verifier this session drives.
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Step 1: issues a fresh challenge. Any previously outstanding
    /// challenge is abandoned (its responses will be rejected).
    pub fn issue_challenge(&mut self) -> Challenge {
        self.outstanding.clear();
        self.issue_windowed_challenge()
    }

    /// Issues one more challenge *without* abandoning the outstanding
    /// ones — the pipelined variant of
    /// [`VerifierSession::issue_challenge`]. Challenges queue in issue
    /// order and [`VerifierSession::check_response`] consumes them
    /// oldest-first.
    pub fn issue_windowed_challenge(&mut self) -> Challenge {
        self.counter += 1;
        let mut msg = self.session_secret.clone();
        msg.extend_from_slice(&self.counter.to_le_bytes());
        let chal = Challenge(hmac_sha256(b"RAP-TRACK-CHAL", &msg));
        self.outstanding.push_back(chal);
        chal
    }

    /// The oldest outstanding challenge (the one the next response
    /// must answer), if any.
    pub fn outstanding(&self) -> Option<Challenge> {
        self.outstanding.front().copied()
    }

    /// How many challenges are outstanding (the in-flight window).
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Abandons every outstanding challenge — used when a resumed
    /// transport session starts a fresh window; the nonce counter keeps
    /// advancing so abandoned nonces are never re-issued.
    pub fn clear_outstanding(&mut self) {
        self.outstanding.clear();
    }

    /// Step 4: checks a response against the oldest outstanding
    /// challenge.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoOutstandingChallenge`] when no request is in
    /// flight, [`SessionError::ChallengeReused`] when the nonce was
    /// consumed before, and [`SessionError::Verification`] for
    /// evidence failures (which also consume the challenge — a device
    /// does not get a second try against the same nonce).
    pub fn check_response(&mut self, reports: &[Report]) -> Result<VerifiedPath, SessionError> {
        self.responses += 1;
        let chal = self
            .outstanding
            .pop_front()
            .ok_or(SessionError::NoOutstandingChallenge)?;
        if !self.used.insert(chal.0) {
            return Err(SessionError::ChallengeReused);
        }
        self.verifier
            .verify(chal, reports)
            .map_err(SessionError::Verification)
    }

    /// [`check_response`](VerifierSession::check_response), wrapped in
    /// a sealed proof-carrying [`VerdictRecord`].
    ///
    /// The record binds `device`, the consumed challenge nonce (all
    /// zero when the failure happened before a challenge was matched),
    /// a hash of the judged report stream and this session's response
    /// counter as the logical timestamp. Protocol failures seal as
    /// rejections with kinds `no-outstanding-challenge` /
    /// `challenge-reused`; verification failures carry the
    /// [`Violation`] kind. The plain result is returned alongside so
    /// callers keep the old enum as a view of the record.
    pub fn check_response_record(
        &mut self,
        device: &str,
        reports: &[Report],
    ) -> (VerdictRecord, Result<VerifiedPath, SessionError>) {
        let chal = self.outstanding.front().copied();
        let result = self.check_response(reports);
        let stats = self.verifier.stats();
        let mut draft = VerdictDraft {
            device: device.to_string(),
            chal: chal.unwrap_or(Challenge([0u8; 32])),
            report_hash: rap_crypto::sha256(&crate::wire::encode_stream(reports)),
            stats_digest: stats_digest(&stats),
            dict_hits: reports
                .iter()
                .map(|r| r.log.dict_hits.len() as u32)
                .fold(0u32, u32::saturating_add),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            seq: self.responses,
            ..VerdictDraft::default()
        };
        match &result {
            Ok(path) => {
                draft.accepted = true;
                draft.events = path.events.len() as u32;
                draft.steps = path.steps;
            }
            Err(SessionError::NoOutstandingChallenge) => {
                draft.kind = "no-outstanding-challenge".to_string();
                draft.detail = SessionError::NoOutstandingChallenge.to_string();
            }
            Err(SessionError::ChallengeReused) => {
                draft.kind = "challenge-reused".to_string();
                draft.detail = SessionError::ChallengeReused.to_string();
            }
            Err(SessionError::Verification(v)) => {
                draft.kind = v.kind().to_string();
                draft.detail = v.to_string();
            }
        }
        (self.verifier.seal_verdict(draft), result)
    }

    /// Number of responses checked so far — the logical timestamp
    /// sealed into this session's records.
    pub fn responses_checked(&self) -> u64 {
        self.responses
    }

    /// Number of challenges issued so far.
    pub fn challenges_issued(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{device_key, CfaEngine, EngineConfig};
    use armv8m_isa::{Asm, Reg};
    use rap_link::{link, LinkOptions};

    fn linked() -> rap_link::LinkedProgram {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R2, 4);
        a.mov(Reg::R0, Reg::R2);
        a.label("l");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("l");
        a.halt();
        link(&a.into_module(), 0, LinkOptions::default()).unwrap()
    }

    fn respond(linked: &rap_link::LinkedProgram, chal: Challenge) -> Vec<Report> {
        let engine = CfaEngine::new(device_key("proto"));
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        engine
            .attest(&mut machine, &linked.map, chal, EngineConfig::default())
            .unwrap()
            .reports
    }

    fn session(linked: &rap_link::LinkedProgram) -> VerifierSession {
        VerifierSession::new(
            device_key("proto"),
            linked.image.clone(),
            linked.map.clone(),
            b"session-secret",
        )
    }

    #[test]
    fn full_protocol_round() {
        let linked = linked();
        let mut s = session(&linked);
        let chal = s.issue_challenge();
        let reports = respond(&linked, chal);
        let path = s.check_response(&reports).expect("verifies");
        assert!(!path.events.is_empty());
        assert_eq!(s.challenges_issued(), 1);
    }

    #[test]
    fn challenges_are_unique() {
        let linked = linked();
        let mut s = session(&linked);
        let mut seen = HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(s.issue_challenge().0), "nonce repeated");
        }
    }

    #[test]
    fn response_without_request_rejected() {
        let linked = linked();
        let mut s = session(&linked);
        let chal = Challenge::from_seed(1);
        let reports = respond(&linked, chal);
        assert!(matches!(
            s.check_response(&reports),
            Err(SessionError::NoOutstandingChallenge)
        ));
    }

    #[test]
    fn same_response_cannot_be_consumed_twice() {
        let linked = linked();
        let mut s = session(&linked);
        let chal = s.issue_challenge();
        let reports = respond(&linked, chal);
        s.check_response(&reports).expect("first use ok");
        // No outstanding challenge anymore.
        assert!(matches!(
            s.check_response(&reports),
            Err(SessionError::NoOutstandingChallenge)
        ));
    }

    #[test]
    fn stale_response_to_new_challenge_rejected() {
        let linked = linked();
        let mut s = session(&linked);
        let old_chal = s.issue_challenge();
        let old_reports = respond(&linked, old_chal);
        // The verifier re-issues before the (slow/portioned) response
        // arrives — the old response no longer matches.
        let _new_chal = s.issue_challenge();
        match s.check_response(&old_reports) {
            Err(SessionError::Verification(Violation::ChallengeMismatch)) => {}
            other => panic!("expected challenge mismatch, got {other:?}"),
        }
    }

    #[test]
    fn windowed_challenges_verify_in_issue_order() {
        let linked = linked();
        let mut s = session(&linked);
        let chals: Vec<Challenge> = (0..3).map(|_| s.issue_windowed_challenge()).collect();
        assert_eq!(s.outstanding_count(), 3);
        assert_eq!(s.outstanding(), Some(chals[0]));
        for chal in &chals {
            let reports = respond(&linked, *chal);
            s.check_response(&reports)
                .expect("in-order response verifies");
        }
        assert_eq!(s.outstanding_count(), 0);
        assert_eq!(s.challenges_issued(), 3);
    }

    #[test]
    fn out_of_order_windowed_response_is_a_challenge_mismatch() {
        let linked = linked();
        let mut s = session(&linked);
        let c1 = s.issue_windowed_challenge();
        let c2 = s.issue_windowed_challenge();
        // Answering c2 while c1 is still the front of the window fails
        // the HMAC binding of c1 — and consumes c1, so the device
        // cannot reorder its way past a challenge.
        let reports = respond(&linked, c2);
        match s.check_response(&reports) {
            Err(SessionError::Verification(Violation::ChallengeMismatch)) => {}
            other => panic!("expected challenge mismatch, got {other:?}"),
        }
        assert_eq!(s.outstanding(), Some(c2));
        // The straggler answer to c1 now also mismatches (c2 is front).
        let late = respond(&linked, c1);
        match s.check_response(&late) {
            Err(SessionError::Verification(Violation::ChallengeMismatch)) => {}
            other => panic!("expected challenge mismatch, got {other:?}"),
        }
    }

    #[test]
    fn issue_challenge_abandons_the_window() {
        let linked = linked();
        let mut s = session(&linked);
        s.issue_windowed_challenge();
        s.issue_windowed_challenge();
        let fresh = s.issue_challenge();
        assert_eq!(s.outstanding_count(), 1);
        assert_eq!(s.outstanding(), Some(fresh));
        s.clear_outstanding();
        assert_eq!(s.outstanding_count(), 0);
        let reports = respond(&linked, fresh);
        assert!(matches!(
            s.check_response(&reports),
            Err(SessionError::NoOutstandingChallenge)
        ));
    }

    #[test]
    fn failed_verification_consumes_the_challenge() {
        let linked = linked();
        let mut s = session(&linked);
        let chal = s.issue_challenge();
        let mut reports = respond(&linked, chal);
        reports[0].log.loop_records.clear(); // tamper
        assert!(matches!(
            s.check_response(&reports),
            Err(SessionError::Verification(Violation::BadTag { .. }))
        ));
        // The device cannot retry against the same nonce.
        let fixed = respond(&linked, chal);
        assert!(matches!(
            s.check_response(&fixed),
            Err(SessionError::NoOutstandingChallenge)
        ));
    }
}
