//! Sealed, proof-carrying verdicts.
//!
//! Every verification can be reduced to a [`VerdictRecord`]: a
//! deterministic, byte-stable artifact binding the device id, the
//! challenge nonce, a hash of the report stream, the verdict (with
//! violation kind and detail on rejection), a digest of the replay
//! stats snapshot, dictionary/cache provenance and a logical
//! timestamp. The record is MAC'd with a key derived from the device
//! key under a dedicated domain ([`verdict_seal_key`]), so downstream
//! consumers — the audit chain, the fleet control plane, operators
//! reading `rap audit show` — can re-check provenance instead of
//! trusting the process that produced the verdict.
//!
//! Encoding follows the report wire codec's conventions: magic +
//! version byte, little-endian fields, length-prefixed strings, typed
//! [`VerdictError`]s for every malformed input (never a panic).
//!
//! ```text
//! magic  "RAPV"          4 bytes
//! ver    u8 = 1          1
//! flags  u8  bit0 = accepted
//! seq    u64             logical timestamp
//! chal   [u8; 32]
//! rhash  [u8; 32]        sha256 of the encoded report stream
//! stats  [u8; 32]        sha256 of the replay-stats snapshot
//! events u32
//! steps  u64
//! dhits  u32             dictionary hits replayed
//! chits  u64             replay-cache hits (snapshot)
//! cmiss  u64             replay-cache misses (snapshot)
//! dev    u32 len + bytes (UTF-8)
//! kind   u32 len + bytes (UTF-8, empty when accepted)
//! detail u32 len + bytes (UTF-8, empty when accepted)
//! tag    [u8; 32]        HMAC-SHA256 over all of the above
//! ```

use rap_crypto::{hmac_sha256, sha256, verify_tag, Digest, HmacSha256};

use crate::metrics::VerifierStats;
use crate::report::Challenge;

const MAGIC: &[u8; 4] = b"RAPV";
const VERSION: u8 = 1;
/// Domain separating the record MAC from every other HMAC in the
/// system — a report tag can never alias a verdict seal.
const SEAL_DOMAIN: &[u8] = b"RAP-TRACK-VERDICT-V1";
/// Domain for deriving the sealing key from the device key.
const KEY_DOMAIN: &[u8] = b"RAP-TRACK-VERDICT-KEY";

/// Derives the verdict-sealing key from a device key. Domain-separated
/// so compromise of sealed records never helps forging reports (and
/// vice versa).
pub fn verdict_seal_key(device_key: &[u8]) -> Vec<u8> {
    hmac_sha256(device_key, KEY_DOMAIN).to_vec()
}

/// Digest of a [`VerifierStats`] snapshot, committed into each sealed
/// record so the replay-work counters the operator saw cannot be
/// silently rewritten later.
///
/// Commits only to the *deterministic* replay counters —
/// [`VerifierStats::wall_ns`] is wall-clock and deliberately excluded,
/// so the same evidence replayed in the same order always seals to the
/// same record hash (the fleet simulation's byte-for-byte determinism
/// leans on this).
pub fn stats_digest(stats: &VerifierStats) -> Digest {
    let mut buf = [0u8; 40];
    buf[..8].copy_from_slice(&stats.cache_hits.to_le_bytes());
    buf[8..16].copy_from_slice(&stats.cache_misses.to_le_bytes());
    buf[16..24].copy_from_slice(&stats.cached_steps.to_le_bytes());
    buf[24..32].copy_from_slice(&stats.live_steps.to_le_bytes());
    buf[32..40].copy_from_slice(&stats.jobs.to_le_bytes());
    sha256(&buf)
}

/// The unsealed fields of a verdict — everything except the tag.
///
/// Fill one of these and pass it to [`VerdictRecord::seal`]; the
/// high-level producers ([`Verifier::verify_record`] and
/// [`VerifierSession::check_response_record`]) do this for you.
///
/// [`Verifier::verify_record`]: crate::Verifier::verify_record
/// [`VerifierSession::check_response_record`]: crate::VerifierSession::check_response_record
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictDraft {
    /// Device identifier the verdict is about.
    pub device: String,
    /// The challenge nonce this verdict answers (all-zero when the
    /// failure happened before a challenge was matched).
    pub chal: Challenge,
    /// SHA-256 of the encoded report stream the verdict judged.
    pub report_hash: Digest,
    /// Whether the evidence was accepted.
    pub accepted: bool,
    /// Stable failure kind (`""` when accepted) — a
    /// [`Violation`](crate::Violation) kind, a session-error kind, or
    /// `"wire"`.
    pub kind: String,
    /// Human-readable failure detail (`""` when accepted).
    pub detail: String,
    /// Path events reconstructed (0 on rejection).
    pub events: u32,
    /// Replay steps executed (0 on rejection).
    pub steps: u64,
    /// Digest of the verifier's stats snapshot ([`stats_digest`]).
    pub stats_digest: Digest,
    /// Dictionary hits carried by the judged report stream.
    pub dict_hits: u32,
    /// Replay-cache hits at the snapshot (provenance, not per-job).
    pub cache_hits: u64,
    /// Replay-cache misses at the snapshot.
    pub cache_misses: u64,
    /// Logical timestamp: strictly increasing per producer (session
    /// response counter, serve round counter, …).
    pub seq: u64,
}

impl Default for VerdictDraft {
    fn default() -> VerdictDraft {
        VerdictDraft {
            device: String::new(),
            chal: Challenge([0u8; 32]),
            report_hash: [0u8; 32],
            accepted: false,
            kind: String::new(),
            detail: String::new(),
            events: 0,
            steps: 0,
            stats_digest: [0u8; 32],
            dict_hits: 0,
            cache_hits: 0,
            cache_misses: 0,
            seq: 0,
        }
    }
}

/// A sealed verdict: a [`VerdictDraft`] plus its MAC. The byte form
/// ([`VerdictRecord::encode`]) is canonical — equal records encode to
/// equal bytes, and [`VerdictRecord::record_hash`] over those bytes is
/// the identity every other subsystem cites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictRecord {
    /// The sealed fields.
    pub fields: VerdictDraft,
    /// HMAC-SHA256 over the encoded body under the sealing key.
    pub tag: Digest,
}

/// A failure while decoding a [`VerdictRecord`].
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new decode failures can be added without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerdictError {
    /// The buffer ended mid-record.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// The record did not start with the magic bytes.
    BadMagic {
        /// Byte offset of the bad record.
        offset: usize,
    },
    /// Unsupported record version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// A declared string length is implausibly large for the buffer.
    BadLength {
        /// The offending length.
        len: u32,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the offending field.
        offset: usize,
    },
    /// Bytes remained after a complete record.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for VerdictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerdictError::Truncated { offset } => write!(f, "record truncated at byte {offset}"),
            VerdictError::BadMagic { offset } => write!(f, "bad record magic at byte {offset}"),
            VerdictError::BadVersion { found } => write!(f, "unsupported record version {found}"),
            VerdictError::BadLength { len } => write!(f, "implausible string length {len}"),
            VerdictError::BadUtf8 { offset } => write!(f, "invalid UTF-8 at byte {offset}"),
            VerdictError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after record")
            }
        }
    }
}

impl std::error::Error for VerdictError {}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], VerdictError> {
        if n > self.buf.len() - self.pos {
            return Err(VerdictError::Truncated { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, VerdictError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, VerdictError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, VerdictError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn arr32(&mut self) -> Result<[u8; 32], VerdictError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(self.take(32)?);
        Ok(out)
    }

    fn string(&mut self) -> Result<String, VerdictError> {
        let len = self.u32()?;
        if len as usize > self.buf.len() {
            return Err(VerdictError::BadLength { len });
        }
        let at = self.pos;
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| VerdictError::BadUtf8 { offset: at })
    }
}

impl VerdictRecord {
    /// Seals a draft: encodes the body and MACs it under `seal_key`
    /// (derive one with [`verdict_seal_key`]).
    pub fn seal(seal_key: &[u8], fields: VerdictDraft) -> VerdictRecord {
        let body = encode_body(&fields);
        VerdictRecord {
            tag: seal_tag(seal_key, &body),
            fields,
        }
    }

    /// Canonical byte encoding: body followed by the 32-byte tag.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = encode_body(&self.fields);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Decodes one record, requiring the buffer to contain exactly one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`VerdictError`] on any malformed input; the
    /// seal is *not* checked here — call
    /// [`authenticate`](VerdictRecord::authenticate) for that.
    pub fn decode(bytes: &[u8]) -> Result<VerdictRecord, VerdictError> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        if cur.take(4)? != MAGIC {
            return Err(VerdictError::BadMagic { offset: 0 });
        }
        let version = cur.u8()?;
        if version != VERSION {
            return Err(VerdictError::BadVersion { found: version });
        }
        let flags = cur.u8()?;
        let seq = cur.u64()?;
        let chal = Challenge(cur.arr32()?);
        let report_hash = cur.arr32()?;
        let stats_digest = cur.arr32()?;
        let events = cur.u32()?;
        let steps = cur.u64()?;
        let dict_hits = cur.u32()?;
        let cache_hits = cur.u64()?;
        let cache_misses = cur.u64()?;
        let device = cur.string()?;
        let kind = cur.string()?;
        let detail = cur.string()?;
        let tag = cur.arr32()?;
        if cur.pos != bytes.len() {
            return Err(VerdictError::TrailingBytes {
                extra: bytes.len() - cur.pos,
            });
        }
        Ok(VerdictRecord {
            fields: VerdictDraft {
                device,
                chal,
                report_hash,
                accepted: flags & 1 != 0,
                kind,
                detail,
                events,
                steps,
                stats_digest,
                dict_hits,
                cache_hits,
                cache_misses,
                seq,
            },
            tag,
        })
    }

    /// Recomputes the seal and compares it against the carried tag in
    /// constant time.
    pub fn authenticate(&self, seal_key: &[u8]) -> bool {
        let body = encode_body(&self.fields);
        verify_tag(&seal_tag(seal_key, &body), &self.tag)
    }

    /// SHA-256 over the canonical encoding — the identity other
    /// subsystems (audit chain, fleet transitions) cite.
    pub fn record_hash(&self) -> Digest {
        sha256(&self.encode())
    }

    /// Short citation form of [`VerdictRecord::record_hash`]: the
    /// first 6 bytes as 12 hex chars.
    pub fn short_hash(&self) -> String {
        short_hash_hex(&self.record_hash())
    }

    /// Whether the evidence was accepted.
    pub fn accepted(&self) -> bool {
        self.fields.accepted
    }

    /// Stable outcome word: `"accepted"`, or the failure kind.
    pub fn outcome(&self) -> &str {
        if self.fields.accepted {
            "accepted"
        } else {
            &self.fields.kind
        }
    }

    /// Canonical one-line rendering, shared by `rap verify`, `rap top`
    /// and `rap audit show` so a verdict reads identically everywhere.
    pub fn render(&self) -> String {
        let f = &self.fields;
        if f.accepted {
            format!(
                "ACCEPT {} seq={} events={} steps={} rec={}",
                f.device,
                f.seq,
                f.events,
                f.steps,
                self.short_hash()
            )
        } else {
            format!(
                "REJECT {} seq={} kind={} rec={}",
                f.device,
                f.seq,
                f.kind,
                self.short_hash()
            )
        }
    }
}

/// Renders a record hash in its short citation form (12 hex chars).
pub fn short_hash_hex(hash: &Digest) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(12);
    for b in &hash[..6] {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn encode_body(f: &VerdictDraft) -> Vec<u8> {
    let mut out = Vec::with_capacity(165 + f.device.len() + f.kind.len() + f.detail.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(u8::from(f.accepted));
    out.extend_from_slice(&f.seq.to_le_bytes());
    out.extend_from_slice(&f.chal.0);
    out.extend_from_slice(&f.report_hash);
    out.extend_from_slice(&f.stats_digest);
    out.extend_from_slice(&f.events.to_le_bytes());
    out.extend_from_slice(&f.steps.to_le_bytes());
    out.extend_from_slice(&f.dict_hits.to_le_bytes());
    out.extend_from_slice(&f.cache_hits.to_le_bytes());
    out.extend_from_slice(&f.cache_misses.to_le_bytes());
    for s in [&f.device, &f.kind, &f.detail] {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out
}

fn seal_tag(seal_key: &[u8], body: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(seal_key);
    mac.update(SEAL_DOMAIN);
    mac.update(body);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::device_key;

    fn sample() -> VerdictDraft {
        VerdictDraft {
            device: "dev-7".to_string(),
            chal: Challenge::from_seed(9),
            report_hash: sha256(b"reports"),
            accepted: true,
            events: 12,
            steps: 345,
            stats_digest: sha256(b"stats"),
            dict_hits: 3,
            cache_hits: 40,
            cache_misses: 2,
            seq: 5,
            ..VerdictDraft::default()
        }
    }

    fn seal_key() -> Vec<u8> {
        verdict_seal_key(&device_key("verdict-unit"))
    }

    #[test]
    fn roundtrip_and_authenticate() {
        let rec = VerdictRecord::seal(&seal_key(), sample());
        let bytes = rec.encode();
        let back = VerdictRecord::decode(&bytes).expect("decodes");
        assert_eq!(back, rec);
        assert!(back.authenticate(&seal_key()));
        assert!(!back.authenticate(&verdict_seal_key(&device_key("other"))));
        assert_eq!(back.record_hash(), rec.record_hash());
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = VerdictRecord::seal(&seal_key(), sample());
        let b = VerdictRecord::seal(&seal_key(), sample());
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.record_hash(), b.record_hash());
    }

    #[test]
    fn truncation_detected_at_every_boundary() {
        let bytes = VerdictRecord::seal(&seal_key(), sample()).encode();
        for cut in 0..bytes.len() {
            match VerdictRecord::decode(&bytes[..cut]) {
                Err(VerdictError::Truncated { .. }) => {}
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_version_and_trailing() {
        let bytes = VerdictRecord::seal(&seal_key(), sample()).encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            VerdictRecord::decode(&bad),
            Err(VerdictError::BadMagic { offset: 0 })
        ));
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            VerdictRecord::decode(&bad),
            Err(VerdictError::BadVersion { found: 9 })
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            VerdictRecord::decode(&long),
            Err(VerdictError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn adversarial_length_is_typed() {
        let rec = VerdictRecord::seal(&seal_key(), sample());
        let bytes = rec.encode();
        // The device length field sits after the fixed 126-byte prefix.
        let dev_len_at = 4 + 1 + 1 + 8 + 32 + 32 + 32 + 4 + 8 + 4 + 8 + 8;
        let mut bad = bytes.clone();
        bad[dev_len_at..dev_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            VerdictRecord::decode(&bad),
            Err(VerdictError::BadLength { len: u32::MAX })
        ));
        let mut bad = bytes;
        // Corrupt the device bytes into invalid UTF-8.
        bad[dev_len_at + 4] = 0xFF;
        bad[dev_len_at + 5] = 0xFF;
        assert!(matches!(
            VerdictRecord::decode(&bad),
            Err(VerdictError::BadUtf8 { .. })
        ));
    }

    #[test]
    fn any_field_tamper_invalidates_tag() {
        let rec = VerdictRecord::seal(&seal_key(), sample());
        let mut bytes = rec.encode();
        for at in 5..bytes.len() - 33 {
            bytes[at] ^= 1;
            if let Ok(back) = VerdictRecord::decode(&bytes) {
                assert!(!back.authenticate(&seal_key()), "flip at {at} not caught");
            }
            bytes[at] ^= 1;
        }
    }

    #[test]
    fn render_is_canonical() {
        let rec = VerdictRecord::seal(&seal_key(), sample());
        let line = rec.render();
        assert!(line.starts_with("ACCEPT dev-7 seq=5 events=12 steps=345 rec="));
        assert_eq!(rec.short_hash().len(), 12);
        assert_eq!(rec.outcome(), "accepted");

        let rejected = VerdictRecord::seal(
            &seal_key(),
            VerdictDraft {
                accepted: false,
                kind: "return-mismatch".to_string(),
                detail: "got 0x5 want 0x9".to_string(),
                events: 0,
                steps: 0,
                ..sample()
            },
        );
        assert!(rejected
            .render()
            .starts_with("REJECT dev-7 seq=5 kind=return-mismatch rec="));
        assert_eq!(rejected.outcome(), "return-mismatch");
    }

    #[test]
    fn stats_digest_commits_to_every_counter() {
        let base = VerifierStats {
            cache_hits: 1,
            cache_misses: 2,
            cached_steps: 3,
            live_steps: 4,
            jobs: 5,
            wall_ns: 6,
        };
        let d0 = stats_digest(&base);
        let mut other = base;
        other.live_steps += 1;
        assert_ne!(d0, stats_digest(&other));
        assert_eq!(d0, stats_digest(&base));
        // Wall-clock is deliberately excluded: same replay work, any
        // timing, same digest (record hashes must be deterministic).
        let mut timed = base;
        timed.wall_ns += 1_000_000;
        assert_eq!(d0, stats_digest(&timed));
    }
}
