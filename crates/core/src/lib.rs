//! # rap-track — Runtime Attestation via Parallel Tracking
//!
//! The paper's primary contribution: Control Flow Attestation that logs
//! the control-flow path *in parallel* with execution using the MTB and
//! DWT tracing extensions, instead of per-branch calls into the TEE.
//!
//! * [`CfaEngine`] — the Prover-side Secure-World engine: locks the
//!   binary, measures `H_MEM`, arms the DWT/MTB, runs the application,
//!   emits signed (partial) [`Report`]s (§IV-A, §IV-E).
//! * [`Verifier`] — authenticates the report stream and performs
//!   lossless path reconstruction by replaying the deployed binary
//!   against `CF_Log`, detecting ROP/JOP/log-forgery as typed
//!   [`Violation`]s (§IV-F).
//!
//! The offline phase lives in [`rap_link`]; the platform in
//! [`mcu_sim`].
//!
//! ```
//! use armv8m_isa::{Asm, Reg};
//! use rap_link::{LinkOptions, link};
//! use rap_track::{CfaEngine, Challenge, EngineConfig, Verifier, device_key};
//!
//! // Build and link an application with a runtime-variable loop.
//! let mut a = Asm::new();
//! a.func("main");
//! a.movi(Reg::R2, 5);
//! a.mov(Reg::R0, Reg::R2);
//! a.label("loop");
//! a.subi(Reg::R0, Reg::R0, 1);
//! a.cmpi(Reg::R0, 0);
//! a.bne("loop");
//! a.halt();
//! let linked = link(&a.into_module(), 0, LinkOptions::default())?;
//!
//! // Prover: attest an execution.
//! let engine = CfaEngine::new(device_key("demo"));
//! let mut machine = mcu_sim::Machine::new(linked.image.clone());
//! let chal = Challenge::from_seed(42);
//! let att = engine.attest(&mut machine, &linked.map, chal, EngineConfig::default())?;
//!
//! // Verifier: authenticate and reconstruct the path.
//! let verifier = Verifier::new(device_key("demo"), linked.image.clone(), linked.map.clone());
//! let path = verifier.verify(chal, &att.reports)?;
//! assert!(path.events.len() >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod batch;
mod dict;
mod engine;
mod error;
mod metrics;
mod policy;
mod protocol;
mod report;
mod verdict;
mod verifier;
mod wire;

pub use batch::{effective_batch_config, BatchOptions, Fleet, FleetJob, JobOutcome};
pub use dict::{DictFormatError, DictParams, SubPathDict};
pub use engine::{Attestation, CfaEngine, EngineConfig};
pub use error::Error;
pub use metrics::{Metrics, VerifierStats};
pub use policy::{PathPolicy, PathStats, PolicyFinding};
pub use protocol::{SessionError, VerifierSession};
pub use report::{device_key, CfLog, Challenge, Key, Report};
pub use verdict::{
    short_hash_hex, stats_digest, verdict_seal_key, VerdictDraft, VerdictError, VerdictRecord,
};
pub use verifier::{
    BuildError, PathEvent, ReplaySession, VerifiedPath, Verifier, VerifierBuilder, Violation,
};
pub use wire::{decode_stream, encode_report, encode_stream, WireError};

/// The types almost every caller needs, importable in one line:
///
/// ```
/// use rap_track::prelude::*;
/// ```
pub mod prelude {
    pub use crate::batch::{BatchOptions, Fleet, FleetJob, JobOutcome};
    pub use crate::dict::{DictParams, SubPathDict};
    pub use crate::engine::{Attestation, CfaEngine, EngineConfig};
    pub use crate::error::Error;
    pub use crate::protocol::{SessionError, VerifierSession};
    pub use crate::report::{device_key, Challenge, Key, Report};
    pub use crate::verdict::{verdict_seal_key, VerdictDraft, VerdictError, VerdictRecord};
    pub use crate::verifier::{PathEvent, VerifiedPath, Verifier, VerifierBuilder, Violation};
    pub use crate::wire::{decode_stream, encode_stream, WireError};
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::{Asm, Reg};
    use mcu_sim::{ExecError, InjectedWrite, Machine, RAM_BASE, RAM_SIZE};
    use rap_link::{link, LinkOptions, LinkedProgram};

    fn attest_and_verify(
        linked: &LinkedProgram,
        prep: impl FnOnce(&mut Machine),
    ) -> (Result<VerifiedPath, Violation>, Attestation) {
        let key = device_key("e2e");
        let engine = CfaEngine::new(key.clone());
        let mut machine = Machine::new(linked.image.clone());
        prep(&mut machine);
        let chal = Challenge::from_seed(77);
        let att = engine
            .attest(&mut machine, &linked.map, chal, EngineConfig::default())
            .expect("attestation runs");
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());
        (verifier.verify(chal, &att.reports), att)
    }

    #[test]
    fn benign_execution_verifies_end_to_end() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R1, 2);
        a.cmpi(Reg::R1, 2);
        a.beq("ok");
        a.movi(Reg::R4, 99);
        a.label("ok");
        a.bl("worker");
        a.load_addr(Reg::R3, "leaf");
        a.blx(Reg::R3);
        a.movi(Reg::R4, 6);
        a.mov(Reg::R0, Reg::R4);
        a.label("spin");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("spin");
        a.halt();
        a.func("worker");
        a.push(&[Reg::R4, Reg::Lr]);
        a.bl("leaf");
        a.pop(&[Reg::R4, Reg::Pc]);
        a.func("leaf");
        a.addi(Reg::R6, Reg::R6, 1);
        a.ret();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");

        let (result, att) = attest_and_verify(&linked, |_| {});
        let path = result.expect("benign run verifies");

        let has = |f: &dyn Fn(&PathEvent) -> bool| path.events.iter().any(f);
        assert!(has(&|e| matches!(e, PathEvent::CondTaken { .. })));
        assert!(has(&|e| matches!(e, PathEvent::Call { .. })));
        assert!(has(&|e| matches!(e, PathEvent::IndirectCall { .. })));
        assert!(has(&|e| matches!(e, PathEvent::Return { .. })));
        assert!(has(&|e| matches!(
            e,
            PathEvent::LoopIterations { count: 6, .. }
        )));
        assert!(has(&|e| matches!(e, PathEvent::Halt(_))));
        assert!(att.cflog_bytes() > 0);
    }

    #[test]
    fn rop_attack_is_detected() {
        // worker pushes LR; the adversary overwrites the saved return
        // address on the stack mid-execution, diverting the POP {PC}.
        let mut a = Asm::new();
        a.func("main");
        a.bl("worker");
        a.label("after");
        a.halt();
        a.func("worker");
        a.push(&[Reg::Lr]);
        a.addi(Reg::R0, Reg::R0, 1);
        a.nop();
        a.nop();
        a.nop();
        a.pop(&[Reg::Pc]);
        a.func("gadget");
        a.movi(Reg::R7, 0xEE);
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let gadget = linked.image.symbol("gadget").unwrap();

        let (result, _) = attest_and_verify(&linked, |machine| {
            // The saved LR sits at the top of the stack after PUSH {LR}.
            machine.inject_write(InjectedWrite {
                after_instrs: 4, // after BL + PUSH + ADDI + NOP
                addr: RAM_BASE + RAM_SIZE - 4,
                value: gadget,
            });
        });
        match result {
            Err(Violation::ReturnMismatch { got, .. }) => assert_eq!(got, gadget),
            other => panic!("expected ReturnMismatch, got {other:?}"),
        }
    }

    #[test]
    fn jop_attack_on_function_pointer_is_detected() {
        // The app calls through a function pointer in RAM; the
        // adversary redirects it into the middle of a function.
        let mut a = Asm::new();
        a.func("main");
        a.mov32(Reg::R5, RAM_BASE);
        a.load_addr(Reg::R0, "good");
        a.str_(Reg::R0, Reg::R5, 0);
        a.nop();
        a.ldr(Reg::R3, Reg::R5, 0);
        a.blx(Reg::R3);
        a.halt();
        a.func("good");
        a.movi(Reg::R7, 1);
        a.label("inside_good");
        a.addi(Reg::R7, Reg::R7, 1);
        a.ret();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let inside = linked.image.symbol("inside_good").unwrap();

        let (result, _) = attest_and_verify(&linked, |machine| {
            machine.inject_write(InjectedWrite {
                after_instrs: 6,
                addr: RAM_BASE,
                value: inside,
            });
        });
        match result {
            Err(Violation::InvalidCallTarget { dest, .. }) => assert_eq!(dest, inside),
            other => panic!("expected InvalidCallTarget, got {other:?}"),
        }
    }

    #[test]
    fn code_injection_is_blocked_by_locked_mpu() {
        let mut a = Asm::new();
        a.func("main");
        a.nop();
        a.nop();
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let engine = CfaEngine::new(device_key("e2e"));
        let mut machine = Machine::new(linked.image.clone());
        machine.inject_write(InjectedWrite {
            after_instrs: 1,
            addr: linked.image.base(),
            value: 0xFFFF_FFFF,
        });
        let err = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(1),
                EngineConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::MpuViolation { .. }));
    }

    #[test]
    fn tampered_log_fails_authentication() {
        let mut a = Asm::new();
        a.func("main");
        a.cmpi(Reg::R0, 0);
        a.beq("t");
        a.label("t");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let key = device_key("e2e");
        let engine = CfaEngine::new(key.clone());
        let mut machine = Machine::new(linked.image.clone());
        let chal = Challenge::from_seed(7);
        let mut att = engine
            .attest(&mut machine, &linked.map, chal, EngineConfig::default())
            .expect("attests");
        att.reports[0].log.mtb.clear();
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());
        assert!(matches!(
            verifier.verify(chal, &att.reports),
            Err(Violation::BadTag { seq: 0 })
        ));
    }

    #[test]
    fn replayed_report_fails_challenge_check() {
        let mut a = Asm::new();
        a.func("main");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let key = device_key("e2e");
        let engine = CfaEngine::new(key.clone());
        let mut machine = Machine::new(linked.image.clone());
        let old_chal = Challenge::from_seed(1);
        let att = engine
            .attest(&mut machine, &linked.map, old_chal, EngineConfig::default())
            .expect("attests");
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());
        assert!(matches!(
            verifier.verify(Challenge::from_seed(2), &att.reports),
            Err(Violation::ChallengeMismatch)
        ));
    }

    #[test]
    fn truncated_partial_stream_is_rejected() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 30);
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.cmpi(Reg::R1, 100);
        a.beq("skip");
        a.addi(Reg::R1, Reg::R1, 1);
        a.label("skip");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let key = device_key("e2e");
        let engine = CfaEngine::new(key.clone());
        let mut machine = Machine::with_mtb(
            linked.image.clone(),
            trace_units::MtbConfig {
                capacity: 8,
                activation_delay: 1,
            },
        );
        let chal = Challenge::from_seed(3);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    watermark: Some(4),
                    max_instrs: 1_000_000,
                },
            )
            .expect("attests");
        assert!(att.reports.len() > 2);
        let verifier = Verifier::new(key, linked.image.clone(), linked.map.clone());

        verifier.verify(chal, &att.reports).expect("full stream ok");

        let mut dropped = att.reports.clone();
        dropped.remove(1);
        assert!(matches!(
            verifier.verify(chal, &dropped),
            Err(Violation::BadReportStream(_))
        ));

        let mut swapped = att.reports.clone();
        swapped.swap(0, 1);
        assert!(matches!(
            verifier.verify(chal, &swapped),
            Err(Violation::BadReportStream(_))
        ));
    }

    #[test]
    fn forward_loop_path_reconstruction() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 0);
        a.mov32(Reg::R2, RAM_BASE);
        a.label("head");
        a.ldr(Reg::R1, Reg::R2, 0);
        a.cmpi(Reg::R0, 3);
        a.beq("out");
        a.addi(Reg::R0, Reg::R0, 1);
        a.b("head");
        a.label("out");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let (result, _) = attest_and_verify(&linked, |_| {});
        let path = result.expect("verifies");
        let continues = path
            .events
            .iter()
            .filter(|e| matches!(e, PathEvent::LoopContinue { .. }))
            .count();
        assert_eq!(continues, 3);
        assert!(path
            .events
            .iter()
            .any(|e| matches!(e, PathEvent::CondTaken { .. })));
    }

    #[test]
    fn rendered_path_resolves_symbols() {
        let mut a = Asm::new();
        a.func("main");
        a.bl("helper");
        a.halt();
        a.func("helper");
        a.movi(Reg::R2, 7);
        a.mov(Reg::R0, Reg::R2);
        a.label("spin");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("spin");
        a.ret();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let (result, _) = attest_and_verify(&linked, |_| {});
        let listing = result.expect("verifies").render(&linked.image);
        assert!(listing.contains("enter main"), "{listing}");
        assert!(listing.contains("call helper"), "{listing}");
        assert!(listing.contains("x7"), "{listing}");
        assert!(listing.contains("halt"), "{listing}");
    }

    #[test]
    fn static_loop_replay_without_any_log() {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 12);
        a.label("w");
        a.nop();
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("w");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let (result, att) = attest_and_verify(&linked, |_| {});
        let path = result.expect("verifies");
        assert_eq!(att.cflog_bytes(), 0);
        assert!(path
            .events
            .iter()
            .any(|e| matches!(e, PathEvent::LoopIterations { count: 12, .. })));
    }
}
