//! Shared measurement record for the paper's figures.
//!
//! Every CFA configuration (RAP-Track, naive MTB, TRACES-style
//! instrumentation, plain baseline) reduces a run to the same
//! [`Metrics`] so the figure harness can tabulate them uniformly.

/// Measurements from one attested (or baseline) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    /// CPU cycles consumed by the application run (Fig. 1b / Fig. 8).
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
    /// Total `CF_Log` bytes produced (Fig. 1a / Fig. 9).
    pub cflog_bytes: usize,
    /// Deployed code size in bytes (Fig. 10).
    pub code_bytes: u32,
    /// Number of report transmissions to the Verifier (§V-B).
    pub transmissions: usize,
}

impl Metrics {
    /// Runtime overhead of `self` relative to `baseline`, in percent.
    ///
    /// # Panics
    ///
    /// Panics when the baseline ran for zero cycles (a setup error).
    pub fn overhead_pct(&self, baseline: &Metrics) -> f64 {
        assert!(baseline.cycles > 0, "baseline must have run");
        (self.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0
    }

    /// Ratio of this run's `CF_Log` size to `other`'s (∞ when the
    /// other log is empty and this one is not).
    pub fn cflog_ratio(&self, other: &Metrics) -> f64 {
        if other.cflog_bytes == 0 {
            if self.cflog_bytes == 0 { 1.0 } else { f64::INFINITY }
        } else {
            self.cflog_bytes as f64 / other.cflog_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_computation() {
        let base = Metrics {
            cycles: 1000,
            ..Metrics::default()
        };
        let slow = Metrics {
            cycles: 1500,
            ..Metrics::default()
        };
        assert!((slow.overhead_pct(&base) - 50.0).abs() < 1e-9);
        assert!((base.overhead_pct(&base)).abs() < 1e-9);
    }

    #[test]
    fn cflog_ratio_handles_empty() {
        let none = Metrics::default();
        let some = Metrics {
            cflog_bytes: 64,
            ..Metrics::default()
        };
        assert_eq!(some.cflog_ratio(&none), f64::INFINITY);
        assert_eq!(none.cflog_ratio(&none), 1.0);
        assert!((some.cflog_ratio(&some) - 1.0).abs() < 1e-9);
    }
}
