//! Shared measurement record for the paper's figures.
//!
//! Every CFA configuration (RAP-Track, naive MTB, TRACES-style
//! instrumentation, plain baseline) reduces a run to the same
//! [`Metrics`] so the figure harness can tabulate them uniformly.

/// Measurements from one attested (or baseline) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    /// CPU cycles consumed by the application run (Fig. 1b / Fig. 8).
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
    /// Total `CF_Log` bytes produced (Fig. 1a / Fig. 9).
    pub cflog_bytes: usize,
    /// Deployed code size in bytes (Fig. 10).
    pub code_bytes: u32,
    /// Number of report transmissions to the Verifier (§V-B).
    pub transmissions: usize,
}

impl Metrics {
    /// Runtime overhead of `self` relative to `baseline`, in percent.
    ///
    /// Returns `None` when the baseline ran for zero cycles (a
    /// zero-length workload or a misconfigured run) — the ratio is
    /// undefined, and callers render it as `n/a` instead of panicking.
    pub fn overhead_pct(&self, baseline: &Metrics) -> Option<f64> {
        if baseline.cycles == 0 {
            return None;
        }
        Some((self.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0)
    }

    /// Ratio of this run's `CF_Log` size to `other`'s (∞ when the
    /// other log is empty and this one is not).
    pub fn cflog_ratio(&self, other: &Metrics) -> f64 {
        if other.cflog_bytes == 0 {
            if self.cflog_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cflog_bytes as f64 / other.cflog_bytes as f64
        }
    }
}

/// Verifier-side operational counters, snapshotted from a
/// [`Verifier`](crate::Verifier) (shared across all clones of it).
///
/// Replay work splits into *cached* steps (bulk-applied from the
/// straight-line replay cache) and *live* steps (instruction-by-
/// instruction decode at log-consuming sites); the hit rate says how
/// often a deterministic stretch was already memoized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifierStats {
    /// Replay-cache lookups that found a memoized segment.
    pub cache_hits: u64,
    /// Replay-cache lookups that had to build the segment.
    pub cache_misses: u64,
    /// Instructions replayed by bulk-applying cached segments.
    pub cached_steps: u64,
    /// Instructions replayed live (non-deterministic sites).
    pub live_steps: u64,
    /// Completed verification jobs (successful or violated).
    pub jobs: u64,
    /// Total wall-clock nanoseconds spent inside `verify`.
    pub wall_ns: u64,
}

impl VerifierStats {
    /// Fraction of cache lookups that hit, in `[0, 1]`; 0 when no
    /// lookup has happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean wall-clock time per job in nanoseconds (0 with no jobs).
    pub fn mean_job_ns(&self) -> u64 {
        self.wall_ns.checked_div(self.jobs).unwrap_or(0)
    }

    /// Verification throughput implied by the counters, in jobs per
    /// second of *accumulated* verify time (not wall time — concurrent
    /// jobs overlap).
    pub fn jobs_per_busy_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.jobs as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifier_stats_rates() {
        let stats = VerifierStats {
            cache_hits: 3,
            cache_misses: 1,
            cached_steps: 400,
            live_steps: 100,
            jobs: 2,
            wall_ns: 2_000_000,
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(stats.mean_job_ns(), 1_000_000);
        assert!((stats.jobs_per_busy_sec() - 1000.0).abs() < 1e-6);
        assert_eq!(VerifierStats::default().hit_rate(), 0.0);
        assert_eq!(VerifierStats::default().mean_job_ns(), 0);
    }

    #[test]
    fn overhead_computation() {
        let base = Metrics {
            cycles: 1000,
            ..Metrics::default()
        };
        let slow = Metrics {
            cycles: 1500,
            ..Metrics::default()
        };
        assert!((slow.overhead_pct(&base).unwrap() - 50.0).abs() < 1e-9);
        assert!((base.overhead_pct(&base).unwrap()).abs() < 1e-9);
        // Zero-cycle baseline: undefined, not a panic.
        assert_eq!(slow.overhead_pct(&Metrics::default()), None);
    }

    #[test]
    fn cflog_ratio_handles_empty() {
        let none = Metrics::default();
        let some = Metrics {
            cflog_bytes: 64,
            ..Metrics::default()
        };
        assert_eq!(some.cflog_ratio(&none), f64::INFINITY);
        assert_eq!(none.cflog_ratio(&none), 1.0);
        assert!((some.cflog_ratio(&some) - 1.0).abs() < 1e-9);
    }
}
