//! Speculation dictionaries: offline-mined recurring transfer
//! sub-paths (SpecCFA-style), bound to one application image.
//!
//! A [`SubPathDict`] is produced by an offline profiling pass
//! ([`SubPathDict::mine`], driven by `rap profile`): it records the
//! top-K recurring MTB sub-paths of a representative run, scored by
//! the wire bytes they save. The Prover's Secure World streams
//! outgoing transfers through a [`trace_units::SubPathMatcher`] built
//! from the same entries and replaces each matched run with a 9-byte
//! hit record; the Verifier expands hits back (after validating the id
//! and the image binding) and bulk-replays them through a per-entry
//! macro cache.
//!
//! The artifact is a deterministic, versioned text format in the same
//! style as the rap-link map (`rap-track-map v1`):
//!
//! ```text
//! rap-track-dict v1
//! image <64 hex digits of H_MEM>
//! label <free text>
//! params top_k=64 min_support=3 max_len=16
//! entry 0 3 1f4:200 204:1f0 1f8:204
//! entry 1 2 ...
//! ```
//!
//! Entry ids are their line order; transfers are `source:dest` in hex.
//! Both sides of the protocol key the dictionary by the image hash:
//! a dictionary mined for another binary is rejected at verify time
//! with [`crate::Violation::DictImageMismatch`].

use std::collections::BTreeMap;

use rap_crypto::Digest;
use trace_units::{SubPathMatcher, TraceEntry};

use crate::report::CfLog;

/// Mining bounds for [`SubPathDict::mine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictParams {
    /// Maximum number of dictionary entries kept.
    pub top_k: usize,
    /// Minimum number of occurrences for a sub-path to qualify.
    pub min_support: u32,
    /// Maximum sub-path length in transfers (entries shorter than 2
    /// never compress and are never mined).
    pub max_len: usize,
}

impl Default for DictParams {
    fn default() -> DictParams {
        DictParams {
            top_k: 64,
            min_support: 3,
            max_len: 16,
        }
    }
}

/// A mined speculation dictionary, keyed by the image it profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPathDict {
    /// `H_MEM` of the image this dictionary was mined against.
    pub image_hash: Digest,
    /// Free-form workload label (recorded, not interpreted).
    pub label: String,
    /// The bounds the miner ran with.
    pub params: DictParams,
    entries: Vec<Vec<TraceEntry>>,
}

impl SubPathDict {
    /// Wire size of one dictionary-hit record (kind byte + `at` +
    /// `id`), the unit the §V-B compression analysis charges per hit.
    pub const HIT_BYTES: usize = 9;

    /// Creates a dictionary from explicit entries (test aid; real
    /// dictionaries come from [`SubPathDict::mine`] or
    /// [`SubPathDict::from_text`]). Entries shorter than 2 transfers
    /// are dropped — they can never compress.
    pub fn from_entries(
        image_hash: Digest,
        label: &str,
        entries: Vec<Vec<TraceEntry>>,
    ) -> SubPathDict {
        SubPathDict {
            image_hash,
            label: label.to_string(),
            params: DictParams::default(),
            entries: entries.into_iter().filter(|e| e.len() >= 2).collect(),
        }
    }

    /// Mines the top-K recurring sub-paths of `log`'s MTB stream.
    ///
    /// Deterministic: candidate sub-paths are counted in a `BTreeMap`
    /// and ranked by (saved wire bytes, length, lexicographic order),
    /// so the same log always yields the same artifact. Saved bytes
    /// per hit are `len·8 − 9` (transfers replaced minus the hit
    /// record), multiplied by the candidate's support.
    pub fn mine(log: &CfLog, image_hash: Digest, label: &str, params: DictParams) -> SubPathDict {
        let mtb = &log.mtb;
        let mut support: BTreeMap<&[TraceEntry], u32> = BTreeMap::new();
        for start in 0..mtb.len() {
            let longest = params.max_len.min(mtb.len() - start);
            for len in 2..=longest {
                *support.entry(&mtb[start..start + len]).or_default() += 1;
            }
        }
        let mut ranked: Vec<(&[TraceEntry], u32)> = support
            .into_iter()
            .filter(|&(_, count)| count >= params.min_support)
            .collect();
        // Highest saving first; BTreeMap iteration already fixed the
        // lexicographic tie order, and sort_by is stable.
        ranked.sort_by(|a, b| {
            let save = |(path, count): &(&[TraceEntry], u32)| {
                u64::from(*count) * (path.len() * TraceEntry::BYTES - SubPathDict::HIT_BYTES) as u64
            };
            save(b).cmp(&save(a)).then(b.0.len().cmp(&a.0.len()))
        });
        ranked.truncate(params.top_k);
        SubPathDict {
            image_hash,
            label: label.to_string(),
            params,
            entries: ranked.into_iter().map(|(path, _)| path.to_vec()).collect(),
        }
    }

    /// The dictionary entries, in id order.
    pub fn entries(&self) -> &[Vec<TraceEntry>] {
        &self.entries
    }

    /// The transfers of entry `id`, if it exists.
    pub fn entry(&self, id: u32) -> Option<&[TraceEntry]> {
        self.entries.get(id as usize).map(Vec::as_slice)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Simulates compression of `mtb` and returns
    /// `(raw_bytes, compressed_bytes)` — the offline estimate printed
    /// by `rap profile`.
    pub fn estimate(&self, mtb: &[TraceEntry]) -> (usize, usize) {
        let mut matcher = SubPathMatcher::new(self.entries.clone());
        for &t in mtb {
            matcher.feed(t);
        }
        let (residual, hits) = matcher.finish();
        (
            mtb.len() * TraceEntry::BYTES,
            residual.len() * TraceEntry::BYTES + hits.len() * SubPathDict::HIT_BYTES,
        )
    }

    /// Renders the versioned text artifact.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("rap-track-dict v1\n");
        out.push_str("image ");
        for b in self.image_hash {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
        out.push_str(&format!("label {}\n", self.label));
        out.push_str(&format!(
            "params top_k={} min_support={} max_len={}\n",
            self.params.top_k, self.params.min_support, self.params.max_len
        ));
        for (id, entry) in self.entries.iter().enumerate() {
            out.push_str(&format!("entry {id} {}", entry.len()));
            for t in entry {
                out.push_str(&format!(" {:x}:{:x}", t.source, t.dest));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text artifact.
    ///
    /// # Errors
    ///
    /// Returns a [`DictFormatError`] naming the offending line for any
    /// structural problem: wrong header, malformed hex, duplicate or
    /// out-of-order ids, undersized entries.
    pub fn from_text(text: &str) -> Result<SubPathDict, DictFormatError> {
        let fail = |line: usize, message: &str| DictFormatError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (n, header) = lines.next().ok_or_else(|| fail(1, "empty dictionary"))?;
        if header.trim() != "rap-track-dict v1" {
            return Err(fail(n + 1, "expected header `rap-track-dict v1`"));
        }
        let mut image_hash: Option<Digest> = None;
        let mut label = String::new();
        let mut params = DictParams::default();
        let mut entries: Vec<Vec<TraceEntry>> = Vec::new();
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
            match keyword {
                "image" => {
                    let hex = rest.trim();
                    if hex.len() != 64 {
                        return Err(fail(line_no, "image hash must be 64 hex digits"));
                    }
                    let mut digest = [0u8; 32];
                    for (i, byte) in digest.iter_mut().enumerate() {
                        *byte = parse_hex_byte(&hex[2 * i..2 * i + 2])
                            .ok_or_else(|| fail(line_no, "invalid hex in image hash"))?;
                    }
                    image_hash = Some(digest);
                }
                "label" => label = rest.trim().to_string(),
                "params" => {
                    for field in rest.split_whitespace() {
                        let (key, value) = field
                            .split_once('=')
                            .ok_or_else(|| fail(line_no, "params fields must be key=value"))?;
                        let value: u64 = value
                            .parse()
                            .map_err(|_| fail(line_no, "invalid params value"))?;
                        match key {
                            "top_k" => params.top_k = value as usize,
                            "min_support" => params.min_support = value as u32,
                            "max_len" => params.max_len = value as usize,
                            _ => return Err(fail(line_no, "unknown params field")),
                        }
                    }
                }
                "entry" => {
                    let mut fields = rest.split_whitespace();
                    let id: usize = fields
                        .next()
                        .and_then(|f| f.parse().ok())
                        .ok_or_else(|| fail(line_no, "entry needs a numeric id"))?;
                    if id != entries.len() {
                        return Err(fail(line_no, "entry ids must be dense and in order"));
                    }
                    let count: usize = fields
                        .next()
                        .and_then(|f| f.parse().ok())
                        .ok_or_else(|| fail(line_no, "entry needs a transfer count"))?;
                    let mut transfers = Vec::with_capacity(count);
                    for field in fields {
                        let (src, dst) = field
                            .split_once(':')
                            .ok_or_else(|| fail(line_no, "transfers are source:dest"))?;
                        let source = u32::from_str_radix(src, 16)
                            .map_err(|_| fail(line_no, "invalid transfer source"))?;
                        let dest = u32::from_str_radix(dst, 16)
                            .map_err(|_| fail(line_no, "invalid transfer dest"))?;
                        transfers.push(TraceEntry { source, dest });
                    }
                    if transfers.len() != count {
                        return Err(fail(line_no, "entry transfer count mismatch"));
                    }
                    if transfers.len() < 2 {
                        return Err(fail(line_no, "entries need at least 2 transfers"));
                    }
                    entries.push(transfers);
                }
                _ => return Err(fail(line_no, "unknown keyword")),
            }
        }
        Ok(SubPathDict {
            image_hash: image_hash.ok_or_else(|| fail(1, "missing image line"))?,
            label,
            params,
            entries,
        })
    }
}

fn parse_hex_byte(s: &str) -> Option<u8> {
    if !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u8::from_str_radix(s, 16).ok()
}

/// A structural problem in a dictionary artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictFormatError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for DictFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dictionary line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DictFormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(source: u32, dest: u32) -> TraceEntry {
        TraceEntry { source, dest }
    }

    fn repetitive_log() -> CfLog {
        // (a b) ×4 interleaved with noise: `a b` is the clear winner.
        let mut mtb = Vec::new();
        for i in 0..4u32 {
            mtb.push(t(0x100, 0x200));
            mtb.push(t(0x204, 0x100));
            mtb.push(t(0x300 + i, 0x400));
        }
        CfLog {
            mtb,
            ..CfLog::default()
        }
    }

    #[test]
    fn mining_is_deterministic_and_ranked_by_savings() {
        let log = repetitive_log();
        let params = DictParams {
            top_k: 2,
            min_support: 3,
            max_len: 4,
        };
        let a = SubPathDict::mine(&log, [7; 32], "unit", params);
        let b = SubPathDict::mine(&log, [7; 32], "unit", params);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a
            .entries()
            .iter()
            .any(|e| e.starts_with(&[t(0x100, 0x200), t(0x204, 0x100)])));
    }

    #[test]
    fn min_support_filters_rare_paths() {
        let log = repetitive_log();
        let dict = SubPathDict::mine(
            &log,
            [7; 32],
            "unit",
            DictParams {
                top_k: 64,
                min_support: 100,
                max_len: 4,
            },
        );
        assert!(dict.is_empty());
    }

    #[test]
    fn text_roundtrip() {
        let dict = SubPathDict::mine(&repetitive_log(), [0xAB; 32], "round trip", {
            DictParams::default()
        });
        let text = dict.to_text();
        let back = SubPathDict::from_text(&text).expect("parses");
        assert_eq!(back, dict);
        assert_eq!(back.label, "round trip");
    }

    #[test]
    fn malformed_artifacts_are_typed_errors() {
        assert_eq!(SubPathDict::from_text("").unwrap_err().line, 1);
        assert!(SubPathDict::from_text("rap-track-map v1\n").is_err());
        let base = SubPathDict::from_entries([1; 32], "x", vec![vec![t(1, 2), t(3, 4)]]).to_text();
        // Image hash with a non-hex digit.
        let bad = base.replace("0101", "01zz");
        assert!(SubPathDict::from_text(&bad).is_err());
        // Out-of-order id.
        let bad = base.replace("entry 0", "entry 5");
        assert!(SubPathDict::from_text(&bad).is_err());
        // Undersized entry.
        let bad = base.replace("entry 0 2 1:2 3:4", "entry 0 1 1:2");
        assert!(SubPathDict::from_text(&bad).is_err());
        // Count mismatch.
        let bad = base.replace("entry 0 2 1:2 3:4", "entry 0 3 1:2 3:4");
        assert!(SubPathDict::from_text(&bad).is_err());
    }

    #[test]
    fn estimate_reports_compression() {
        let log = repetitive_log();
        let dict = SubPathDict::mine(&log, [7; 32], "unit", DictParams::default());
        let (raw, compressed) = dict.estimate(&log.mtb);
        assert_eq!(raw, log.mtb.len() * TraceEntry::BYTES);
        assert!(compressed < raw, "{compressed} !< {raw}");
    }
}
