//! CFA report format: `CF_Log`, challenges and authenticated reports.

use rap_crypto::{hmac_sha256, verify_tag, Digest, HmacSha256};
use trace_units::{SubPathHit, TraceEntry};

/// A fresh verifier challenge (nonce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge(pub [u8; 32]);

impl Challenge {
    /// Derives a deterministic challenge from a seed — convenient for
    /// tests and benches (a real Verifier samples randomness).
    pub fn from_seed(seed: u64) -> Challenge {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        Challenge(rap_crypto::sha256(&bytes))
    }
}

/// The control-flow log of one (partial) report.
///
/// Two streams, mirroring the hardware: MTB packets written by the
/// trace unit, and loop-condition records appended by the Secure World
/// on `SG LOG_LOOP_COND` calls (§IV-D). The Verifier consumes each
/// stream in program order during replay, so no interleaving metadata
/// is required.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfLog {
    /// MTB packets, oldest first. When the device runs a speculation
    /// dictionary, matched sub-paths are removed from this vector and
    /// stand in as `dict_hits` records instead.
    pub mtb: Vec<TraceEntry>,
    /// Loop-condition records, oldest first.
    pub loop_records: Vec<u32>,
    /// Speculation-dictionary hits, oldest first. Each hit expands to
    /// the dictionary entry's transfers immediately before residual
    /// `mtb` index `at`; hits therefore carry non-decreasing `at`
    /// values ≤ `mtb.len()`. Empty on devices without a dictionary —
    /// such logs are wire- and MAC-identical to the v1 format.
    pub dict_hits: Vec<SubPathHit>,
}

impl CfLog {
    /// Size of one loop-condition record as stored in Secure-World
    /// memory (marker word + value word).
    pub const LOOP_RECORD_BYTES: usize = 8;

    /// Wire size of one dictionary-hit record (kind byte + `at` +
    /// `id`).
    pub const DICT_HIT_BYTES: usize = 9;

    /// Creates an empty log.
    pub fn new() -> CfLog {
        CfLog::default()
    }

    /// Transmission/storage size in bytes — the paper's Fig. 9 metric.
    pub fn size_bytes(&self) -> usize {
        self.mtb.len() * TraceEntry::BYTES
            + self.loop_records.len() * CfLog::LOOP_RECORD_BYTES
            + self.dict_hits.len() * CfLog::DICT_HIT_BYTES
    }

    /// Whether all streams are empty.
    pub fn is_empty(&self) -> bool {
        self.mtb.is_empty() && self.loop_records.is_empty() && self.dict_hits.is_empty()
    }
}

/// An authenticated (partial or final) CFA report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The challenge this report answers.
    pub chal: Challenge,
    /// Hash of the attested application's binary.
    pub h_mem: Digest,
    /// The log chunk carried by this report.
    pub log: CfLog,
    /// Report sequence number (0-based; partial reports increment it).
    pub seq: u32,
    /// Whether this is the final report of the attestation.
    pub is_final: bool,
    /// Whether the MTB wrapped (evidence was lost) since the previous
    /// report. The Secure World reads this from the hardware's wrap
    /// status; an honest-but-overflowed log must not verify as a
    /// complete path.
    pub overflow: bool,
    /// HMAC-SHA256 over all of the above.
    pub tag: Digest,
}

impl Report {
    /// Builds and authenticates a report.
    pub fn new(
        key: &[u8],
        chal: Challenge,
        h_mem: Digest,
        log: CfLog,
        seq: u32,
        is_final: bool,
        overflow: bool,
    ) -> Report {
        let tag = Report::mac(key, &chal, &h_mem, &log, seq, is_final, overflow);
        Report {
            chal,
            h_mem,
            log,
            seq,
            is_final,
            overflow,
            tag,
        }
    }

    /// Recomputes the MAC and compares it against the carried tag in
    /// constant time.
    pub fn authenticate(&self, key: &[u8]) -> bool {
        let expected = Report::mac(
            key,
            &self.chal,
            &self.h_mem,
            &self.log,
            self.seq,
            self.is_final,
            self.overflow,
        );
        verify_tag(&expected, &self.tag)
    }

    /// Wire size of the report body in bytes (header + log), used by
    /// the communication-cost analysis (§V-B).
    pub fn wire_bytes(&self) -> usize {
        32 /* chal */ + 32 /* h_mem */ + 4 /* seq */ + 1 /* final+overflow flags */
            + 32 /* tag */ + self.log.size_bytes()
    }

    fn mac(
        key: &[u8],
        chal: &Challenge,
        h_mem: &Digest,
        log: &CfLog,
        seq: u32,
        is_final: bool,
        overflow: bool,
    ) -> Digest {
        let mut mac = HmacSha256::new(key);
        mac.update(b"RAP-TRACK-REPORT-V1");
        mac.update(&chal.0);
        mac.update(h_mem);
        mac.update(&seq.to_le_bytes());
        mac.update(&[is_final as u8, overflow as u8]);
        mac.update(&(log.mtb.len() as u32).to_le_bytes());
        for e in &log.mtb {
            mac.update(&e.source.to_le_bytes());
            mac.update(&e.dest.to_le_bytes());
        }
        mac.update(&(log.loop_records.len() as u32).to_le_bytes());
        for r in &log.loop_records {
            mac.update(&r.to_le_bytes());
        }
        // Dictionary hits are only covered when present, so v1 logs
        // (no dictionary) keep their historical byte-identical MACs.
        if !log.dict_hits.is_empty() {
            mac.update(b"RAP-TRACK-DICT-V2");
            mac.update(&(log.dict_hits.len() as u32).to_le_bytes());
            for h in &log.dict_hits {
                mac.update(&h.at.to_le_bytes());
                mac.update(&h.id.to_le_bytes());
            }
        }
        mac.finalize()
    }
}

/// Convenience: MAC key alias to make signatures self-documenting.
pub type Key = Vec<u8>;

/// Derives the per-device attestation key from a seed (test aid).
pub fn device_key(seed: &str) -> Key {
    hmac_sha256(b"RAP-TRACK-DEVICE-KEY", seed.as_bytes()).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> CfLog {
        CfLog {
            mtb: vec![
                TraceEntry {
                    source: 0x100,
                    dest: 0x200,
                },
                TraceEntry {
                    source: 0x104,
                    dest: 0x300,
                },
            ],
            loop_records: vec![7],
            dict_hits: vec![],
        }
    }

    #[test]
    fn log_size_accounting() {
        let log = sample_log();
        assert_eq!(log.size_bytes(), 2 * 8 + 8);
        assert!(!log.is_empty());
        assert!(CfLog::new().is_empty());
        let mut with_hits = log;
        with_hits.dict_hits.push(SubPathHit { at: 0, id: 3 });
        assert_eq!(with_hits.size_bytes(), 2 * 8 + 8 + 9);
    }

    #[test]
    fn dict_hit_tamper_invalidates_tag() {
        let key = device_key("unit");
        let mut log = sample_log();
        log.dict_hits.push(SubPathHit { at: 1, id: 0 });
        let base = Report::new(
            &key,
            Challenge::from_seed(1),
            rap_crypto::sha256(b"binary"),
            log,
            0,
            true,
            false,
        );
        assert!(base.authenticate(&key));

        let mut r = base.clone();
        r.log.dict_hits[0].id = 1;
        assert!(!r.authenticate(&key));

        let mut r = base.clone();
        r.log.dict_hits[0].at = 0;
        assert!(!r.authenticate(&key));

        let mut r = base;
        r.log.dict_hits.clear();
        assert!(!r.authenticate(&key));
    }

    #[test]
    fn dictless_mac_matches_v1_exactly() {
        // A log without dictionary hits must authenticate under the
        // historical v1 MAC computation, bit for bit.
        let key = device_key("unit");
        let chal = Challenge::from_seed(1);
        let h_mem = rap_crypto::sha256(b"binary");
        let log = sample_log();
        let r = Report::new(&key, chal, h_mem, log.clone(), 4, false, true);

        let mut mac = HmacSha256::new(&key);
        mac.update(b"RAP-TRACK-REPORT-V1");
        mac.update(&chal.0);
        mac.update(&h_mem);
        mac.update(&4u32.to_le_bytes());
        mac.update(&[0u8, 1u8]);
        mac.update(&(log.mtb.len() as u32).to_le_bytes());
        for e in &log.mtb {
            mac.update(&e.source.to_le_bytes());
            mac.update(&e.dest.to_le_bytes());
        }
        mac.update(&(log.loop_records.len() as u32).to_le_bytes());
        for rec in &log.loop_records {
            mac.update(&rec.to_le_bytes());
        }
        assert_eq!(r.tag, mac.finalize());
    }

    #[test]
    fn report_roundtrip_authenticates() {
        let key = device_key("unit");
        let r = Report::new(
            &key,
            Challenge::from_seed(1),
            rap_crypto::sha256(b"binary"),
            sample_log(),
            0,
            true,
            false,
        );
        assert!(r.authenticate(&key));
        assert!(!r.authenticate(&device_key("other")));
    }

    #[test]
    fn any_field_tamper_invalidates_tag() {
        let key = device_key("unit");
        let base = Report::new(
            &key,
            Challenge::from_seed(1),
            rap_crypto::sha256(b"binary"),
            sample_log(),
            2,
            false,
            false,
        );

        let mut r = base.clone();
        r.seq = 3;
        assert!(!r.authenticate(&key));

        let mut r = base.clone();
        r.is_final = true;
        assert!(!r.authenticate(&key));

        let mut r = base.clone();
        r.log.mtb[0].dest ^= 4;
        assert!(!r.authenticate(&key));

        let mut r = base.clone();
        r.log.loop_records[0] += 1;
        assert!(!r.authenticate(&key));

        let mut r = base.clone();
        r.h_mem[0] ^= 1;
        assert!(!r.authenticate(&key));

        let mut r = base.clone();
        r.chal = Challenge::from_seed(2);
        assert!(!r.authenticate(&key));

        let mut r = base;
        r.overflow = true;
        assert!(!r.authenticate(&key));
    }

    #[test]
    fn stream_boundary_is_unambiguous() {
        // Moving an element between streams must change the MAC even
        // when the raw bytes could alias.
        let key = device_key("unit");
        let a = Report::new(
            &key,
            Challenge::from_seed(1),
            [0; 32],
            CfLog {
                mtb: vec![TraceEntry { source: 7, dest: 0 }],
                ..CfLog::default()
            },
            0,
            true,
            false,
        );
        let b = Report::new(
            &key,
            Challenge::from_seed(1),
            [0; 32],
            CfLog {
                loop_records: vec![7, 0],
                ..CfLog::default()
            },
            0,
            true,
            false,
        );
        assert_ne!(a.tag, b.tag);
    }

    #[test]
    fn challenge_from_seed_is_deterministic_and_distinct() {
        assert_eq!(Challenge::from_seed(9), Challenge::from_seed(9));
        assert_ne!(Challenge::from_seed(9), Challenge::from_seed(10));
    }

    #[test]
    fn wire_bytes_include_header() {
        let key = device_key("unit");
        let r = Report::new(
            &key,
            Challenge::from_seed(0),
            [0; 32],
            CfLog::new(),
            0,
            true,
            false,
        );
        assert_eq!(r.wire_bytes(), 32 + 32 + 4 + 1 + 32);
    }
}
