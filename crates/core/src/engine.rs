//! The Prover-side CFA Engine (§IV-A).
//!
//! On a CFA request the engine: disables Non-Secure interrupts (implicit
//! in the single-threaded model), write-protects and locks the attested
//! binary behind the NS-MPU, hashes it into `H_MEM`, configures the DWT
//! comparators around MTBAR/MTBDR and the `MTB_FLOW` watermark, runs the
//! application, services `SG` calls (loop-condition logging) and
//! watermark events (partial reports), and finally emits the signed
//! report stream.

use armv8m_isa::service;
use mcu_sim::{cycles, ExecError, Machine, ProtectedRegion, RunOutcome, SecureEnv, SecureWorld};
use rap_crypto::{sha256, Digest};
use rap_link::LinkMap;
use trace_units::{PcRange, RangeAction, SubPathMatcher, TraceEntry};

use crate::report::{CfLog, Challenge, Key, Report};

/// Engine tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// `MTB_FLOW` watermark in entries; a partial report is produced
    /// whenever the trace buffer reaches it. `None` disables partial
    /// reports (the buffer must then never overflow).
    pub watermark: Option<usize>,
    /// Instruction budget for the attested run.
    pub max_instrs: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            watermark: None,
            max_instrs: 50_000_000,
        }
    }
}

/// The result of one attested execution.
#[derive(Debug, Clone)]
pub struct Attestation {
    /// All reports in transmission order; the last one has
    /// `is_final == true`.
    pub reports: Vec<Report>,
    /// Execution metrics of the attested run.
    pub outcome: RunOutcome,
}

impl Attestation {
    /// Total `CF_Log` bytes across all reports (the Fig. 9 metric).
    pub fn cflog_bytes(&self) -> usize {
        self.reports.iter().map(|r| r.log.size_bytes()).sum()
    }

    /// Number of transmissions to the Verifier (§V-B pauses).
    pub fn transmissions(&self) -> usize {
        self.reports.len()
    }

    /// The spliced log streams, in order. Dictionary-hit `at` indices
    /// are rebased from per-report to combined-stream positions.
    pub fn combined_log(&self) -> CfLog {
        let mut log = CfLog::new();
        for r in &self.reports {
            let base = log.mtb.len() as u32;
            log.mtb.extend(r.log.mtb.iter().copied());
            log.loop_records.extend(r.log.loop_records.iter().copied());
            log.dict_hits.extend(r.log.dict_hits.iter().map(|h| {
                let mut h = *h;
                h.at += base;
                h
            }));
        }
        log
    }
}

/// The Secure-World half of the engine, installed while the attested
/// application runs.
struct EngineSecureWorld<'a> {
    key: &'a [u8],
    chal: Challenge,
    h_mem: Digest,
    dict: Option<&'a [Vec<TraceEntry>]>,
    current: CfLog,
    reports: Vec<Report>,
}

impl EngineSecureWorld<'_> {
    fn flush(
        &mut self,
        is_final: bool,
        overflow: bool,
        drained: Vec<trace_units::TraceEntry>,
    ) -> u64 {
        self.current.mtb.extend(drained);
        // §IV-E + speculation: the matcher runs per report, over the
        // full chunk being signed, so hit `at` indices are local to
        // this report's residual stream (matches never span a
        // watermark drain).
        if let Some(entries) = self.dict {
            if !self.current.mtb.is_empty() {
                let mut matcher = SubPathMatcher::new(entries.to_vec());
                for &t in &self.current.mtb {
                    matcher.feed(t);
                }
                let (residual, hits) = matcher.finish();
                rap_obs::counter!("engine_dict_hits_total").add(hits.len() as u64);
                self.current.mtb = residual;
                self.current.dict_hits = hits;
            }
        }
        let log = std::mem::take(&mut self.current);
        let bytes = log.size_bytes();
        let seq = self.reports.len() as u32;
        self.reports.push(Report::new(
            self.key, self.chal, self.h_mem, log, seq, is_final, overflow,
        ));
        rap_obs::counter!("engine_reports_total").inc();
        if !is_final {
            rap_obs::counter!("engine_partial_reports_total").inc();
        }
        rap_obs::counter!("engine_cflog_bytes_total").add(bytes as u64);
        rap_obs::event("report_flush", seq as u64, bytes as u64);
        cycles::REPORT_FIXED + cycles::REPORT_PER_BYTE * bytes as u64
    }
}

impl SecureWorld for EngineSecureWorld<'_> {
    fn on_gateway(&mut self, svc: u8, arg: u32, env: &mut SecureEnv<'_>) -> Result<u64, ExecError> {
        match svc {
            service::LOG_LOOP_COND => {
                self.current.loop_records.push(arg);
                Ok(cycles::LOG_APPEND)
            }
            other => Err(ExecError::UnknownService {
                service: other,
                pc: env.pc,
            }),
        }
    }

    fn on_watermark(&mut self, env: &mut SecureEnv<'_>) -> Result<u64, ExecError> {
        // §IV-E: drain CF_Log, send a partial report, reset the head
        // pointer and resume the application.
        let overflow = env.fabric.mtb().overflowed();
        let drained = env.fabric.mtb_mut().drain();
        Ok(self.flush(false, overflow, drained))
    }
}

/// The CFA Engine: holds the device attestation key (Secure-World
/// storage in the paper's model).
#[derive(Debug, Clone)]
pub struct CfaEngine {
    key: Key,
    dict: Option<Vec<Vec<TraceEntry>>>,
}

impl CfaEngine {
    /// Creates an engine with the given device key.
    pub fn new(key: Key) -> CfaEngine {
        CfaEngine { key, dict: None }
    }

    /// Installs speculation-dictionary entries: every signed report's
    /// MTB stream is run through a [`SubPathMatcher`] and matched
    /// sub-paths ship as compact dictionary-hit records. The entries
    /// must come from a dictionary mined for the deployed image — the
    /// Verifier checks that binding, not the device.
    pub fn with_dict(mut self, entries: Vec<Vec<TraceEntry>>) -> CfaEngine {
        self.dict = Some(entries);
        self
    }

    /// Runs the full attested execution of the application already
    /// loaded into `machine`, whose layout is described by `map`.
    ///
    /// # Errors
    ///
    /// Propagates execution faults ([`ExecError`]) — including the MPU
    /// violation triggered by code-injection attempts — and surfaces
    /// DWT misconfiguration as [`ExecError::SecureWorld`].
    pub fn attest(
        &self,
        machine: &mut Machine,
        map: &LinkMap,
        chal: Challenge,
        config: EngineConfig,
    ) -> Result<Attestation, ExecError> {
        // 1. Lock the application binary (NS-MPU) — §IV-A.
        let image_range = ProtectedRegion {
            base: machine.image().base(),
            limit: machine.image().end(),
        };
        machine.mpu.protect(image_range);
        machine.mpu.lock();

        // 2. Measure the binary.
        let h_mem = sha256(machine.image().bytes());

        // 3. Configure DWT + MTB.
        machine.fabric.dwt_mut().clear();
        machine.fabric.mtb_mut().reset();
        if let (Some(mtbdr), Some(mtbar)) = (map.mtbdr, map.mtbar) {
            machine
                .fabric
                .dwt_mut()
                .watch_range(PcRange {
                    base: mtbdr.start,
                    limit: mtbdr.end,
                    action: RangeAction::StopMtb,
                })
                .map_err(|e| ExecError::SecureWorld(e.to_string()))?;
            machine
                .fabric
                .dwt_mut()
                .watch_range(PcRange {
                    base: mtbar.start,
                    limit: mtbar.end,
                    action: RangeAction::StartMtb,
                })
                .map_err(|e| ExecError::SecureWorld(e.to_string()))?;
        }
        machine
            .fabric
            .mtb_mut()
            .set_flow_watermark(config.watermark);

        // 4. Execute the application with the engine installed.
        let mut secure = EngineSecureWorld {
            key: &self.key,
            chal,
            h_mem,
            dict: self.dict.as_deref(),
            current: CfLog::new(),
            reports: Vec::new(),
        };
        let outcome = machine.run(&mut secure, config.max_instrs)?;

        // 5. Final report: drain what remains and sign. The hardware
        //    wrap status travels with the report — a Verifier must not
        //    accept evidence with silently overwritten packets.
        let overflow = machine.fabric.mtb().overflowed();
        let drained = machine.fabric.mtb_mut().drain();
        let report_cycles = secure.flush(true, overflow, drained);
        // Report generation happens after the app halted; charge it to
        // the attestation, not the application's Fig. 8 cycle count.
        let _ = report_cycles;

        Ok(Attestation {
            reports: secure.reports,
            outcome,
        })
    }

    /// The device key (verifier side shares it in the symmetric setting).
    pub fn key(&self) -> &[u8] {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::device_key;
    use armv8m_isa::{Asm, Reg};
    use rap_link::{link, LinkOptions};
    use trace_units::MtbConfig;

    fn linked_countdown(n: u16) -> rap_link::LinkedProgram {
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R2, n);
        a.mov(Reg::R0, Reg::R2); // variable → SG-logged loop
        a.label("loop");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        link(&a.into_module(), 0, LinkOptions::default()).expect("links")
    }

    #[test]
    fn attest_produces_single_final_report() {
        let linked = linked_countdown(9);
        let engine = CfaEngine::new(device_key("t"));
        let mut machine = Machine::new(linked.image.clone());
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(1),
                EngineConfig::default(),
            )
            .expect("attests");
        assert_eq!(att.reports.len(), 1);
        assert!(att.reports[0].is_final);
        assert!(att.reports[0].authenticate(&device_key("t")));
        assert_eq!(att.combined_log().loop_records, vec![9]);
        assert!(att.combined_log().mtb.is_empty());
    }

    #[test]
    fn mpu_is_locked_during_attestation() {
        let linked = linked_countdown(3);
        let engine = CfaEngine::new(device_key("t"));
        let mut machine = Machine::new(linked.image.clone());
        engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(2),
                EngineConfig::default(),
            )
            .expect("attests");
        assert!(machine.mpu.is_locked());
        assert!(!machine.mpu.write_allowed(linked.image.base()));
    }

    #[test]
    fn watermark_produces_partial_reports() {
        // A general loop (internal conditional) logging one MTB entry
        // per iteration, with a tiny watermark.
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 20);
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.cmpi(Reg::R1, 100);
        a.beq("skip"); // never taken, but makes the loop general
        a.addi(Reg::R1, Reg::R1, 1);
        a.label("skip");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");

        let engine = CfaEngine::new(device_key("t"));
        let mut machine = Machine::with_mtb(
            linked.image.clone(),
            MtbConfig {
                capacity: 8,
                activation_delay: 1,
            },
        );
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(3),
                EngineConfig {
                    watermark: Some(4),
                    max_instrs: 100_000,
                },
            )
            .expect("attests");
        // 19 latch-taken entries / 4 per partial → 4 partials + final.
        assert!(att.reports.len() >= 5, "got {}", att.reports.len());
        assert!(att.reports.last().unwrap().is_final);
        assert!(att.reports.iter().rev().skip(1).all(|r| !r.is_final));
        // Sequence numbers are contiguous.
        for (i, r) in att.reports.iter().enumerate() {
            assert_eq!(r.seq, i as u32);
            assert!(r.authenticate(&device_key("t")));
        }
        // Nothing was lost to wrap-around.
        assert_eq!(att.combined_log().mtb.len(), 19);
    }

    #[test]
    fn partial_reports_prevent_overflow_loss() {
        // Same workload but without a watermark and a tiny buffer:
        // the MTB wraps and data is lost.
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 20);
        a.movi(Reg::R1, 0);
        a.label("loop");
        a.cmpi(Reg::R1, 100);
        a.beq("skip");
        a.addi(Reg::R1, Reg::R1, 1);
        a.label("skip");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");
        let engine = CfaEngine::new(device_key("t"));
        let mut machine = Machine::with_mtb(
            linked.image.clone(),
            MtbConfig {
                capacity: 8,
                activation_delay: 1,
            },
        );
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(4),
                EngineConfig::default(),
            )
            .expect("attests");
        assert_eq!(att.reports.len(), 1);
        // Only the 8 most recent of the 19 packets survived — and the
        // report says so.
        assert_eq!(att.combined_log().mtb.len(), 8);
        assert!(att.reports[0].overflow);
    }

    #[test]
    fn h_mem_matches_binary_hash() {
        let linked = linked_countdown(2);
        let engine = CfaEngine::new(device_key("t"));
        let mut machine = Machine::new(linked.image.clone());
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                Challenge::from_seed(5),
                EngineConfig::default(),
            )
            .expect("attests");
        assert_eq!(att.reports[0].h_mem, sha256(linked.image.bytes()));
    }
}
