//! The Verifier: report authentication and lossless control-flow path
//! reconstruction.
//!
//! Given the deployed binary, the [`LinkMap`] from the offline phase and
//! an authenticated report stream, the Verifier *replays* the binary: it
//! walks instructions from the entry point, consuming one `CF_Log`
//! element at every non-deterministic decision. A benign execution
//! consumes the whole log exactly; any deviation — a corrupted return
//! address, a hijacked indirect call, a forged or truncated log —
//! surfaces as a typed [`Violation`].

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use rap_obs::CachePadded;

use armv8m_isa::{service, BranchKind, Image, Instr, Reg, Target};
use rap_crypto::{sha256, Digest};
use rap_link::{LinkMap, LoopPlanKind, SiteKind};

use crate::dict::SubPathDict;
use crate::policy::{PathPolicy, PolicyFinding};
use crate::report::{Challenge, Key, Report};

/// Iteration cap for replayed simple loops (anti-DoS bound on forged
/// loop-condition records).
const LOOP_CAP: u32 = 1 << 22;

/// A reconstructed control-flow event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEvent {
    /// Replay started at this address.
    Enter(u32),
    /// A direct call.
    Call {
        /// Address of the `BL`.
        site: u32,
        /// Callee entry.
        dest: u32,
    },
    /// An indirect call, recovered from the log.
    IndirectCall {
        /// Address of the rewritten call site.
        site: u32,
        /// Callee entry from the MTB packet.
        dest: u32,
    },
    /// A function return.
    Return {
        /// Address of the returning site (rewritten `POP`/`BX LR`).
        site: u32,
        /// Return target.
        dest: u32,
    },
    /// A tracked conditional took its branch.
    CondTaken {
        /// Address of the conditional.
        site: u32,
        /// Taken target.
        dest: u32,
    },
    /// A tracked conditional fell through.
    CondNotTaken {
        /// Address of the conditional.
        site: u32,
    },
    /// One iteration of a forward-exit loop (Fig. 7 continue packet).
    LoopContinue {
        /// Address of the inserted continue branch.
        site: u32,
    },
    /// An optimized loop ran to completion (§IV-D replay).
    LoopIterations {
        /// Loop header address.
        header: u32,
        /// Reconstructed iteration count.
        count: u32,
    },
    /// An indirect jump (switch dispatch).
    IndirectJump {
        /// Address of the rewritten jump site.
        site: u32,
        /// Jump target from the MTB packet.
        dest: u32,
    },
    /// Replay reached `HALT`.
    Halt(u32),
}

/// Why verification failed.
///
/// Non-exhaustive: future verifier layers may add violation kinds, so
/// downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A report failed MAC authentication.
    BadTag {
        /// Sequence number of the offending report.
        seq: u32,
    },
    /// Reports out of order, missing, or final-flag misplaced.
    BadReportStream(String),
    /// The reported `H_MEM` does not match the known-good binary.
    HMemMismatch,
    /// The reported challenge does not match the issued one.
    ChallengeMismatch,
    /// Replay reached a non-executable address.
    InvalidPc {
        /// The bad address.
        pc: u32,
    },
    /// The log ended although replay still required an element.
    LogExhausted {
        /// Replay position when the log ran dry.
        pc: u32,
    },
    /// Log elements remained after the program halted.
    TrailingLog {
        /// Unconsumed MTB packets.
        mtb_left: usize,
        /// Unconsumed loop records.
        loops_left: usize,
    },
    /// An MTB packet's source does not match the expected stub.
    UnexpectedSource {
        /// Replay position.
        pc: u32,
        /// Source carried by the packet.
        got: u32,
        /// Source replay expected.
        expected: u32,
    },
    /// An MTB packet's destination is inconsistent with the stub kind.
    UnexpectedDest {
        /// Replay position.
        pc: u32,
        /// Destination carried by the packet.
        got: u32,
        /// Destination replay expected.
        expected: u32,
    },
    /// A return target disagrees with the shadow call stack — the
    /// signature of ROP.
    ReturnMismatch {
        /// Site address.
        site: u32,
        /// Expected return target (shadow stack).
        expected: u32,
        /// Logged return target.
        got: u32,
    },
    /// A return occurred with an empty shadow stack.
    ShadowStackUnderflow {
        /// Site address.
        site: u32,
    },
    /// An indirect call targeted something that is not a function
    /// entry — the signature of JOP/call hijacking.
    InvalidCallTarget {
        /// Site address.
        site: u32,
        /// The illegal destination.
        dest: u32,
    },
    /// A conditional branch that should have been rewritten was not —
    /// the binary and the map disagree.
    UntrackedConditional {
        /// The conditional's address.
        addr: u32,
    },
    /// An untracked indirect transfer in MTBDR — map/binary mismatch.
    UntrackedIndirect {
        /// The instruction's address.
        addr: u32,
    },
    /// A replayed loop failed to terminate within the cap.
    LoopDiverged {
        /// The latch address.
        latch: u32,
    },
    /// Replay exceeded its step budget.
    BudgetExceeded,
    /// A report carries the MTB overflow flag: packets were overwritten
    /// before they could be drained, so the path cannot be losslessly
    /// reconstructed. Configure a watermark (§IV-E).
    EvidenceLost {
        /// Sequence number of the overflowed report.
        seq: u32,
    },
    /// A report carries a dictionary-hit record whose id is not in the
    /// loaded dictionary — a forged or stale id.
    UnknownDictId {
        /// The offending entry id.
        id: u32,
    },
    /// The loaded dictionary was mined for a different binary than the
    /// one this verifier replays; its ids cannot be trusted here.
    DictImageMismatch,
    /// A report carries dictionary-hit records but no dictionary is
    /// loaded, so the compressed sub-paths cannot be expanded.
    DictUnavailable,
}

impl Violation {
    /// A stable, static name for the violation kind — the label used by
    /// the per-violation-kind observability counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::BadTag { .. } => "BadTag",
            Violation::BadReportStream(_) => "BadReportStream",
            Violation::HMemMismatch => "HMemMismatch",
            Violation::ChallengeMismatch => "ChallengeMismatch",
            Violation::InvalidPc { .. } => "InvalidPc",
            Violation::LogExhausted { .. } => "LogExhausted",
            Violation::TrailingLog { .. } => "TrailingLog",
            Violation::UnexpectedSource { .. } => "UnexpectedSource",
            Violation::UnexpectedDest { .. } => "UnexpectedDest",
            Violation::ReturnMismatch { .. } => "ReturnMismatch",
            Violation::ShadowStackUnderflow { .. } => "ShadowStackUnderflow",
            Violation::InvalidCallTarget { .. } => "InvalidCallTarget",
            Violation::UntrackedConditional { .. } => "UntrackedConditional",
            Violation::UntrackedIndirect { .. } => "UntrackedIndirect",
            Violation::LoopDiverged { .. } => "LoopDiverged",
            Violation::BudgetExceeded => "BudgetExceeded",
            Violation::EvidenceLost { .. } => "EvidenceLost",
            Violation::UnknownDictId { .. } => "UnknownDictId",
            Violation::DictImageMismatch => "DictImageMismatch",
            Violation::DictUnavailable => "DictUnavailable",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BadTag { seq } => write!(f, "report {seq} failed authentication"),
            Violation::BadReportStream(msg) => write!(f, "malformed report stream: {msg}"),
            Violation::HMemMismatch => write!(f, "H_MEM does not match the expected binary"),
            Violation::ChallengeMismatch => write!(f, "challenge mismatch"),
            Violation::InvalidPc { pc } => write!(f, "replay reached invalid pc {pc:#010x}"),
            Violation::LogExhausted { pc } => {
                write!(f, "cf_log exhausted while replaying at {pc:#010x}")
            }
            Violation::TrailingLog {
                mtb_left,
                loops_left,
            } => write!(
                f,
                "{mtb_left} mtb packets and {loops_left} loop records left after halt"
            ),
            Violation::UnexpectedSource { pc, got, expected } => write!(
                f,
                "packet source {got:#010x} != expected {expected:#010x} at {pc:#010x}"
            ),
            Violation::UnexpectedDest { pc, got, expected } => write!(
                f,
                "packet dest {got:#010x} != expected {expected:#010x} at {pc:#010x}"
            ),
            Violation::ReturnMismatch {
                site,
                expected,
                got,
            } => write!(
                f,
                "return at {site:#010x} went to {got:#010x}, expected {expected:#010x} (ROP)"
            ),
            Violation::ShadowStackUnderflow { site } => {
                write!(f, "return at {site:#010x} with empty shadow stack")
            }
            Violation::InvalidCallTarget { site, dest } => write!(
                f,
                "indirect call at {site:#010x} targeted non-function {dest:#010x}"
            ),
            Violation::UntrackedConditional { addr } => {
                write!(f, "untracked conditional at {addr:#010x}")
            }
            Violation::UntrackedIndirect { addr } => {
                write!(f, "untracked indirect transfer at {addr:#010x}")
            }
            Violation::LoopDiverged { latch } => {
                write!(f, "loop at latch {latch:#010x} did not terminate")
            }
            Violation::BudgetExceeded => write!(f, "replay step budget exceeded"),
            Violation::EvidenceLost { seq } => {
                write!(f, "report {seq} flags an MTB overflow: evidence lost")
            }
            Violation::UnknownDictId { id } => {
                write!(f, "report references unknown dictionary entry {id}")
            }
            Violation::DictImageMismatch => {
                write!(f, "loaded dictionary was mined for a different binary")
            }
            Violation::DictUnavailable => {
                write!(
                    f,
                    "report carries dictionary hits but no dictionary is loaded"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// A successfully reconstructed execution path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedPath {
    /// Control-flow events in execution order.
    pub events: Vec<PathEvent>,
    /// Instructions walked during replay (≈ attested instructions).
    pub steps: u64,
}

impl VerifiedPath {
    /// Convenience: the addresses of all indirect-call targets, in
    /// order (useful for audit tooling).
    pub fn indirect_call_targets(&self) -> Vec<u32> {
        self.events
            .iter()
            .filter_map(|e| match e {
                PathEvent::IndirectCall { dest, .. } => Some(*dest),
                _ => None,
            })
            .collect()
    }

    /// Renders the path as a human-readable listing, resolving
    /// addresses to symbols via the deployed image where possible.
    pub fn render(&self, image: &Image) -> String {
        use std::fmt::Write as _;
        let sym = |addr: u32| -> String {
            for (name, a) in image.symbols() {
                if *a == addr && !name.starts_with("__rap_") {
                    return format!("{name} ({addr:#x})");
                }
            }
            format!("{addr:#x}")
        };
        let mut out = String::new();
        let mut depth = 0usize;
        for event in &self.events {
            let indent = "  ".repeat(depth.min(12));
            match event {
                PathEvent::Enter(a) => {
                    let _ = writeln!(out, "enter {}", sym(*a));
                }
                PathEvent::Call { dest, .. } => {
                    let _ = writeln!(out, "{indent}call {}", sym(*dest));
                    depth += 1;
                }
                PathEvent::IndirectCall { dest, .. } => {
                    let _ = writeln!(out, "{indent}call* {}", sym(*dest));
                    depth += 1;
                }
                PathEvent::Return { .. } => {
                    depth = depth.saturating_sub(1);
                }
                PathEvent::CondTaken { site, dest } => {
                    let _ = writeln!(out, "{indent}if@{site:#x} -> {}", sym(*dest));
                }
                PathEvent::CondNotTaken { site } => {
                    let _ = writeln!(out, "{indent}if@{site:#x} fell through");
                }
                PathEvent::LoopContinue { site } => {
                    let _ = writeln!(out, "{indent}loop-continue@{site:#x}");
                }
                PathEvent::LoopIterations { header, count } => {
                    let _ = writeln!(out, "{indent}loop {} x{count}", sym(*header));
                }
                PathEvent::IndirectJump { dest, .. } => {
                    let _ = writeln!(out, "{indent}switch -> {}", sym(*dest));
                }
                PathEvent::Halt(a) => {
                    let _ = writeln!(out, "halt at {}", sym(*a));
                }
            }
        }
        out
    }
}

/// The Verifier for one deployed application.
///
/// Cloning is cheap where it matters: clones share the straight-line
/// [replay cache](Verifier::stats) and its counters, so a fleet of
/// worker threads (or repeated sessions for many devices running the
/// same binary) all benefit from stretches decoded once.
#[derive(Debug, Clone)]
pub struct Verifier {
    key: Key,
    image: Image,
    map: LinkMap,
    h_mem: Digest,
    entry: u32,
    /// Replay step budget.
    pub max_steps: u64,
    policy: Option<Arc<PathPolicy>>,
    dict: Option<Arc<SubPathDict>>,
    shared: Arc<Shared>,
}

/// Default number of L2 replay-cache shards (overridable through
/// [`VerifierBuilder::cache_shards`]). 16 shards keep the worst-case
/// miss contention per shard at 1/16th of a global lock while staying
/// small enough that a snapshot walk is trivial.
const DEFAULT_SHARD_COUNT: usize = 16;

/// Upper bound on configurable shard counts — beyond this the per-shard
/// fixed cost dwarfs any contention win.
const MAX_SHARD_COUNT: usize = 1024;

/// Cache + counters shared by all clones of one [`Verifier`].
///
/// Layout is driven by the fleet worker pool: the shards and every
/// counter are cache-line padded so a worker updating one never
/// invalidates its neighbours' lines, and the counters are only touched
/// by [`Verifier::commit_tally`] — once per job (or once per worker in
/// the batch layer), never from inside the replay loop.
/// One L2 lock stripe, padded so adjacent shards' lock words never
/// share a cache line.
type Shard = CachePadded<RwLock<HashMap<u32, Arc<Segment>>>>;

/// Macro-cache map: `(entry id, span entry PC)` → recorded variants.
type MacroMap = RwLock<HashMap<(u32, u32), Vec<Arc<DictMacro>>>>;

#[derive(Debug)]
struct Shared {
    /// Identity of this cache, used as the ownership key for the
    /// thread-local L1 (see [`L1_SEGMENTS`]). Unique per `Shared`.
    id: u64,
    /// Straight-line replay cache (L2): entry PC → memoized
    /// deterministic stretch, lock-striped by [`Shared::shard_for`].
    /// Contents
    /// depend only on the image and map, never on a particular log, so
    /// the cache is safely shared across sessions, threads and devices.
    shards: Vec<Shard>,
    /// Dictionary macro cache: `(entry id, span entry PC)` → replay
    /// deltas recorded the first time that sub-path was replayed live
    /// from that PC. Shared across sessions/threads like the segment
    /// cache; touched at most once per dictionary hit, so a single lock
    /// (not a stripe) is plenty.
    dict_macros: MacroMap,
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
    cached_steps: CachePadded<AtomicU64>,
    live_steps: CachePadded<AtomicU64>,
    jobs: CachePadded<AtomicU64>,
    wall_ns: CachePadded<AtomicU64>,
}

impl Shared {
    fn new(shard_count: usize) -> Shared {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Shared {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shards: (0..shard_count.clamp(1, MAX_SHARD_COUNT))
                .map(|_| CachePadded::new(RwLock::new(HashMap::new())))
                .collect(),
            dict_macros: RwLock::new(HashMap::new()),
            hits: CachePadded::default(),
            misses: CachePadded::default(),
            cached_steps: CachePadded::default(),
            live_steps: CachePadded::default(),
            jobs: CachePadded::default(),
            wall_ns: CachePadded::default(),
        }
    }

    /// Shard index for an entry PC: Fibonacci hashing followed by a
    /// multiply-shift range reduction spreads the (4-byte aligned,
    /// clustered) instruction addresses across any shard count.
    fn shard_for(&self, pc: u32) -> &Shard {
        let n = self.shards.len() as u64;
        let index = (u64::from(pc.wrapping_mul(0x9E37_79B9)) * n) >> 32;
        &self.shards[index as usize]
    }
}

impl Default for Shared {
    fn default() -> Shared {
        Shared::new(DEFAULT_SHARD_COUNT)
    }
}

thread_local! {
    /// Replay-cache L1: this thread's private view of one verifier's
    /// segment cache. A steady-state cache hit in the replay loop is a
    /// plain `HashMap` probe — no lock, no atomic, no shared line. The
    /// map belongs to the [`Shared`] whose `id` it records and is
    /// cleared when the thread switches to a different verifier (the
    /// common shapes — a worker pool over one verifier, or sequential
    /// tests each with their own — never thrash).
    static L1_SEGMENTS: RefCell<L1Cache> = RefCell::new(L1Cache {
        owner: 0,
        segments: HashMap::new(),
    });
}

struct L1Cache {
    owner: u64,
    segments: HashMap<u32, Arc<Segment>>,
}

/// Plain-integer verification tallies, accumulated lock-free on the
/// stack of whoever drives the replay and published to the shared
/// [`VerifierStats`](crate::VerifierStats) atomics and the `rap-obs`
/// registry in one [`Verifier::commit_tally`] call. `verify` commits
/// per job; the batch worker pool accumulates one tally per *worker*
/// and commits at join, so the replay hot loop touches no shared
/// cache line at all.
#[derive(Debug, Default)]
pub(crate) struct StatsTally {
    cache_hits: u64,
    cache_misses: u64,
    segment_builds: u64,
    cached_steps: u64,
    live_steps: u64,
    rewinds: u64,
    checkpoints: u64,
    /// Dictionary spans satisfied from the macro cache (bulk-applied
    /// without re-replaying the sub-path).
    dict_bulk_applies: u64,
    jobs: u64,
    wall_ns: u64,
    accepted: u64,
    rejected: u64,
    /// Violation counts by kind; at most a handful of kinds per tally,
    /// so a linear-scan vec beats a map.
    violations: Vec<(&'static str, u64)>,
}

impl StatsTally {
    fn note_violation(&mut self, kind: &'static str) {
        match self.violations.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.violations.push((kind, 1)),
        }
    }

    fn merge(&mut self, other: StatsTally) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.segment_builds += other.segment_builds;
        self.cached_steps += other.cached_steps;
        self.live_steps += other.live_steps;
        self.rewinds += other.rewinds;
        self.checkpoints += other.checkpoints;
        self.dict_bulk_applies += other.dict_bulk_applies;
        self.jobs += other.jobs;
        self.wall_ns += other.wall_ns;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        for (kind, n) in other.violations {
            match self.violations.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, have)) => *have += n,
                None => self.violations.push((kind, n)),
            }
        }
    }
}

/// A memoized deterministic stretch of replay: the instruction walk
/// from one entry PC up to (excluding) the next instruction whose
/// outcome depends on the `CF_Log`, the shadow stack or termination.
/// Replaying it is a bulk append instead of an instruction-by-
/// instruction decode.
#[derive(Debug)]
struct Segment {
    /// Instructions covered.
    steps: u64,
    /// Path events produced along the stretch (direct calls, statically
    /// elided loops).
    events: Vec<PathEvent>,
    /// Return addresses pushed by direct calls, in push order.
    shadow_pushes: Vec<u32>,
    /// PC of the first non-deterministic (or terminal) instruction.
    end_pc: u32,
}

/// Bound on the instructions a single cached segment may cover. Keeps
/// segment construction O(1)-ish and preserves the step-budget verdict
/// on images containing deterministic infinite loops (`b .`).
const SEGMENT_CAP: u64 = 4096;

/// Staged construction of a [`Verifier`] — the one entry point every
/// consumer (CLI, `rap-serve`, examples, tests) goes through.
///
/// `key`, `image` and `map` are required; everything else has the
/// defaults [`Verifier::new`] always used:
///
/// ```no_run
/// # use rap_track::Verifier;
/// # let (key, image, map): (rap_track::Key, armv8m_isa::Image, rap_link::LinkMap) = todo!();
/// let verifier = Verifier::builder()
///     .key(key)
///     .image(image)
///     .map(map)
///     .cache_shards(32)
///     .max_steps(10_000_000)
///     .build()?;
/// # Ok::<(), rap_track::BuildError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct VerifierBuilder {
    key: Option<Key>,
    image: Option<Image>,
    map: Option<LinkMap>,
    policy: Option<PathPolicy>,
    dict: Option<SubPathDict>,
    cache_shards: usize,
    max_steps: u64,
}

/// A [`VerifierBuilder::build`] call was missing a required component.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct BuildError {
    /// The missing builder field (`"key"`, `"image"` or `"map"`).
    pub missing: &'static str,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verifier builder is missing `{}`", self.missing)
    }
}

impl std::error::Error for BuildError {}

impl VerifierBuilder {
    /// The device MAC key (required).
    #[must_use]
    pub fn key(mut self, key: Key) -> Self {
        self.key = Some(key);
        self
    }

    /// The deployed binary image (required).
    #[must_use]
    pub fn image(mut self, image: Image) -> Self {
        self.image = Some(image);
        self
    }

    /// The offline-phase link map (required).
    #[must_use]
    pub fn map(mut self, map: LinkMap) -> Self {
        self.map = Some(map);
        self
    }

    /// A declarative [`PathPolicy`] evaluated over accepted paths via
    /// [`Verifier::check_policy`]. No policy (the default) means
    /// allow-everything.
    #[must_use]
    pub fn policy(mut self, policy: PathPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// A [`SubPathDict`] for expanding dictionary-compressed report
    /// streams. Without one, any report carrying dictionary hits is
    /// rejected with [`Violation::DictUnavailable`]; with one mined for
    /// a different binary, with [`Violation::DictImageMismatch`].
    #[must_use]
    pub fn dict(mut self, dict: SubPathDict) -> Self {
        self.dict = Some(dict);
        self
    }

    /// L2 replay-cache shard count (clamped to `1..=1024`; default 16).
    /// More shards trade memory for lower miss-path lock contention.
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Replay step budget (default 100 million) — the anti-DoS bound on
    /// forged logs driving replay forever.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when `key`, `image` or `map` was never supplied.
    pub fn build(self) -> Result<Verifier, BuildError> {
        let key = self.key.ok_or(BuildError { missing: "key" })?;
        let image = self.image.ok_or(BuildError { missing: "image" })?;
        let map = self.map.ok_or(BuildError { missing: "map" })?;
        let h_mem = sha256(image.bytes());
        let entry = image.base();
        let shard_count = if self.cache_shards == 0 {
            DEFAULT_SHARD_COUNT
        } else {
            self.cache_shards
        };
        Ok(Verifier {
            key,
            image,
            map,
            h_mem,
            entry,
            max_steps: if self.max_steps == 0 {
                100_000_000
            } else {
                self.max_steps
            },
            policy: self.policy.map(Arc::new),
            dict: self.dict.map(Arc::new),
            shared: Arc::new(Shared::new(shard_count)),
        })
    }
}

impl Verifier {
    /// Starts building a Verifier; see [`VerifierBuilder`].
    pub fn builder() -> VerifierBuilder {
        VerifierBuilder::default()
    }

    /// Creates a Verifier for the given deployed binary and link map
    /// with default policy, cache and budget settings — a thin wrapper
    /// over [`Verifier::builder`]. Replay starts at the image base.
    pub fn new(key: Key, image: Image, map: LinkMap) -> Verifier {
        Verifier::builder()
            .key(key)
            .image(image)
            .map(map)
            .build()
            .expect("all required builder fields supplied")
    }

    /// The expected `H_MEM` of the deployed binary.
    pub fn expected_h_mem(&self) -> Digest {
        self.h_mem
    }

    /// The [`PathPolicy`] configured at build time, if any.
    pub fn policy(&self) -> Option<&PathPolicy> {
        self.policy.as_deref()
    }

    /// The [`SubPathDict`] configured at build time, if any.
    pub fn dict(&self) -> Option<&SubPathDict> {
        self.dict.as_deref()
    }

    /// Evaluates the configured policy over an accepted path; an empty
    /// result means compliance (and is always returned when no policy
    /// was configured).
    pub fn check_policy(&self, path: &VerifiedPath) -> Vec<PolicyFinding> {
        self.policy
            .as_deref()
            .map(|p| p.check(path))
            .unwrap_or_default()
    }

    /// A snapshot of the verifier-side counters: replay-cache
    /// effectiveness and verification work done so far (across all
    /// clones sharing this verifier's cache).
    pub fn stats(&self) -> crate::VerifierStats {
        crate::VerifierStats {
            cache_hits: self.shared.hits.load(Ordering::Relaxed),
            cache_misses: self.shared.misses.load(Ordering::Relaxed),
            cached_steps: self.shared.cached_steps.load(Ordering::Relaxed),
            live_steps: self.shared.live_steps.load(Ordering::Relaxed),
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            wall_ns: self.shared.wall_ns.load(Ordering::Relaxed),
        }
    }

    /// The domain-separated key this verifier seals
    /// [`VerdictRecord`](crate::VerdictRecord)s with — hand it to an
    /// offline audit-chain verifier to re-check record provenance.
    pub fn verdict_seal_key(&self) -> Key {
        crate::verdict::verdict_seal_key(&self.key)
    }

    /// Seals an arbitrary [`VerdictDraft`](crate::VerdictDraft) under
    /// this verifier's sealing key — the escape hatch for producers
    /// that judge evidence before replay can run (wire decode
    /// failures, session-protocol violations).
    pub fn seal_verdict(&self, draft: crate::VerdictDraft) -> crate::VerdictRecord {
        crate::VerdictRecord::seal(&self.verdict_seal_key(), draft)
    }

    /// [`verify`](Verifier::verify), wrapped in a sealed
    /// proof-carrying [`VerdictRecord`](crate::VerdictRecord).
    ///
    /// `device` and `seq` (a producer-local logical timestamp) are
    /// bound into the record together with the challenge nonce, a hash
    /// of the judged report stream, the outcome and a snapshot of the
    /// replay counters. The plain result is returned alongside so
    /// callers keep the old enum as a view of the record.
    pub fn verify_record(
        &self,
        device: &str,
        seq: u64,
        chal: Challenge,
        reports: &[Report],
    ) -> (crate::VerdictRecord, Result<VerifiedPath, Violation>) {
        let result = self.verify(chal, reports);
        let stats = self.stats();
        let mut draft = crate::VerdictDraft {
            device: device.to_string(),
            chal,
            report_hash: rap_crypto::sha256(&crate::wire::encode_stream(reports)),
            stats_digest: crate::verdict::stats_digest(&stats),
            dict_hits: reports
                .iter()
                .map(|r| r.log.dict_hits.len() as u32)
                .fold(0u32, u32::saturating_add),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            seq,
            ..crate::VerdictDraft::default()
        };
        match &result {
            Ok(path) => {
                draft.accepted = true;
                draft.events = path.events.len() as u32;
                draft.steps = path.steps;
            }
            Err(v) => {
                draft.kind = v.kind().to_string();
                draft.detail = v.to_string();
            }
        }
        (self.seal_verdict(draft), result)
    }

    /// Authenticates a report stream and reconstructs the execution
    /// path it attests.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] encountered — authentication
    /// failures first, then replay divergences.
    pub fn verify(&self, chal: Challenge, reports: &[Report]) -> Result<VerifiedPath, Violation> {
        let mut tally = StatsTally::default();
        let result = self.verify_tallied(chal, reports, &mut tally);
        self.commit_tally(&tally);
        result
    }

    /// [`verify`](Verifier::verify) with deferred accounting: every
    /// counter the job would have bumped lands in `tally` instead of
    /// the shared atomics / the global registry. The caller owns the
    /// publication schedule — the batch worker pool passes one tally
    /// through all of a worker's jobs and commits once at join, so
    /// workers never write a shared cache line while jobs are live.
    pub(crate) fn verify_tallied(
        &self,
        chal: Challenge,
        reports: &[Report],
        tally: &mut StatsTally,
    ) -> Result<VerifiedPath, Violation> {
        let start = Instant::now();
        let _job_span = rap_obs::span("verify_job");
        let result = match self.begin(chal, reports) {
            Ok(session) => session.run_into(tally),
            Err(v) => Err(v),
        };
        tally.jobs += 1;
        tally.wall_ns += start.elapsed().as_nanos() as u64;
        match &result {
            Ok(_) => tally.accepted += 1,
            Err(v) => {
                tally.rejected += 1;
                tally.note_violation(v.kind());
            }
        }
        result
    }

    /// Publishes an accumulated [`StatsTally`]: one relaxed add per
    /// shared counter and per registry metric, regardless of how many
    /// jobs or replay steps the tally covers.
    pub(crate) fn commit_tally(&self, tally: &StatsTally) {
        let shared = &self.shared;
        shared.hits.fetch_add(tally.cache_hits, Ordering::Relaxed);
        shared
            .misses
            .fetch_add(tally.cache_misses, Ordering::Relaxed);
        shared
            .cached_steps
            .fetch_add(tally.cached_steps, Ordering::Relaxed);
        shared
            .live_steps
            .fetch_add(tally.live_steps, Ordering::Relaxed);
        shared.jobs.fetch_add(tally.jobs, Ordering::Relaxed);
        shared.wall_ns.fetch_add(tally.wall_ns, Ordering::Relaxed);

        rap_obs::counter!("verifier_jobs_total").add(tally.jobs);
        rap_obs::counter!("verifier_jobs_accepted_total").add(tally.accepted);
        rap_obs::counter!("verifier_jobs_rejected_total").add(tally.rejected);
        rap_obs::counter!("verifier_cache_hits_total").add(tally.cache_hits);
        rap_obs::counter!("verifier_cache_misses_total").add(tally.cache_misses);
        rap_obs::counter!("verifier_segment_builds_total").add(tally.segment_builds);
        rap_obs::counter!("verifier_replay_live_steps_total").add(tally.live_steps);
        rap_obs::counter!("verifier_replay_cached_steps_total").add(tally.cached_steps);
        rap_obs::counter!("verifier_rewinds_total").add(tally.rewinds);
        rap_obs::counter!("verifier_checkpoints_total").add(tally.checkpoints);
        rap_obs::counter!("verifier_dict_bulk_applies_total").add(tally.dict_bulk_applies);
        // Dynamic (labelled) names: resolved through the registry
        // directly, not the caching macro — rejection is rare.
        for (kind, n) in &tally.violations {
            rap_obs::global()
                .counter(&format!("verifier_violations_total{{kind=\"{kind}\"}}"))
                .add(*n);
        }
    }

    /// Authenticates a report stream and returns a resumable
    /// [`ReplaySession`] positioned at the entry point. [`verify`]
    /// (which drives the session to completion) is the common path;
    /// `begin` lets a scheduler interleave many sessions or bound the
    /// work done per scheduling quantum.
    ///
    /// [`verify`]: Verifier::verify
    ///
    /// # Errors
    ///
    /// Stream-level violations (authentication, sequencing, challenge,
    /// `H_MEM`, overflow) are rejected before a session is created.
    pub fn begin(
        &self,
        chal: Challenge,
        reports: &[Report],
    ) -> Result<ReplaySession<'_>, Violation> {
        // --- Stream validation -----------------------------------------
        if reports.is_empty() {
            return Err(Violation::BadReportStream("no reports".into()));
        }
        for (i, r) in reports.iter().enumerate() {
            if !r.authenticate(&self.key) {
                return Err(Violation::BadTag { seq: r.seq });
            }
            if r.seq != i as u32 {
                return Err(Violation::BadReportStream(format!(
                    "expected seq {i}, got {}",
                    r.seq
                )));
            }
            if r.chal != chal {
                return Err(Violation::ChallengeMismatch);
            }
            if r.h_mem != self.h_mem {
                return Err(Violation::HMemMismatch);
            }
            if r.overflow {
                return Err(Violation::EvidenceLost { seq: r.seq });
            }
            let last = i + 1 == reports.len();
            if r.is_final != last {
                return Err(Violation::BadReportStream(
                    "final flag on wrong report".into(),
                ));
            }
        }

        // --- Splice the log streams -------------------------------------
        // Dictionary-hit records expand in place: the sub-path's
        // transfers are re-inserted before the residual transfer they
        // were matched at, so the spliced `mtb` is byte-for-byte what an
        // uncompressed device would have sent. Each expansion is also
        // remembered as a [`HitSpan`] so replay can bulk-apply a cached
        // macro instead of re-walking the span live.
        let mut mtb: Vec<trace_units::TraceEntry> = Vec::new();
        let mut loops: Vec<u32> = Vec::new();
        let mut spans: Vec<HitSpan> = Vec::new();
        for r in reports {
            loops.extend(r.log.loop_records.iter().copied());
            if r.log.dict_hits.is_empty() {
                mtb.extend(r.log.mtb.iter().copied());
                continue;
            }
            let dict = self.dict.as_deref().ok_or(Violation::DictUnavailable)?;
            if dict.image_hash != self.h_mem {
                return Err(Violation::DictImageMismatch);
            }
            let mut next_hit = 0usize;
            for i in 0..=r.log.mtb.len() {
                while next_hit < r.log.dict_hits.len() && r.log.dict_hits[next_hit].at as usize == i
                {
                    let hit = r.log.dict_hits[next_hit];
                    let entry = dict
                        .entry(hit.id)
                        .ok_or(Violation::UnknownDictId { id: hit.id })?;
                    let start = mtb.len();
                    mtb.extend_from_slice(entry);
                    spans.push(HitSpan {
                        start,
                        end: mtb.len(),
                        id: hit.id,
                    });
                    next_hit += 1;
                }
                if let Some(&t) = r.log.mtb.get(i) {
                    mtb.push(t);
                }
            }
            // Any hit not consumed by the in-order walk points past the
            // residual transfers or runs backwards — a malformed record
            // the matcher can never emit.
            if next_hit != r.log.dict_hits.len() {
                return Err(Violation::BadReportStream(
                    "dictionary hit records out of order".into(),
                ));
            }
        }

        Ok(ReplaySession {
            verifier: self,
            mtb,
            loops,
            state: ReplayState::new(self.entry),
            checkpoints: Vec::new(),
            first_violation: None,
            global_steps: 0,
            spans,
            next_span: 0,
            recording: None,
            tally: Some(StatsTally::default()),
        })
    }

    /// Looks up (or builds and caches) the deterministic segment
    /// starting at `pc`.
    ///
    /// Lookup order is L1 (this thread's private map — no shared state
    /// touched) then the L2 shard for `pc` (a read lock contended only
    /// by lookups hashing to the same shard), and only a genuine miss
    /// builds the segment and takes the shard's write lock. The build
    /// happens *outside* the lock: two workers racing on the same cold
    /// PC may both build, and `or_insert` keeps the first — duplicate
    /// work on a cold cache beats serializing every miss. Exactly one
    /// of `cache_hits`/`cache_misses` is tallied per call, so lookup
    /// totals are deterministic regardless of thread count.
    fn segment_at(&self, pc: u32, tally: &mut StatsTally) -> Arc<Segment> {
        L1_SEGMENTS.with(|cell| {
            let mut l1 = cell.borrow_mut();
            if l1.owner != self.shared.id {
                l1.segments.clear();
                l1.owner = self.shared.id;
            }
            if let Some(seg) = l1.segments.get(&pc) {
                tally.cache_hits += 1;
                return Arc::clone(seg);
            }
            let shard = self.shared.shard_for(pc);
            if let Some(seg) = shard.read().expect("cache lock").get(&pc) {
                tally.cache_hits += 1;
                let seg = Arc::clone(seg);
                l1.segments.insert(pc, Arc::clone(&seg));
                return seg;
            }
            tally.cache_misses += 1;
            tally.segment_builds += 1;
            let built = Arc::new(self.build_segment(pc));
            rap_obs::event("segment_build", pc as u64, built.steps);
            let seg = Arc::clone(
                shard
                    .write()
                    .expect("cache lock")
                    .entry(pc)
                    .or_insert(built),
            );
            l1.segments.insert(pc, Arc::clone(&seg));
            seg
        })
    }

    /// Walks instructions from `pc` while their outcome is a pure
    /// function of the PC — no log element consumed, no shadow-stack
    /// pop, no termination — and records the walk as a [`Segment`].
    /// The instruction the walk stops at is replayed live.
    fn build_segment(&self, entry: u32) -> Segment {
        let mut pc = entry;
        let mut steps = 0u64;
        let mut events = Vec::new();
        let mut shadow_pushes = Vec::new();

        while steps < SEGMENT_CAP {
            let Some(instr) = self.image.instr_at(pc) else {
                break; // invalid PC: the live stepper reports it
            };
            let size = instr.size();
            match instr {
                Instr::Halt => break,
                Instr::SecureGateway { service: svc, .. } => {
                    if *svc == service::LOG_LOOP_COND {
                        break; // consumes a loop record
                    }
                    steps += 1;
                    pc += size;
                }
                Instr::B { target } => {
                    let Some(dest) = target.abs() else { break };
                    if self.map.site_at_entry(dest).is_some() {
                        break; // trampoline: consumes an MTB packet
                    }
                    steps += 1;
                    pc = dest;
                }
                Instr::BCond { target, .. } => {
                    let Some(dest) = target.abs() else { break };
                    if self.map.site_at_entry(dest).is_some() {
                        break; // tracked conditional
                    }
                    let Some(meta) = self.map.loops_by_latch.get(&pc) else {
                        break; // Fig. 7 forward-exit layout peeks at the log
                    };
                    let LoopPlanKind::Static { init } = meta.kind else {
                        break; // logged init: consumes a loop record
                    };
                    let Some(count) = meta.iterations(init, LOOP_CAP) else {
                        break; // diverging plan: the live stepper reports it
                    };
                    events.push(PathEvent::LoopIterations {
                        header: meta.header,
                        count,
                    });
                    steps += 1;
                    pc = meta.exit;
                }
                Instr::Bl { target } => {
                    let Some(dest) = target.abs() else { break };
                    if self.map.site_at_entry(dest).is_some() {
                        break; // rewritten indirect call
                    }
                    shadow_pushes.push(pc + size);
                    events.push(PathEvent::Call { site: pc, dest });
                    steps += 1;
                    pc = dest;
                }
                other => match other.branch_kind() {
                    BranchKind::None | BranchKind::Gateway => {
                        steps += 1;
                        pc += size;
                    }
                    // BX LR pops the shadow stack; anything else is an
                    // untracked indirect the live stepper must reject.
                    _ => break,
                },
            }
        }

        Segment {
            steps,
            events,
            shadow_pushes,
            end_pc: pc,
        }
    }

    /// Executes one replayed instruction. Returns `Ok(true)` on halt.
    fn step(
        &self,
        state: &mut ReplayState,
        mtb: &[trace_units::TraceEntry],
        loops: &[u32],
        checkpoints: &mut Vec<Checkpoint>,
    ) -> Result<bool, Violation> {
        let pc = state.pc;
        state.steps += 1;
        let instr = self.image.instr_at(pc).ok_or(Violation::InvalidPc { pc })?;
        let size = instr.size();

        match instr {
            Instr::Halt => {
                state.events.push(PathEvent::Halt(pc));
                return Ok(true);
            }
            Instr::SecureGateway { service: svc, .. } => {
                if *svc == service::LOG_LOOP_COND {
                    let v = loops
                        .get(state.loop_idx)
                        .copied()
                        .ok_or(Violation::LogExhausted { pc })?;
                    state.loop_idx += 1;
                    state.pending_inits.push_back(v);
                }
                state.pc = pc + size;
            }
            Instr::B { target } => {
                let dest = resolve(target);
                if let Some(site) = self.map.site_at_entry(dest) {
                    match site.kind {
                        SiteKind::LoopForward { cont } => {
                            let e = state.take_mtb(mtb, pc)?;
                            expect_src(pc, e.source, site.src)?;
                            expect_dest(pc, e.dest, cont)?;
                            state.events.push(PathEvent::LoopContinue { site: pc });
                            state.pc = cont;
                        }
                        SiteKind::CondFallthrough { cont } => {
                            let e = state.take_mtb(mtb, pc)?;
                            expect_src(pc, e.source, site.src)?;
                            expect_dest(pc, e.dest, cont)?;
                            state.events.push(PathEvent::CondNotTaken { site: pc });
                            state.pc = cont;
                        }
                        SiteKind::ReturnPop | SiteKind::ReturnBx => {
                            let e = state.take_mtb(mtb, pc)?;
                            expect_src(pc, e.source, site.src)?;
                            let expected = state
                                .shadow
                                .pop()
                                .ok_or(Violation::ShadowStackUnderflow { site: pc })?;
                            if e.dest != expected {
                                return Err(Violation::ReturnMismatch {
                                    site: pc,
                                    expected,
                                    got: e.dest,
                                });
                            }
                            state.events.push(PathEvent::Return {
                                site: pc,
                                dest: e.dest,
                            });
                            state.pc = e.dest;
                        }
                        SiteKind::LoadJump | SiteKind::IndirectJump => {
                            let e = state.take_mtb(mtb, pc)?;
                            expect_src(pc, e.source, site.src)?;
                            if self.map.in_mtbar(e.dest) {
                                return Err(Violation::InvalidPc { pc: e.dest });
                            }
                            state.events.push(PathEvent::IndirectJump {
                                site: pc,
                                dest: e.dest,
                            });
                            state.pc = e.dest;
                        }
                        SiteKind::IndirectCall | SiteKind::CondTaken { .. } => {
                            return Err(Violation::UntrackedIndirect { addr: pc });
                        }
                    }
                } else {
                    state.pc = dest;
                }
            }
            Instr::BCond { target, .. } => {
                let dest = resolve(target);
                if let Some(site) = self.map.site_at_entry(dest) {
                    let SiteKind::CondTaken { taken } = site.kind else {
                        return Err(Violation::UntrackedConditional { addr: pc });
                    };
                    let front_matches =
                        mtb.get(state.mtb_idx).is_some_and(|e| e.source == site.src);
                    // With CondBoth instrumentation the very next
                    // instruction is a fall-through-logging branch, and
                    // the decision is fully determined by the log.
                    let ft_site = self.image.instr_at(pc + size).and_then(|n| match n {
                        Instr::B { target } => self
                            .map
                            .site_at_entry(resolve(target))
                            .filter(|s| matches!(s.kind, SiteKind::CondFallthrough { .. })),
                        _ => None,
                    });
                    if let Some(ft) = ft_site {
                        let e = mtb
                            .get(state.mtb_idx)
                            .copied()
                            .ok_or(Violation::LogExhausted { pc })?;
                        if e.source == site.src {
                            state.mtb_idx += 1;
                            expect_dest(pc, e.dest, taken)?;
                            state.events.push(PathEvent::CondTaken {
                                site: pc,
                                dest: taken,
                            });
                            state.pc = taken;
                        } else if e.source == ft.src {
                            // Leave the packet for the logging branch.
                            state.events.push(PathEvent::CondNotTaken { site: pc });
                            state.pc = pc + size;
                        } else {
                            return Err(Violation::UnexpectedSource {
                                pc,
                                got: e.source,
                                expected: site.src,
                            });
                        }
                    } else if front_matches {
                        // Ambiguous: checkpoint the not-taken reading.
                        checkpoints.push(Checkpoint::new(
                            state,
                            pc + size,
                            PathEvent::CondNotTaken { site: pc },
                        ));

                        let e = state.take_mtb(mtb, pc)?;
                        expect_dest(pc, e.dest, taken)?;
                        state.events.push(PathEvent::CondTaken {
                            site: pc,
                            dest: taken,
                        });
                        state.pc = taken;
                    } else {
                        state.events.push(PathEvent::CondNotTaken { site: pc });
                        state.pc = pc + size;
                    }
                } else if let Some(meta) = self.map.loops_by_latch.get(&pc) {
                    // §IV-D replay: derive the iteration count.
                    let init = match meta.kind {
                        LoopPlanKind::Static { init } => init,
                        LoopPlanKind::Logged => state
                            .pending_inits
                            .pop_front()
                            .ok_or(Violation::LogExhausted { pc })?,
                    };
                    let count = meta
                        .iterations(init, LOOP_CAP)
                        .ok_or(Violation::LoopDiverged { latch: pc })?;
                    state.events.push(PathEvent::LoopIterations {
                        header: meta.header,
                        count,
                    });
                    state.pc = meta.exit;
                } else {
                    // Fig. 7 layout: the continue-logging branch
                    // immediately follows the untracked exit check.
                    let next_addr = pc + size;
                    let follows = self.image.instr_at(next_addr);
                    let forward_site = follows.and_then(|n| match n {
                        Instr::B { target } => self
                            .map
                            .site_at_entry(resolve(target))
                            .filter(|s| matches!(s.kind, SiteKind::LoopForward { .. })),
                        _ => None,
                    });
                    let Some(fsite) = forward_site else {
                        return Err(Violation::UntrackedConditional { addr: pc });
                    };
                    let continued = mtb
                        .get(state.mtb_idx)
                        .is_some_and(|e| e.source == fsite.src);
                    if continued {
                        // Ambiguous the same way: checkpoint "taken".
                        checkpoints.push(Checkpoint::new(
                            state,
                            dest,
                            PathEvent::CondTaken { site: pc, dest },
                        ));

                        state.events.push(PathEvent::CondNotTaken { site: pc });
                        state.pc = next_addr; // the B consumes the packet
                    } else {
                        state.events.push(PathEvent::CondTaken { site: pc, dest });
                        state.pc = dest;
                    }
                }
            }
            Instr::Bl { target } => {
                let dest = resolve(target);
                let ret = pc + size;
                if let Some(site) = self.map.site_at_entry(dest) {
                    if site.kind != SiteKind::IndirectCall {
                        return Err(Violation::UntrackedIndirect { addr: pc });
                    }
                    let e = state.take_mtb(mtb, pc)?;
                    expect_src(pc, e.source, site.src)?;
                    let is_entry =
                        self.image.is_func_entry(e.dest) || self.map.funcs.contains_key(&e.dest);
                    if !is_entry {
                        return Err(Violation::InvalidCallTarget {
                            site: pc,
                            dest: e.dest,
                        });
                    }
                    state.shadow.push(ret);
                    state.events.push(PathEvent::IndirectCall {
                        site: pc,
                        dest: e.dest,
                    });
                    state.pc = e.dest;
                } else {
                    state.shadow.push(ret);
                    state.events.push(PathEvent::Call { site: pc, dest });
                    state.pc = dest;
                }
            }
            Instr::Bx { rm } if *rm == Reg::Lr => {
                // Untracked leaf return: deterministic via the shadow
                // stack (§IV-C.2).
                let dest = state
                    .shadow
                    .pop()
                    .ok_or(Violation::ShadowStackUnderflow { site: pc })?;
                state.events.push(PathEvent::Return { site: pc, dest });
                state.pc = dest;
            }
            other => match other.branch_kind() {
                BranchKind::None | BranchKind::Gateway => state.pc = pc + size,
                // Any leftover indirect transfer in MTBDR means the
                // binary and the map disagree.
                _ => return Err(Violation::UntrackedIndirect { addr: pc }),
            },
        }
        Ok(false)
    }
}

/// A resumable replay in progress: the stream has been authenticated
/// and spliced, and the binary is being replayed against it one
/// scheduling quantum at a time.
///
/// Replay semantics — why this is a *backtracking* parse: taken-
/// conditional packets are ambiguous when the *next* logged event comes
/// from the same stub but a later dynamic instance of the site (e.g. a
/// recursive call whose inner conditional is taken while the outer one
/// falls through). At each ambiguous decision the session prefers the
/// "taken/continue" reading and records a checkpoint with the
/// alternative applied; any later violation rewinds to the most recent
/// checkpoint. A benign log always admits a consistent parse; an attack
/// log admits none and the *first* violation is reported.
///
/// Deterministic stretches between log-consuming sites are bulk-applied
/// from the verifier's shared replay cache, so repeated loop iterations
/// and repeated devices skip re-decoding identical straight-line code.
#[derive(Debug)]
pub struct ReplaySession<'v> {
    verifier: &'v Verifier,
    mtb: Vec<trace_units::TraceEntry>,
    loops: Vec<u32>,
    state: ReplayState,
    checkpoints: Vec<Checkpoint>,
    first_violation: Option<Violation>,
    global_steps: u64,
    /// Dictionary-hit spans in the spliced `mtb`, in index order
    /// (empty for uncompressed streams — the hot path stays zero-cost).
    spans: Vec<HitSpan>,
    /// First span not yet fully consumed by the current parse.
    next_span: usize,
    /// Live recording of the span currently being replayed, if any.
    recording: Option<Recording>,
    /// Plain-integer tallies for everything this session does (zero
    /// atomics in the replay loop). `Some` until drained: either
    /// [`run_into`](ReplaySession::run_into) hands it to the caller's
    /// accumulator, or `Drop` commits it — so a session driven
    /// externally via [`advance`](ReplaySession::advance) still lands
    /// in the verifier's stats when it goes out of scope.
    tally: Option<StatsTally>,
}

impl Drop for ReplaySession<'_> {
    fn drop(&mut self) {
        if let Some(tally) = self.tally.take() {
            self.verifier.commit_tally(&tally);
        }
    }
}

impl ReplaySession<'_> {
    /// The current replay position.
    pub fn pc(&self) -> u32 {
        self.state.pc
    }

    /// Instructions replayed so far on the current parse.
    pub fn steps(&self) -> u64 {
        self.state.steps
    }

    /// Advances replay by one quantum: one bulk-applied deterministic
    /// stretch (if cached or cacheable) plus one live instruction.
    /// Returns `None` while the session is still running, or the final
    /// verdict once replay terminates.
    pub fn advance(&mut self) -> Option<Result<VerifiedPath, Violation>> {
        // Dictionary fast path: settle any recording and bulk-apply
        // cached sub-path macros whose span starts at the current log
        // position. No-op (one branch) for uncompressed streams.
        if !self.spans.is_empty() {
            if let Some(verdict) = self.dict_prelude() {
                return Some(verdict);
            }
        }

        // Bulk-apply the deterministic stretch starting here. All
        // tallies are plain integers on the session — the replay loop
        // touches no shared cache line.
        let tally = self.tally.as_mut().expect("session tally present");
        let segment = self.verifier.segment_at(self.state.pc, tally);
        if segment.steps > 0 {
            self.state.apply(&segment);
            self.global_steps += segment.steps;
            tally.cached_steps += segment.steps;
            if self.global_steps > self.verifier.max_steps {
                return Some(Err(self
                    .first_violation
                    .take()
                    .unwrap_or(Violation::BudgetExceeded)));
            }
        }

        // Replay the non-deterministic (or terminal) head live.
        self.global_steps += 1;
        tally.live_steps += 1;
        if self.global_steps > self.verifier.max_steps {
            return Some(Err(self
                .first_violation
                .take()
                .unwrap_or(Violation::BudgetExceeded)));
        }
        let checkpoints_before = self.checkpoints.len();
        let outcome = self.verifier.step(
            &mut self.state,
            &self.mtb,
            &self.loops,
            &mut self.checkpoints,
        );
        let new_checkpoints = self.checkpoints.len().saturating_sub(checkpoints_before) as u64;
        if let Some(tally) = self.tally.as_mut() {
            tally.checkpoints += new_checkpoints;
        }
        if let Some(rec) = self.recording.as_mut() {
            // Track the deepest shadow truncation inside the span: the
            // macro's precondition pins exactly the frames a replay of
            // the span can observe, and nothing below them.
            rec.min_depth = rec.min_depth.min(self.state.shadow.len());
        }
        match outcome {
            Ok(true) => {
                // Halted: the whole log must be consumed.
                if self.state.mtb_idx == self.mtb.len()
                    && self.state.loop_idx == self.loops.len()
                    && self.state.pending_inits.is_empty()
                {
                    return Some(Ok(VerifiedPath {
                        events: std::mem::take(&mut self.state.events),
                        steps: self.state.steps,
                    }));
                }
                let v = Violation::TrailingLog {
                    mtb_left: self.mtb.len() - self.state.mtb_idx,
                    loops_left: self.loops.len() - self.state.loop_idx
                        + self.state.pending_inits.len(),
                };
                self.backtrack(v)
            }
            Ok(false) => None,
            Err(v) => self.backtrack(v),
        }
    }

    /// Rewinds to the most recent checkpoint, or finishes with the
    /// first violation when no alternative reading remains.
    fn backtrack(&mut self, v: Violation) -> Option<Result<VerifiedPath, Violation>> {
        self.first_violation.get_or_insert(v.clone());
        match self.checkpoints.pop() {
            Some(alt) => {
                if let Some(tally) = self.tally.as_mut() {
                    tally.rewinds += 1;
                }
                rap_obs::event("rewind", alt.alt_pc as u64, self.checkpoints.len() as u64);
                alt.restore(&mut self.state);
                // The rewind may land before (or inside) dictionary
                // spans: the in-flight recording's deltas are no longer
                // contiguous, and the span cursor must follow the log
                // position backwards.
                self.recording = None;
                self.next_span = self.spans.partition_point(|s| s.end <= self.state.mtb_idx);
                None
            }
            None => Some(Err(self.first_violation.take().unwrap_or(v))),
        }
    }

    /// Settles the dictionary machinery at the top of a quantum:
    /// finishes a completed recording, bulk-applies cached macros for
    /// spans starting exactly at the current log position, and
    /// otherwise arms a recording so the span's live replay is captured
    /// for next time. Returns a verdict only when a bulk application
    /// exhausts the step budget.
    fn dict_prelude(&mut self) -> Option<Result<VerifiedPath, Violation>> {
        // Follow the log position forward past fully-consumed spans.
        while self.next_span < self.spans.len()
            && self.spans[self.next_span].end <= self.state.mtb_idx
        {
            self.next_span += 1;
        }
        // A recording is complete once its span's last transfer has
        // been consumed on the current (never-rewound) parse.
        if let Some(rec) = &self.recording {
            if self.state.mtb_idx >= self.spans[rec.span].end {
                self.finish_recording();
            }
        }
        while self.recording.is_none() {
            let Some(&span) = self.spans.get(self.next_span) else {
                break;
            };
            if span.start != self.state.mtb_idx {
                break; // not there yet, or mid-span after a rewind
            }
            let (cached, room) = self.probe_macros(span.id);
            if let Some(m) = cached {
                self.apply_macro(&m, span);
                self.next_span += 1;
                if self.global_steps > self.verifier.max_steps {
                    return Some(Err(self
                        .first_violation
                        .take()
                        .unwrap_or(Violation::BudgetExceeded)));
                }
                continue;
            }
            if room && self.state.pending_inits.is_empty() {
                self.recording = Some(Recording {
                    span: self.next_span,
                    start_pc: self.state.pc,
                    start_events: self.state.events.len(),
                    start_steps: self.state.steps,
                    start_shadow: self.state.shadow.clone(),
                    min_depth: self.state.shadow.len(),
                    start_loop_idx: self.state.loop_idx,
                    start_checkpoints: self.checkpoints.len(),
                });
            }
            break;
        }
        None
    }

    /// Looks up a cached macro for `(id, current PC)` whose
    /// preconditions hold here, also reporting whether the variant slot
    /// still has room (so a futile recording is never armed).
    fn probe_macros(&self, id: u32) -> (Option<Arc<DictMacro>>, bool) {
        let map = self
            .verifier
            .shared
            .dict_macros
            .read()
            .expect("dict macro lock");
        match map.get(&(id, self.state.pc)) {
            Some(variants) => {
                let hit = variants.iter().find(|m| self.macro_applies(m)).cloned();
                let room = variants.len() < MACRO_VARIANT_CAP;
                (hit, room)
            }
            None => (None, true),
        }
    }

    /// Whether a macro's recorded context matches the live state: the
    /// shadow frames it may pop, the loop records it consumes, and no
    /// queued loop inits that would alter in-span decisions.
    fn macro_applies(&self, m: &DictMacro) -> bool {
        let shadow = &self.state.shadow;
        self.state.pending_inits.is_empty()
            && shadow.len() >= m.required_suffix.len()
            && shadow[shadow.len() - m.required_suffix.len()..] == m.required_suffix[..]
            && self.loops[self.state.loop_idx..].starts_with(&m.loops_used)
    }

    /// Bulk-applies a recorded macro: splices the span's events, shadow
    /// / loop / pending deltas and in-span checkpoints exactly as the
    /// live replay that recorded it would have produced them.
    fn apply_macro(&mut self, m: &DictMacro, span: HitSpan) {
        let keep = self.state.shadow.len() - m.required_suffix.len();
        let base_mtb = self.state.mtb_idx;
        let base_loop = self.state.loop_idx;
        let base_events = self.state.events.len();
        let base_steps = self.state.steps;
        for mc in &m.checkpoints {
            let mut shadow = Vec::with_capacity(keep + mc.shadow_tail.len());
            shadow.extend_from_slice(&self.state.shadow[..keep]);
            shadow.extend_from_slice(&mc.shadow_tail);
            self.checkpoints.push(Checkpoint {
                alt_pc: mc.alt_pc,
                alt_event: mc.alt_event,
                shadow,
                mtb_idx: base_mtb + mc.mtb_off,
                loop_idx: base_loop + mc.loop_off,
                pending_inits: mc.pending.clone(),
                events_len: base_events + mc.events_off,
                steps: base_steps + mc.steps_off,
            });
        }
        self.state.events.extend_from_slice(&m.events);
        self.state.shadow.truncate(keep);
        self.state.shadow.extend_from_slice(&m.end_tail);
        self.state.steps += m.steps;
        self.state.mtb_idx = span.end;
        self.state.loop_idx += m.loops_used.len();
        self.state.pending_inits = m.end_pending.clone();
        self.state.pc = m.end_pc;
        self.global_steps += m.steps;
        let tally = self.tally.as_mut().expect("session tally present");
        tally.cached_steps += m.steps;
        tally.checkpoints += m.checkpoints.len() as u64;
        tally.dict_bulk_applies += 1;
        rap_obs::event("dict_bulk_apply", span.id as u64, m.steps);
    }

    /// Converts the just-finished live replay of a span into a
    /// [`DictMacro`] and publishes it, unless an identical variant is
    /// already cached or the variant slot is full.
    fn finish_recording(&mut self) {
        let Some(rec) = self.recording.take() else {
            return;
        };
        let span = self.spans[rec.span];
        let min_depth = rec.min_depth;
        let mut checkpoints = Vec::with_capacity(self.checkpoints.len() - rec.start_checkpoints);
        for cp in &self.checkpoints[rec.start_checkpoints..] {
            checkpoints.push(MacroCheckpoint {
                alt_pc: cp.alt_pc,
                alt_event: cp.alt_event,
                shadow_tail: cp.shadow[min_depth..].to_vec(),
                mtb_off: cp.mtb_idx - span.start,
                loop_off: cp.loop_idx - rec.start_loop_idx,
                pending: cp.pending_inits.clone(),
                events_off: cp.events_len - rec.start_events,
                steps_off: cp.steps - rec.start_steps,
            });
        }
        let built = DictMacro {
            steps: self.state.steps - rec.start_steps,
            events: self.state.events[rec.start_events..].to_vec(),
            required_suffix: rec.start_shadow[min_depth..].to_vec(),
            end_tail: self.state.shadow[min_depth..].to_vec(),
            loops_used: self.loops[rec.start_loop_idx..self.state.loop_idx].to_vec(),
            end_pending: self.state.pending_inits.clone(),
            end_pc: self.state.pc,
            checkpoints,
        };
        let mut map = self
            .verifier
            .shared
            .dict_macros
            .write()
            .expect("dict macro lock");
        let variants = map.entry((span.id, rec.start_pc)).or_default();
        if variants.len() < MACRO_VARIANT_CAP && !variants.iter().any(|m| **m == built) {
            variants.push(Arc::new(built));
        }
    }

    /// Drives the session to completion; the session's tallies are
    /// committed to the verifier's stats when it drops.
    pub fn run(mut self) -> Result<VerifiedPath, Violation> {
        loop {
            if let Some(verdict) = self.advance() {
                return verdict;
            }
        }
    }

    /// Drives the session to completion, draining its tallies into
    /// `sink` instead of committing them — the batch layer's deferred-
    /// accounting path.
    pub(crate) fn run_into(mut self, sink: &mut StatsTally) -> Result<VerifiedPath, Violation> {
        let verdict = loop {
            if let Some(verdict) = self.advance() {
                break verdict;
            }
        };
        sink.merge(self.tally.take().expect("session tally present"));
        verdict
    }
}

/// Snapshot-able replay state (checkpointed at ambiguous decisions).
#[derive(Debug, Clone)]
struct ReplayState {
    pc: u32,
    shadow: Vec<u32>,
    mtb_idx: usize,
    loop_idx: usize,
    pending_inits: VecDeque<u32>,
    events: Vec<PathEvent>,
    steps: u64,
}

impl ReplayState {
    fn new(entry: u32) -> ReplayState {
        ReplayState {
            pc: entry,
            shadow: Vec::new(),
            mtb_idx: 0,
            loop_idx: 0,
            pending_inits: VecDeque::new(),
            events: vec![PathEvent::Enter(entry)],
            steps: 0,
        }
    }

    /// Bulk-applies a cached deterministic stretch.
    fn apply(&mut self, segment: &Segment) {
        self.events.extend_from_slice(&segment.events);
        self.shadow.extend_from_slice(&segment.shadow_pushes);
        self.steps += segment.steps;
        self.pc = segment.end_pc;
    }

    fn take_mtb(
        &mut self,
        mtb: &[trace_units::TraceEntry],
        pc: u32,
    ) -> Result<trace_units::TraceEntry, Violation> {
        let e = mtb
            .get(self.mtb_idx)
            .copied()
            .ok_or(Violation::LogExhausted { pc })?;
        self.mtb_idx += 1;
        Ok(e)
    }
}

/// A cheap rewind point for the backtracking parse: everything needed
/// to resume with the alternative reading of one ambiguous decision.
/// The (potentially large) event list is shared with the live state and
/// merely truncated on restore.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// PC to resume at under the alternative reading.
    alt_pc: u32,
    /// Event recorded for the alternative reading.
    alt_event: PathEvent,
    shadow: Vec<u32>,
    mtb_idx: usize,
    loop_idx: usize,
    pending_inits: VecDeque<u32>,
    events_len: usize,
    steps: u64,
}

impl Checkpoint {
    fn new(state: &ReplayState, alt_pc: u32, alt_event: PathEvent) -> Checkpoint {
        Checkpoint {
            alt_pc,
            alt_event,
            shadow: state.shadow.clone(),
            mtb_idx: state.mtb_idx,
            loop_idx: state.loop_idx,
            pending_inits: state.pending_inits.clone(),
            events_len: state.events.len(),
            steps: state.steps,
        }
    }

    fn restore(self, state: &mut ReplayState) {
        state.pc = self.alt_pc;
        state.shadow = self.shadow;
        state.mtb_idx = self.mtb_idx;
        state.loop_idx = self.loop_idx;
        state.pending_inits = self.pending_inits;
        state.events.truncate(self.events_len);
        state.events.push(self.alt_event);
        state.steps = self.steps;
    }
}

/// Cap on cached macro variants per `(entry id, entry PC)` key:
/// distinct surrounding contexts (shadow suffix / loop records) each
/// earn a variant, but an adversarial stream must not grow the cache
/// without bound.
const MACRO_VARIANT_CAP: usize = 4;

/// One dictionary-hit expansion in the spliced `mtb`: indices
/// `start..end` came from dictionary entry `id`.
#[derive(Debug, Clone, Copy)]
struct HitSpan {
    start: usize,
    end: usize,
    id: u32,
}

/// Replay deltas of one dictionary sub-path, recorded from its first
/// live replay and bulk-applied on later encounters.
///
/// Soundness: inside a span every replay decision is a function of
/// (a) the expanded transfers — fixed by the entry id, (b) the shadow
/// frames the span pops — pinned by `required_suffix`, and (c) the loop
/// records it consumes — pinned by `loops_used`. With those
/// preconditions matched and no pending inits, a live replay from the
/// same entry PC is deterministic, so splicing the recorded deltas
/// (including the checkpoints a later backtrack could restore) is
/// indistinguishable from re-walking the span instruction by
/// instruction.
#[derive(Debug, PartialEq)]
struct DictMacro {
    steps: u64,
    events: Vec<PathEvent>,
    /// Shadow frames (deepest first) the span observes: the entry
    /// shadow must end with exactly these.
    required_suffix: Vec<u32>,
    /// What replaces `required_suffix` at span exit.
    end_tail: Vec<u32>,
    /// Loop records consumed by the span, in order.
    loops_used: Vec<u32>,
    end_pending: VecDeque<u32>,
    end_pc: u32,
    /// Checkpoints pushed inside the span, span-relative (forward-exit
    /// loop continues push one per iteration, so loop-heavy spans
    /// always carry some — aborting on them would forfeit the speedup
    /// exactly where it matters).
    checkpoints: Vec<MacroCheckpoint>,
}

/// A [`Checkpoint`] in span-relative form: offsets are added to the
/// span-entry position, and the shadow below the span's minimum depth
/// (untouched by the span, so identical at apply time) is dropped.
#[derive(Debug, PartialEq)]
struct MacroCheckpoint {
    alt_pc: u32,
    alt_event: PathEvent,
    /// Shadow frames above the preserved prefix at checkpoint time.
    shadow_tail: Vec<u32>,
    mtb_off: usize,
    loop_off: usize,
    pending: VecDeque<u32>,
    events_off: usize,
    steps_off: u64,
}

/// Bookkeeping for a span being replayed live for the first time.
#[derive(Debug)]
struct Recording {
    /// Index into [`ReplaySession::spans`].
    span: usize,
    /// PC at span entry — half the macro cache key.
    start_pc: u32,
    start_events: usize,
    start_steps: u64,
    start_shadow: Vec<u32>,
    /// Minimum shadow depth observed inside the span; frames below it
    /// are never touched, frames at or above it form the macro's
    /// precondition.
    min_depth: usize,
    start_loop_idx: usize,
    start_checkpoints: usize,
}

fn resolve(target: &Target) -> u32 {
    target
        .abs()
        .expect("deployed images carry resolved targets")
}

fn expect_src(pc: u32, got: u32, expected: u32) -> Result<(), Violation> {
    if got != expected {
        return Err(Violation::UnexpectedSource { pc, got, expected });
    }
    Ok(())
}

fn expect_dest(pc: u32, got: u32, expected: u32) -> Result<(), Violation> {
    if got != expected {
        return Err(Violation::UnexpectedDest { pc, got, expected });
    }
    Ok(())
}
