//! Fleet-scale batch verification.
//!
//! TRACES and ACFA both frame the Verifier as an always-on auditing
//! service for device *fleets*; a single-threaded replay loop cannot
//! serve that workload. This module verifies many `(Challenge,
//! report stream)` jobs concurrently across a [`std::thread::scope`]
//! worker pool sharing one [`Verifier`] (and therefore one replay
//! cache), with results returned in submission order.
//!
//! The entry point is [`Verifier::fleet`], which returns a [`Fleet`]
//! handle bound to one verifier and one [`BatchOptions`]. Work
//! distribution is shaped to the input:
//!
//! * [`Fleet::run`] owns the whole job slice up front, so workers
//!   claim index ranges from an **atomic-ticket dispenser** — one
//!   `fetch_add` per chunk, no mutex, no condvar, no per-job handoff.
//!   Chunks shrink as the slice drains (guided self-scheduling) so the
//!   tail stays balanced without paying per-job dispatch up front.
//! * [`Fleet::stream`] consumes jobs from an iterator whose
//!   length is unknown (a socket, a directory walk), so it keeps the
//!   bounded [`BoundedQueue`] + condvar handoff: backpressure is the
//!   point there, not raw dispatch throughput.
//! * [`Fleet::sequential`] is the calling-thread reference
//!   implementation for equivalence tests and 1-thread baselines.
//!
//! Workers accumulate their verification stats in plain per-worker
//! tallies merged once at join (see `Verifier::commit_tally`), so the
//! replay hot loop never touches a shared cache line.
//!
//! Batch verification is observationally identical to calling
//! [`Verifier::verify`] per job in sequence — same [`VerifiedPath`]s,
//! same [`Violation`]s — it only overlaps the wall-clock time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::report::{Challenge, Report};
use crate::verifier::{StatsTally, VerifiedPath, Verifier, Violation};

/// One fleet verification job: a device's report stream for one
/// attestation round.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Operator-facing device identifier (free-form).
    pub device: String,
    /// The challenge issued to this device for the round.
    pub chal: Challenge,
    /// The device's (ordered) report stream.
    pub reports: Vec<Report>,
}

/// The outcome of one [`FleetJob`].
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's device identifier, echoed back.
    pub device: String,
    /// The verification verdict.
    pub result: Result<VerifiedPath, Violation>,
    /// Wall-clock time this job spent in `verify`.
    pub wall: Duration,
}

impl JobOutcome {
    /// Whether the device's execution was accepted.
    pub fn accepted(&self) -> bool {
        self.result.is_ok()
    }
}

/// Worker-pool configuration for [`Fleet::run`] / [`Fleet::stream`].
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads. Clamped to at least 1 (and, for the slice path,
    /// to the job count — idle workers would only add spawn cost).
    pub threads: usize,
    /// Streaming path only: bound on jobs buffered between the
    /// submitting thread and the workers; submission blocks when full
    /// (backpressure). Clamped to at least 1.
    pub queue_depth: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchOptions {
            threads,
            queue_depth: threads * 2,
        }
    }
}

impl BatchOptions {
    /// Options for a pool of exactly `threads` workers.
    pub fn with_threads(threads: usize) -> BatchOptions {
        BatchOptions {
            threads,
            queue_depth: threads.max(1) * 2,
        }
    }
}

/// Largest index range one dispenser claim may cover. Caps the damage
/// when one early chunk happens to hold all the slow jobs.
const MAX_CHUNK: usize = 64;

/// The worker pool and chunking [`Fleet::run`] will actually use for
/// `jobs` jobs at `requested` threads: `(effective threads, initial
/// chunk size)`. Public so the CLI can report the effective
/// configuration instead of the requested one.
pub fn effective_batch_config(jobs: usize, requested: usize) -> (usize, usize) {
    let threads = requested.max(1).min(jobs.max(1));
    (threads, chunk_for(jobs, 0, threads))
}

/// Guided self-scheduling chunk size: claim `remaining / (4 * threads)`
/// jobs, so early claims amortize the dispenser `fetch_add` while the
/// tail degrades to per-job claims and no worker is left holding a
/// large chunk while the others idle.
fn chunk_for(total: usize, claimed: usize, threads: usize) -> usize {
    (total.saturating_sub(claimed) / (threads * 4)).clamp(1, MAX_CHUNK)
}

/// Claims the next chunk of job indices, or `None` once the slice is
/// exhausted. Lock-free: one relaxed load to size the chunk (staleness
/// only perturbs the chunk size, never correctness) and one `fetch_add`
/// to claim it. Every index in `0..total` is claimed exactly once.
fn claim_chunk(cursor: &AtomicUsize, total: usize, threads: usize) -> Option<(usize, usize)> {
    let seen = cursor.load(Ordering::Relaxed);
    if seen >= total {
        return None;
    }
    let chunk = chunk_for(total, seen, threads);
    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
    if start >= total {
        return None;
    }
    Some((start, (start + chunk).min(total)))
}

/// The fleet-verification surface of one [`Verifier`]: a lightweight
/// handle binding the verifier to a [`BatchOptions`], created by
/// [`Verifier::fleet`].
///
/// All workers share the verifier's replay cache, so identical
/// deterministic stretches — across loop iterations *and* across
/// devices running the same binary — are decoded once.
#[derive(Debug, Clone, Copy)]
pub struct Fleet<'v> {
    verifier: &'v Verifier,
    options: BatchOptions,
}

impl Verifier {
    /// Opens the fleet-verification surface with the given worker-pool
    /// options; see [`Fleet`].
    pub fn fleet(&self, options: BatchOptions) -> Fleet<'_> {
        Fleet {
            verifier: self,
            options,
        }
    }
}

impl Fleet<'_> {
    /// The options this handle was opened with.
    pub fn options(&self) -> BatchOptions {
        self.options
    }

    /// Verifies a batch of fleet jobs concurrently against one deployed
    /// binary. Returns one [`JobOutcome`] per job, in submission order.
    pub fn run(&self, jobs: Vec<FleetJob>) -> Vec<JobOutcome> {
        let verifier = self.verifier;
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        let (threads, initial_chunk) = effective_batch_config(total, self.options.threads);
        rap_obs::gauge!("fleet_effective_threads").set(threads as i64);
        rap_obs::gauge!("fleet_chunk_size").set(initial_chunk as i64);

        let cursor = AtomicUsize::new(0);
        let jobs = &jobs;
        let per_worker: Vec<Vec<(usize, JobOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut outcomes: Vec<(usize, JobOutcome)> = Vec::new();
                        let mut tally = StatsTally::default();
                        let mut busy_ns = 0u64;
                        let mut idle_ns = 0u64;
                        loop {
                            let idle_from = Instant::now();
                            let Some((start, end)) = claim_chunk(&cursor, total, threads) else {
                                break;
                            };
                            idle_ns += idle_from.elapsed().as_nanos() as u64;
                            for (index, job) in jobs[start..end].iter().enumerate() {
                                let index = start + index;
                                let from = Instant::now();
                                let result =
                                    verifier.verify_tallied(job.chal, &job.reports, &mut tally);
                                let wall = from.elapsed();
                                busy_ns += wall.as_nanos() as u64;
                                outcomes.push((
                                    index,
                                    JobOutcome {
                                        device: job.device.clone(),
                                        result,
                                        wall,
                                    },
                                ));
                            }
                        }
                        // One merge per worker: the only writes this
                        // worker ever makes to shared counters.
                        verifier.commit_tally(&tally);
                        rap_obs::counter!("batch_worker_busy_ns_total").add(busy_ns);
                        rap_obs::counter!("batch_worker_idle_ns_total").add(idle_ns);
                        // Flush this worker's trace ring *inside* the
                        // closure: scoped threads signal completion
                        // before their TLS destructors run, so a drain
                        // right after `run` returns would otherwise
                        // race the implicit flush.
                        rap_obs::flush_thread();
                        outcomes
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        });

        collect_in_order(total, per_worker)
    }

    /// Verifies a *stream* of fleet jobs whose length is not known up
    /// front (a socket, a directory walk): jobs flow through a bounded
    /// queue so the producer is backpressured once `queue_depth` jobs
    /// are in flight. Returns outcomes in submission order, like
    /// [`Fleet::run`] — which is the better choice whenever the jobs
    /// already sit in memory.
    pub fn stream(&self, jobs: impl IntoIterator<Item = FleetJob>) -> Vec<JobOutcome> {
        let verifier = self.verifier;
        let threads = self.options.threads.max(1);
        let queue: BoundedQueue<(usize, FleetJob)> =
            BoundedQueue::new(self.options.queue_depth.max(1));
        let (per_worker, total): (Vec<Vec<(usize, JobOutcome)>>, usize) =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut outcomes: Vec<(usize, JobOutcome)> = Vec::new();
                            let mut tally = StatsTally::default();
                            let mut busy_ns = 0u64;
                            let mut idle_ns = 0u64;
                            loop {
                                let idle_from = Instant::now();
                                let Some((index, job)) = queue.pop() else {
                                    break;
                                };
                                idle_ns += idle_from.elapsed().as_nanos() as u64;
                                let from = Instant::now();
                                let result =
                                    verifier.verify_tallied(job.chal, &job.reports, &mut tally);
                                let wall = from.elapsed();
                                busy_ns += wall.as_nanos() as u64;
                                outcomes.push((
                                    index,
                                    JobOutcome {
                                        device: job.device,
                                        result,
                                        wall,
                                    },
                                ));
                            }
                            verifier.commit_tally(&tally);
                            rap_obs::counter!("batch_worker_busy_ns_total").add(busy_ns);
                            rap_obs::counter!("batch_worker_idle_ns_total").add(idle_ns);
                            rap_obs::flush_thread();
                            outcomes
                        })
                    })
                    .collect();
                let mut submitted = 0usize;
                for job in jobs {
                    queue.push((submitted, job));
                    submitted += 1;
                }
                queue.close();
                (
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fleet worker panicked"))
                        .collect(),
                    submitted,
                )
            });

        collect_in_order(total, per_worker)
    }

    /// Reference implementation for equivalence testing and 1-thread
    /// baselines: the same jobs, verified on the calling thread (the
    /// handle's thread options are ignored).
    pub fn sequential(&self, jobs: Vec<FleetJob>) -> Vec<JobOutcome> {
        jobs.into_iter()
            .map(|job| {
                let start = Instant::now();
                let result = self.verifier.verify(job.chal, &job.reports);
                let wall = start.elapsed();
                observe_job(wall);
                JobOutcome {
                    device: job.device,
                    result,
                    wall,
                }
            })
            .collect()
    }
}

/// Merges per-worker `(index, outcome)` piles back into submission
/// order and records the per-job metrics — once, from the joining
/// thread, after all workers are done.
fn collect_in_order(total: usize, per_worker: Vec<Vec<(usize, JobOutcome)>>) -> Vec<JobOutcome> {
    let mut slots: Vec<Option<JobOutcome>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for (index, outcome) in per_worker.into_iter().flatten() {
        observe_job(outcome.wall);
        debug_assert!(slots[index].is_none(), "job {index} claimed twice");
        slots[index] = Some(outcome);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job claimed exactly once"))
        .collect()
}

/// Records one completed job into the shared per-job latency histogram
/// and job counter (the same metrics for batch and sequential paths, so
/// their totals are directly comparable).
fn observe_job(wall: Duration) {
    rap_obs::counter!("batch_jobs_total").inc();
    rap_obs::histogram!("batch_job_latency_ns", &rap_obs::LATENCY_NS_BOUNDS)
        .observe(wall.as_nanos() as u64);
}

/// A minimal bounded MPMC queue: `push` blocks while full, `pop` blocks
/// while empty, and `close` wakes all poppers once drained. Built on
/// std only (the registry is unreachable on the evaluation machines).
/// Used by the streaming path, where backpressure — not dispatch
/// throughput — is the requirement; the slice path uses the atomic
/// dispenser instead.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues.
    ///
    /// # Panics
    ///
    /// Panics if called after `close` — a harness bug.
    fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.items.len() >= inner.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        assert!(!inner.closed, "push after close");
        inner.items.push_back(item);
        rap_obs::gauge!("batch_queue_depth").set(inner.items.len() as i64);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed and drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                rap_obs::gauge!("batch_queue_depth").set(inner.items.len() as i64);
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Marks the queue closed: blocked and future `pop`s return `None`
    /// once the backlog drains.
    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn queue_delivers_everything_once() {
        let queue: BoundedQueue<usize> = BoundedQueue::new(4);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = queue.pop() {
                        seen.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=100 {
                queue.push(v);
            }
            queue.close();
        });
        assert_eq!(seen.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn queue_close_releases_blocked_poppers() {
        let queue: BoundedQueue<usize> = BoundedQueue::new(1);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| queue.pop());
            // Give the popper a chance to block, then close.
            std::thread::sleep(Duration::from_millis(10));
            queue.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn batch_options_clamp() {
        let options = BatchOptions::with_threads(0);
        assert_eq!(options.queue_depth, 2);
        // The fleet handle clamps threads itself; empty batch is a no-op.
        let defaults = BatchOptions::default();
        assert!(defaults.threads >= 1);
        assert!(defaults.queue_depth >= 2);
    }

    #[test]
    fn dispenser_claims_every_index_exactly_once() {
        for (total, threads) in [(1usize, 8usize), (7, 3), (100, 4), (1000, 8)] {
            let cursor = AtomicUsize::new(0);
            let claims: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        while let Some(range) = claim_chunk(&cursor, total, threads) {
                            claims.lock().unwrap().push(range);
                        }
                    });
                }
            });
            let mut covered = vec![0u32; total];
            for (start, end) in claims.into_inner().unwrap() {
                assert!(start < end && end <= total);
                for slot in &mut covered[start..end] {
                    *slot += 1;
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "total={total} threads={threads}: {covered:?}"
            );
        }
    }

    #[test]
    fn chunks_shrink_toward_the_tail() {
        // Guided self-scheduling: a fresh slice hands out larger chunks
        // than a nearly-drained one, and never zero.
        assert!(chunk_for(1000, 0, 4) > chunk_for(1000, 990, 4));
        assert_eq!(chunk_for(1000, 999, 4), 1);
        assert_eq!(chunk_for(10, 10, 4), 1);
        assert!(chunk_for(1_000_000, 0, 1) <= MAX_CHUNK);
        let (threads, chunk) = effective_batch_config(6, 32);
        assert_eq!(threads, 6, "threads clamp to the job count");
        assert!(chunk >= 1);
        assert_eq!(effective_batch_config(0, 0), (1, 1));
    }
}
