//! Fleet-scale batch verification.
//!
//! TRACES and ACFA both frame the Verifier as an always-on auditing
//! service for device *fleets*; a single-threaded replay loop cannot
//! serve that workload. This module verifies many `(Challenge,
//! report stream)` jobs concurrently: a bounded work queue feeds a
//! [`std::thread::scope`] worker pool, every worker replays against the
//! same shared [`Verifier`] (and therefore the same straight-line
//! replay cache), and results come back in submission order.
//!
//! Batch verification is observationally identical to calling
//! [`Verifier::verify`] per job in sequence — same [`VerifiedPath`]s,
//! same [`Violation`]s — it only overlaps the wall-clock time.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::report::{Challenge, Report};
use crate::verifier::{VerifiedPath, Verifier, Violation};

/// One fleet verification job: a device's report stream for one
/// attestation round.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Operator-facing device identifier (free-form).
    pub device: String,
    /// The challenge issued to this device for the round.
    pub chal: Challenge,
    /// The device's (ordered) report stream.
    pub reports: Vec<Report>,
}

/// The outcome of one [`FleetJob`].
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's device identifier, echoed back.
    pub device: String,
    /// The verification verdict.
    pub result: Result<VerifiedPath, Violation>,
    /// Wall-clock time this job spent in `verify`.
    pub wall: Duration,
}

impl JobOutcome {
    /// Whether the device's execution was accepted.
    pub fn accepted(&self) -> bool {
        self.result.is_ok()
    }
}

/// Worker-pool configuration for [`verify_fleet`].
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads. Clamped to at least 1.
    pub threads: usize,
    /// Bound on jobs buffered between the submitting thread and the
    /// workers; submission blocks when full (backpressure). Clamped to
    /// at least 1.
    pub queue_depth: usize,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchOptions {
            threads,
            queue_depth: threads * 2,
        }
    }
}

impl BatchOptions {
    /// Options for a pool of exactly `threads` workers.
    pub fn with_threads(threads: usize) -> BatchOptions {
        BatchOptions {
            threads,
            queue_depth: threads.max(1) * 2,
        }
    }
}

/// Verifies a batch of fleet jobs concurrently against one deployed
/// binary. Returns one [`JobOutcome`] per job, in submission order.
///
/// All workers share `verifier`'s replay cache, so identical
/// deterministic stretches — across loop iterations *and* across
/// devices running the same binary — are decoded once.
pub fn verify_fleet(
    verifier: &Verifier,
    jobs: Vec<FleetJob>,
    options: BatchOptions,
) -> Vec<JobOutcome> {
    let threads = options.threads.max(1);
    let total = jobs.len();
    let queue: BoundedQueue<(usize, FleetJob)> = BoundedQueue::new(options.queue_depth.max(1));
    let done: Mutex<Vec<(usize, JobOutcome)>> = Mutex::new(Vec::with_capacity(total));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                loop {
                    // Time spent blocked on the queue is idle; time
                    // spent verifying is busy. Both accumulate once per
                    // job, so the worker loop stays free of atomics
                    // while a job is replaying.
                    let idle_from = Instant::now();
                    let Some((index, job)) = queue.pop() else {
                        // Flush this worker's trace ring *inside* the
                        // closure: scoped threads signal completion
                        // before their TLS destructors run, so a
                        // drain right after `verify_fleet` returns
                        // would otherwise race the implicit flush.
                        rap_obs::flush_thread();
                        break;
                    };
                    rap_obs::counter!("batch_worker_idle_ns_total")
                        .add(idle_from.elapsed().as_nanos() as u64);
                    let start = Instant::now();
                    let result = verifier.verify(job.chal, &job.reports);
                    let wall = start.elapsed();
                    rap_obs::counter!("batch_worker_busy_ns_total").add(wall.as_nanos() as u64);
                    observe_job(wall);
                    let outcome = JobOutcome {
                        device: job.device,
                        result,
                        wall,
                    };
                    done.lock().expect("result lock").push((index, outcome));
                }
            });
        }
        for (index, job) in jobs.into_iter().enumerate() {
            queue.push((index, job));
        }
        queue.close();
    });

    let mut outcomes = done.into_inner().expect("result lock");
    outcomes.sort_by_key(|(index, _)| *index);
    debug_assert_eq!(outcomes.len(), total);
    outcomes.into_iter().map(|(_, outcome)| outcome).collect()
}

/// Reference implementation for equivalence testing and 1-thread
/// baselines: the same jobs, verified on the calling thread.
pub fn verify_sequential(verifier: &Verifier, jobs: Vec<FleetJob>) -> Vec<JobOutcome> {
    jobs.into_iter()
        .map(|job| {
            let start = Instant::now();
            let result = verifier.verify(job.chal, &job.reports);
            let wall = start.elapsed();
            observe_job(wall);
            JobOutcome {
                device: job.device,
                result,
                wall,
            }
        })
        .collect()
}

/// Records one completed job into the shared per-job latency histogram
/// and job counter (the same metrics for batch and sequential paths, so
/// their totals are directly comparable).
fn observe_job(wall: Duration) {
    rap_obs::counter!("batch_jobs_total").inc();
    rap_obs::histogram!("batch_job_latency_ns", &rap_obs::LATENCY_NS_BOUNDS)
        .observe(wall.as_nanos() as u64);
}

/// A minimal bounded MPMC queue: `push` blocks while full, `pop` blocks
/// while empty, and `close` wakes all poppers once drained. Built on
/// std only (the registry is unreachable on the evaluation machines).
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues.
    ///
    /// # Panics
    ///
    /// Panics if called after `close` — a harness bug.
    fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.items.len() >= inner.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        assert!(!inner.closed, "push after close");
        inner.items.push_back(item);
        rap_obs::gauge!("batch_queue_depth").set(inner.items.len() as i64);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed and drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                rap_obs::gauge!("batch_queue_depth").set(inner.items.len() as i64);
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Marks the queue closed: blocked and future `pop`s return `None`
    /// once the backlog drains.
    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_delivers_everything_once() {
        let queue: BoundedQueue<usize> = BoundedQueue::new(4);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(v) = queue.pop() {
                        seen.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=100 {
                queue.push(v);
            }
            queue.close();
        });
        assert_eq!(seen.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn queue_close_releases_blocked_poppers() {
        let queue: BoundedQueue<usize> = BoundedQueue::new(1);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| queue.pop());
            // Give the popper a chance to block, then close.
            std::thread::sleep(Duration::from_millis(10));
            queue.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn batch_options_clamp() {
        let options = BatchOptions::with_threads(0);
        assert_eq!(options.queue_depth, 2);
        // verify_fleet clamps threads itself; empty batch is a no-op.
        let defaults = BatchOptions::default();
        assert!(defaults.threads >= 1);
        assert!(defaults.queue_depth >= 2);
    }
}
