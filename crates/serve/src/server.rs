//! The attestation server: a bounded accept loop feeding a dispatcher
//! that routes each connection to a verifier shard by device id, where
//! a shard worker drives one [`VerifierSession`] per connection
//! through pipelined CHALLENGE/ATTEST/VERDICT rounds.
//!
//! All shard workers clone one [`Verifier`], so every connection
//! shares the two-level replay cache — a fleet of devices running the
//! same binary decodes each deterministic stretch once, no matter
//! which connection saw it first. Routing by device id additionally
//! keeps each device's rounds on one worker thread, so the per-thread
//! L1 of the replay cache stays warm for that device. Session state
//! (nonces, used-challenge set) stays strictly per-connection: each
//! fresh session is seeded with the server secret *plus a unique
//! connection id*, so a nonce can never repeat across connections.
//!
//! Rounds are pipelined: the handshake grants a window of `W`
//! challenges up front, the client writes ahead up to `W` ATTEST
//! frames, and the server verifies every buffered frame per *drain
//! tick*, batching the verdicts, replacement challenges, and
//! observability updates into one flush per tick instead of one per
//! round. When a connection ends cleanly its session is parked under
//! a single-use resumption token (granted in the handshake), and a
//! reconnecting device presents that token in a `RESUME` opener to
//! continue its nonce chain without a fresh `HELLO` setup.
//!
//! Overload is shed, not queued: when the accept backlog or a shard's
//! queue is full, the connection is answered with `ERROR busy` and
//! closed instead of growing an unbounded backlog. Shutdown drains:
//! the listener stops accepting, queued and in-flight rounds finish
//! (bounded by the per-connection read deadline), and every worker
//! flushes its `rap-obs` trace ring before joining.
//!
//! With [`ServerConfig::admin_addr`] set, the server additionally
//! runs a *telemetry plane*: every round gets a trace id minted at
//! CHALLENGE issue and carried through accept → dispatch → shard
//! queue → replay → flush, slow rounds retain their full span tree in
//! a bounded [`RoundCollector`] ring, and a separate loopback admin
//! listener answers `STATS`/`EXEMPLARS` frames with point-in-time
//! snapshots plus a per-device aggregate table. With `admin_addr`
//! unset none of this exists — the per-round cost is one `Option`
//! check, preserving the disabled-cost guarantee.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rap_audit::AuditLog;
use rap_crypto::{hmac_sha256, sha256};
use rap_obs::{Json, RoundCollector, RoundExemplar, StageSpan};
use rap_track::{
    decode_stream, stats_digest, Challenge, VerdictDraft, VerdictRecord, Verifier, VerifierSession,
};

use crate::frame::{
    decode_frame, decode_hello, decode_resume, decode_stats_request, encode_error, encode_frame,
    encode_session, read_frame, write_frame, ErrorCode, Frame, FrameError, FrameType,
    ReadFrameError, ResumeToken, SessionGrant, StatsFormat, Verdict, DEFAULT_MAX_FRAME_LEN,
};

/// The callback type wrapped by [`VerdictHook`]: `(device, accepted)`.
#[deprecated(
    since = "0.1.0",
    note = "use RoundEventFn / RoundHook, which carries the sealed VerdictRecord"
)]
pub type VerdictFn = dyn Fn(&str, bool) + Send + Sync;

/// The callback type wrapped by [`RoundHook`].
pub type RoundEventFn = dyn Fn(&RoundEvent) + Send + Sync;

/// A typed event from the serving path, delivered to [`RoundHook`]
/// observers synchronously on the shard worker.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new event kinds can be added without a breaking change.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum RoundEvent {
    /// A round reached a verdict. The sealed [`VerdictRecord`] is the
    /// proof-carrying form: consumers can cite
    /// [`record_hash`](VerdictRecord::record_hash) and later audit it
    /// against the chain instead of trusting process memory.
    Verdict {
        /// Device that answered the challenge.
        device: String,
        /// The sealed verdict.
        record: VerdictRecord,
    },
}

/// The provider type wrapped by [`AdminExtra`]: extra top-level
/// `(name, value)` fields for the telemetry JSON.
pub type AdminExtraFn = dyn Fn() -> Vec<(String, Json)> + Send + Sync;

/// A server-side observer invoked once per verified round with the
/// device name and whether the evidence was accepted, synchronously on
/// the shard worker *before* the verdict batch is flushed.
///
/// Deprecated bool-form shim, kept for one release: new code should
/// use [`RoundHook`], whose [`RoundEvent`] carries the sealed
/// [`VerdictRecord`] instead of a bare bool.
#[deprecated(
    since = "0.1.0",
    note = "use RoundHook, whose RoundEvent carries the sealed VerdictRecord"
)]
#[derive(Clone)]
#[allow(deprecated)]
pub struct VerdictHook(pub Arc<VerdictFn>);

#[allow(deprecated)]
impl VerdictHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&str, bool) + Send + Sync + 'static) -> VerdictHook {
        VerdictHook(Arc::new(f))
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for VerdictHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("VerdictHook(..)")
    }
}

/// A server-side observer invoked once per round with a typed
/// [`RoundEvent`], synchronously on the shard worker *before* the
/// verdict batch is flushed. Control planes (rap-fleet) hang their
/// policy reactions off this; keep the callback cheap — it runs inside
/// the drain tick.
#[derive(Clone)]
pub struct RoundHook(pub Arc<RoundEventFn>);

impl RoundHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&RoundEvent) + Send + Sync + 'static) -> RoundHook {
        RoundHook(Arc::new(f))
    }
}

impl std::fmt::Debug for RoundHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RoundHook(..)")
    }
}

/// A provider of extra top-level fields for the admin plane's
/// telemetry JSON (`STATS` in JSON format). The fleet control plane
/// uses this to expose its registry as a `"fleet"` section without
/// rap-serve depending on it.
#[derive(Clone)]
pub struct AdminExtra(pub Arc<AdminExtraFn>);

impl AdminExtra {
    /// Wraps a provider callback.
    pub fn new(f: impl Fn() -> Vec<(String, Json)> + Send + Sync + 'static) -> AdminExtra {
        AdminExtra(Arc::new(f))
    }
}

impl std::fmt::Debug for AdminExtra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdminExtra(..)")
    }
}

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Verifier shards (one worker thread per shard; connections are
    /// routed to shards by device id).
    pub threads: usize,
    /// Connections that may wait for the dispatcher or a shard worker
    /// before new arrivals are shed with `ERROR busy`.
    pub max_pending: usize,
    /// Payload-size cap applied before any allocation.
    pub max_frame_len: u32,
    /// Per-connection read deadline; also bounds how long a drain can
    /// wait on an in-flight round.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Seed for per-connection nonce derivation and resumption-token
    /// authentication. Must be non-empty — [`Server::start`] rejects
    /// an empty secret with [`StartError::EmptySecret`].
    pub session_secret: Vec<u8>,
    /// Cap on the pipelining window granted per connection; client
    /// requests are clamped into `1..=window`.
    pub window: u16,
    /// How long a parked session stays resumable after its connection
    /// closes.
    pub resume_ttl: Duration,
    /// Cap on parked sessions; once full, closing connections simply
    /// lose resumability (their tokens are rejected).
    pub resume_capacity: usize,
    /// When set, stop accepting and drain after this many connections
    /// have been accepted — lets scripts run a bounded smoke test
    /// without signal handling.
    pub conn_limit: Option<u64>,
    /// When set, bind a second (loopback) listener at this address and
    /// serve `STATS`/`EXEMPLARS` admin frames from it, and turn on
    /// per-round trace-context tracking. `None` (the default) keeps
    /// the whole telemetry plane compiled out of the hot path behind a
    /// single `Option` check.
    pub admin_addr: Option<String>,
    /// Rounds slower than this (challenge issue → verdict flushed)
    /// retain their full span tree as a [`RoundExemplar`]. Only
    /// meaningful with [`ServerConfig::admin_addr`] set.
    pub slow_round_threshold: Duration,
    /// Cap on retained slow-round exemplars (oldest evicted first).
    pub exemplar_capacity: usize,
    /// Cap on the admin plane's per-device telemetry table. Beyond it
    /// the least-recently-touched device row is evicted (counted in
    /// `admin_device_table_evictions_total`), so a churning fleet
    /// cannot grow server memory without bound.
    pub device_table_cap: usize,
    /// Called once per verified round with `(device, accepted)`, on
    /// the shard worker before the verdict batch flushes. Deprecated
    /// bool-form shim — use [`ServerConfig::round_hook`]; when both
    /// are set, both fire.
    #[deprecated(
        since = "0.1.0",
        note = "use round_hook, whose RoundEvent carries the sealed VerdictRecord"
    )]
    #[allow(deprecated)]
    pub verdict_hook: Option<VerdictHook>,
    /// Called once per round with a typed [`RoundEvent`] carrying the
    /// sealed [`VerdictRecord`], on the shard worker before the
    /// verdict batch flushes.
    pub round_hook: Option<RoundHook>,
    /// When set, every sealed verdict is appended to the hash-chained
    /// audit log at this path (created or recovered via
    /// [`AuditLog::open`]), batched once per drain tick.
    pub audit_log: Option<std::path::PathBuf>,
    /// Extra top-level sections merged into the admin `STATS` JSON.
    pub admin_extra: Option<AdminExtra>,
}

impl Default for ServerConfig {
    #[allow(deprecated)]
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 4,
            max_pending: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            // Deliberately empty: there is no safe default secret. The
            // caller must supply one (Server::start rejects this
            // default), and `rap serve` generates a random one.
            session_secret: Vec::new(),
            window: 8,
            resume_ttl: Duration::from_secs(60),
            resume_capacity: 1024,
            conn_limit: None,
            admin_addr: None,
            slow_round_threshold: Duration::from_millis(5),
            exemplar_capacity: 64,
            device_table_cap: 1024,
            verdict_hook: None,
            round_hook: None,
            audit_log: None,
            admin_extra: None,
        }
    }
}

/// A failure starting the server.
#[derive(Debug)]
#[non_exhaustive]
pub enum StartError {
    /// [`ServerConfig::session_secret`] was empty — an empty secret
    /// would make every nonce chain and resumption token forgeable.
    EmptySecret,
    /// Binding the listener failed.
    Io(std::io::Error),
    /// Opening [`ServerConfig::audit_log`] failed — refusing to serve
    /// rather than silently dropping the audit trail (the existing log
    /// may be tampered, or the path unwritable).
    Audit(rap_audit::OpenError),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::EmptySecret => {
                write!(
                    f,
                    "session secret must not be empty (nonces would be forgeable)"
                )
            }
            StartError::Io(e) => write!(f, "bind failed: {e}"),
            StartError::Audit(e) => write!(f, "audit log: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<std::io::Error> for StartError {
    fn from(e: std::io::Error) -> StartError {
        StartError::Io(e)
    }
}

/// Counters reported by [`Server::shutdown`]/[`Server::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handed to the dispatcher.
    pub accepted: u64,
    /// Connections shed with `ERROR busy`.
    pub shed: u64,
    /// Connections that resumed a parked session via a token.
    pub resumed: u64,
    /// `RESUME` openers rejected (unknown/used/expired/wrong-device).
    pub resume_rejected: u64,
    /// Rounds whose evidence verified.
    pub verdicts_accepted: u64,
    /// Rounds whose evidence was rejected (wire or session failure).
    pub verdicts_rejected: u64,
    /// `Error` frames successfully flushed to the peer.
    pub errors_sent: u64,
    /// `Error` frames the server tried to send but could not deliver
    /// (the peer was already gone).
    pub error_send_failed: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    resumed: AtomicU64,
    resume_rejected: AtomicU64,
    verdicts_accepted: AtomicU64,
    verdicts_rejected: AtomicU64,
    errors_sent: AtomicU64,
    error_send_failed: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            resume_rejected: self.resume_rejected.load(Ordering::Relaxed),
            verdicts_accepted: self.verdicts_accepted.load(Ordering::Relaxed),
            verdicts_rejected: self.verdicts_rejected.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
            error_send_failed: self.error_send_failed.load(Ordering::Relaxed),
        }
    }
}

/// Bounded handoff between pipeline stages (accept → dispatch →
/// shard). `try_push` refuses instead of blocking — that refusal is
/// the load shed. `pop` blocks until an item arrives or the queue
/// closes.
struct HandoffQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> HandoffQueue<T> {
    fn new(cap: usize) -> HandoffQueue<T> {
        HandoffQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Returns the item on refusal (queue full or closed) so the
    /// caller can still talk to the connection it failed to enqueue.
    ///
    /// `stamp` runs under the queue lock with the depth the item is
    /// entering at — the telemetry plane uses it to record enqueue-time
    /// queue depths without a second lock acquisition; pass
    /// `|_, _| {}` when the depth is not needed.
    fn try_push(&self, mut item: T, stamp: impl FnOnce(&mut T, usize)) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.cap {
            return Err(item);
        }
        stamp(&mut item, inner.items.len());
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// A connection the accept loop has enqueued for the dispatcher.
struct AcceptedConn {
    conn_id: u64,
    stream: TcpStream,
    /// When the accept loop enqueued the connection.
    accepted_at: Instant,
    /// Accept-queue depth at enqueue time (stamped under the lock).
    accept_depth: u32,
}

/// A connection whose opener has been read and routed: everything a
/// shard worker needs to run the session.
struct PendingConn {
    conn_id: u64,
    stream: TcpStream,
    device: String,
    requested_window: u16,
    /// `Some` when the opener was a valid `RESUME` — the parked
    /// session whose nonce chain continues.
    restored: Option<VerifierSession>,
    /// When the accept loop enqueued the connection.
    accepted_at: Instant,
    /// When the dispatcher picked it up (opener read starts).
    dispatch_started_at: Instant,
    /// When the dispatcher enqueued it on its shard.
    shard_enqueued_at: Instant,
    /// Accept-queue depth at enqueue time.
    accept_depth: u32,
    /// Shard-queue depth at enqueue time (stamped under the lock).
    shard_depth: u32,
}

/// A session parked at connection close, waiting for a `RESUME`.
struct ResumeEntry {
    session: VerifierSession,
    device: String,
    expires_at: Instant,
}

type ResumeTable = Mutex<HashMap<u64, ResumeEntry>>;

/// Per-device aggregate row of the admin telemetry table: volume,
/// rejects, resumes, recency and a fixed-bucket latency distribution
/// (same layout as `serve_round_latency_ns`) for a bucket-derived p99.
struct DeviceAgg {
    rounds: u64,
    rejects: u64,
    resumes: u64,
    /// Last verdict-flush time, ns since the server epoch.
    last_seen_ns: u64,
    buckets: [u64; rap_obs::ROUND_LATENCY_NS_BOUNDS.len() + 1],
}

impl Default for DeviceAgg {
    fn default() -> DeviceAgg {
        DeviceAgg {
            rounds: 0,
            rejects: 0,
            resumes: 0,
            last_seen_ns: 0,
            buckets: [0; rap_obs::ROUND_LATENCY_NS_BOUNDS.len() + 1],
        }
    }
}

impl DeviceAgg {
    fn observe(&mut self, total_ns: u64) {
        let idx = rap_obs::ROUND_LATENCY_NS_BOUNDS.partition_point(|&b| b < total_ns);
        self.buckets[idx] += 1;
    }

    fn p99_ns(&self) -> u64 {
        rap_obs::bucket_quantile(&rap_obs::ROUND_LATENCY_NS_BOUNDS, &self.buckets, 0.99)
    }
}

/// The per-device telemetry table, capped: every access stamps the row
/// with a monotone sequence number, and inserting past `cap` evicts
/// the least-recently-touched row (an O(n) scan — eviction only
/// happens when a *new* device shows up on a full table, so a stable
/// fleet never pays it). Evictions are counted in
/// `admin_device_table_evictions_total`.
struct DeviceTable {
    map: HashMap<String, (u64, DeviceAgg)>,
    cap: usize,
    seq: u64,
}

impl DeviceTable {
    fn new(cap: usize) -> DeviceTable {
        DeviceTable {
            map: HashMap::new(),
            cap: cap.max(1),
            seq: 0,
        }
    }

    /// Returns the (possibly fresh) row for `device`, bumping its
    /// recency and evicting the coldest row if the insert overflowed
    /// the cap.
    fn touch(&mut self, device: &str) -> &mut DeviceAgg {
        self.seq += 1;
        let seq = self.seq;
        if !self.map.contains_key(device) && self.map.len() >= self.cap {
            if let Some(coldest) = self
                .map
                .iter()
                .min_by_key(|(_, (touched, _))| *touched)
                .map(|(name, _)| name.clone())
            {
                self.map.remove(&coldest);
                rap_obs::counter!("admin_device_table_evictions_total").inc();
            }
        }
        let entry = self
            .map
            .entry(device.to_string())
            .or_insert_with(|| (seq, DeviceAgg::default()));
        entry.0 = seq;
        &mut entry.1
    }

    fn iter(&self) -> impl Iterator<Item = (&String, &DeviceAgg)> {
        self.map.iter().map(|(name, (_, agg))| (name, agg))
    }
}

/// The telemetry plane's shared state — exists only when
/// [`ServerConfig::admin_addr`] is set, so the disabled cost of the
/// whole plane is the `Option` check on [`Shared::telemetry`].
struct Telemetry {
    /// Trace-id mint + slow-round exemplar ring.
    rounds: RoundCollector,
    /// Per-device aggregates, updated once per drain tick (one lock
    /// acquisition per verdict batch, not per round). LRU-capped at
    /// [`ServerConfig::device_table_cap`].
    devices: Mutex<DeviceTable>,
}

impl Telemetry {
    fn new(config: &ServerConfig) -> Telemetry {
        let rounds = RoundCollector::new(
            config.slow_round_threshold.as_nanos() as u64,
            config.exemplar_capacity,
        );
        rounds.set_enabled(true);
        Telemetry {
            rounds,
            devices: Mutex::new(DeviceTable::new(config.device_table_cap)),
        }
    }
}

/// Everything the dispatcher and shard workers share.
struct Shared {
    config: ServerConfig,
    counters: Counters,
    shutdown: AtomicBool,
    resume: ResumeTable,
    token_seq: AtomicU64,
    /// The instant all span/round offsets are relative to.
    epoch: Instant,
    /// `Some` iff the admin endpoint is configured.
    telemetry: Option<Telemetry>,
    /// `Some` iff [`ServerConfig::audit_log`] is set. Shard workers
    /// append sealed records under this lock once per drain tick (one
    /// batched `write` per tick), so contention is per-tick, not
    /// per-round.
    audit: Option<Mutex<AuditLog>>,
}

/// Derives the resumption token for `(id, device)` under the server
/// secret. The mac binds both, so a token presented with a different
/// device name (or minted without the secret) fails validation.
fn mint_token(secret: &[u8], id: u64, device: &str) -> ResumeToken {
    let mut msg = secret.to_vec();
    msg.extend_from_slice(&id.to_le_bytes());
    msg.extend_from_slice(device.as_bytes());
    ResumeToken {
        id,
        mac: hmac_sha256(b"RAP-SERVE-RESUME", &msg),
    }
}

/// FNV-1a, the shard router. Stable across runs so a device always
/// lands on the same shard for a given thread count.
fn shard_of(device: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in device.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A running attestation server; dropping it without calling
/// [`Server::shutdown`] aborts the drain (threads are detached).
pub struct Server {
    local_addr: SocketAddr,
    admin_local: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    dispatch_handle: Option<std::thread::JoinHandle<()>>,
    admin_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    accept_queue: Arc<HandoffQueue<AcceptedConn>>,
    shard_queues: Vec<Arc<HandoffQueue<PendingConn>>>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port) and
    /// starts the accept loop, the dispatcher, and one worker per
    /// verifier shard, all verifying through clones of `verifier`.
    ///
    /// # Errors
    ///
    /// [`StartError::EmptySecret`] when
    /// [`ServerConfig::session_secret`] is empty;
    /// [`StartError::Io`] for bind failures.
    pub fn start(
        verifier: Verifier,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, StartError> {
        if config.session_secret.is_empty() {
            return Err(StartError::EmptySecret);
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let admin_listener = match &config.admin_addr {
            Some(admin_addr) => {
                let l = TcpListener::bind(admin_addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let admin_local = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shards = config.threads.max(1);
        let max_pending = config.max_pending;
        let telemetry = admin_listener.as_ref().map(|_| Telemetry::new(&config));
        let audit = match &config.audit_log {
            Some(path) => Some(Mutex::new(AuditLog::open(path).map_err(StartError::Audit)?)),
            None => None,
        };
        let shared = Arc::new(Shared {
            config,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            resume: Mutex::new(HashMap::new()),
            token_seq: AtomicU64::new(1),
            epoch: Instant::now(),
            telemetry,
            audit,
        });
        let accept_queue = Arc::new(HandoffQueue::new(max_pending));
        let shard_queues: Vec<Arc<HandoffQueue<PendingConn>>> = (0..shards)
            .map(|_| Arc::new(HandoffQueue::new(max_pending)))
            .collect();

        let worker_handles = shard_queues
            .iter()
            .map(|queue| {
                let queue = Arc::clone(queue);
                let shared = Arc::clone(&shared);
                let verifier = verifier.clone();
                std::thread::spawn(move || {
                    while let Some(pending) = queue.pop() {
                        rap_obs::gauge!("serve_shard_queue_depth").dec();
                        rap_obs::gauge!("serve_active_connections").inc();
                        serve_connection(&shared, &verifier, pending);
                        rap_obs::gauge!("serve_active_connections").dec();
                    }
                    // Scoped-thread rule from the fleet layer applies
                    // here too: flush the trace ring before join.
                    rap_obs::flush_thread();
                })
            })
            .collect();

        let dispatch_handle = {
            let accept_queue = Arc::clone(&accept_queue);
            let shard_queues = shard_queues.clone();
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                dispatch_loop(&accept_queue, &shard_queues, &shared);
                for q in &shard_queues {
                    q.close();
                }
                rap_obs::flush_thread();
            })
        };

        let accept_handle = {
            let accept_queue = Arc::clone(&accept_queue);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                accept_loop(listener, &accept_queue, &shared);
                accept_queue.close();
                // The accept loop records counters through per-thread
                // rings too — flush them like every other stage thread.
                rap_obs::flush_thread();
            })
        };

        let admin_handle = admin_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                admin_loop(listener, &shared);
                rap_obs::flush_thread();
            })
        });

        Ok(Server {
            local_addr,
            admin_local,
            shared,
            accept_handle: Some(accept_handle),
            dispatch_handle: Some(dispatch_handle),
            admin_handle,
            worker_handles,
            accept_queue,
            shard_queues,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound admin telemetry address, when
    /// [`ServerConfig::admin_addr`] was set (useful with port 0).
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_local
    }

    /// Stats so far (the server keeps running).
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// Graceful drain: stop accepting, let queued and in-flight rounds
    /// finish (bounded by the read deadline), join every thread, and
    /// return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
        self.shared.counters.snapshot()
    }

    /// Waits for the server to drain on its own — only meaningful with
    /// [`ServerConfig::conn_limit`], after which the accept loop exits
    /// and the queues close without an explicit [`Server::shutdown`].
    pub fn join(mut self) -> ServerStats {
        self.join_threads();
        self.shared.counters.snapshot()
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.accept_queue.close();
        if let Some(h) = self.dispatch_handle.take() {
            let _ = h.join();
        }
        for q in &self.shard_queues {
            q.close();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // The admin loop only exits on the shutdown flag; set it here
        // too so the conn-limit drain path (`join()` without
        // `shutdown()`) does not deadlock on the admin thread.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.admin_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, queue: &HandoffQueue<AcceptedConn>, shared: &Shared) {
    let config = &shared.config;
    let counters = &shared.counters;
    let mut next_conn_id = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(limit) = config.conn_limit {
            if next_conn_id >= limit {
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                let conn = AcceptedConn {
                    conn_id,
                    stream,
                    accepted_at: Instant::now(),
                    accept_depth: 0,
                };
                match queue.try_push(conn, |c, depth| c.accept_depth = depth as u32) {
                    Ok(()) => {
                        counters.accepted.fetch_add(1, Ordering::Relaxed);
                        rap_obs::counter!("serve_conns_accepted_total").inc();
                        rap_obs::gauge!("serve_accept_queue_depth").inc();
                    }
                    Err(AcceptedConn { mut stream, .. }) => {
                        // Shed, don't queue: an explicit busy error
                        // lets the client back off and retry.
                        counters.shed.fetch_add(1, Ordering::Relaxed);
                        rap_obs::counter!("serve_conns_shed_total").inc();
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                        send_error(
                            &mut stream,
                            counters,
                            ErrorCode::Busy,
                            "connection queue full",
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Reads each queued connection's opener (`HELLO` or `RESUME`),
/// validates resumption tokens, and routes the connection to its
/// device's shard.
fn dispatch_loop(
    accept_queue: &HandoffQueue<AcceptedConn>,
    shard_queues: &[Arc<HandoffQueue<PendingConn>>],
    shared: &Shared,
) {
    let config = &shared.config;
    let counters = &shared.counters;
    while let Some(conn) = accept_queue.pop() {
        rap_obs::gauge!("serve_accept_queue_depth").dec();
        let AcceptedConn {
            conn_id,
            mut stream,
            accepted_at,
            accept_depth,
        } = conn;
        let dispatch_started_at = Instant::now();
        if shared.shutdown.load(Ordering::SeqCst) {
            send_error(
                &mut stream,
                counters,
                ErrorCode::Draining,
                "server draining",
            );
            continue;
        }
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let frame = match read_frame(&mut stream, config.max_frame_len) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue, // closed before the opener
            Err(e) => {
                send_read_error(&mut stream, counters, &e);
                continue;
            }
        };
        rap_obs::counter!("serve_frames_rx_total").inc();
        let pending = match frame.frame_type {
            FrameType::Hello => match decode_hello(&frame.payload) {
                Ok((requested_window, device)) => PendingConn {
                    conn_id,
                    stream,
                    device,
                    requested_window,
                    restored: None,
                    accepted_at,
                    dispatch_started_at,
                    shard_enqueued_at: dispatch_started_at,
                    accept_depth,
                    shard_depth: 0,
                },
                Err(e) => {
                    send_error(&mut stream, counters, ErrorCode::Protocol, &e.to_string());
                    continue;
                }
            },
            FrameType::Resume => match decode_resume(&frame.payload) {
                Ok((token, requested_window, device)) => {
                    match take_resume_entry(shared, &token, &device) {
                        Ok(session) => {
                            counters.resumed.fetch_add(1, Ordering::Relaxed);
                            rap_obs::counter!("serve_sessions_resumed_total").inc();
                            if let Some(t) = &shared.telemetry {
                                t.devices.lock().unwrap().touch(&device).resumes += 1;
                            }
                            PendingConn {
                                conn_id,
                                stream,
                                device,
                                requested_window,
                                restored: Some(session),
                                accepted_at,
                                dispatch_started_at,
                                shard_enqueued_at: dispatch_started_at,
                                accept_depth,
                                shard_depth: 0,
                            }
                        }
                        Err(why) => {
                            counters.resume_rejected.fetch_add(1, Ordering::Relaxed);
                            rap_obs::counter!("serve_resume_rejected_total").inc();
                            send_error(&mut stream, counters, ErrorCode::ResumeRejected, why);
                            continue;
                        }
                    }
                }
                Err(e) => {
                    send_error(&mut stream, counters, ErrorCode::Protocol, &e.to_string());
                    continue;
                }
            },
            _ => {
                send_error(
                    &mut stream,
                    counters,
                    ErrorCode::Protocol,
                    "expected HELLO or RESUME",
                );
                continue;
            }
        };
        let shard = shard_of(&pending.device, shard_queues.len());
        let stamp = |p: &mut PendingConn, depth: usize| {
            p.shard_depth = depth as u32;
            p.shard_enqueued_at = Instant::now();
        };
        match shard_queues[shard].try_push(pending, stamp) {
            Ok(()) => rap_obs::gauge!("serve_shard_queue_depth").inc(),
            Err(mut refused) => {
                counters.shed.fetch_add(1, Ordering::Relaxed);
                rap_obs::counter!("serve_conns_shed_total").inc();
                send_error(
                    &mut refused.stream,
                    counters,
                    ErrorCode::Busy,
                    "verifier shard queue full",
                );
            }
        }
    }
}

/// Validates and consumes a resumption token. The mac check binds the
/// token to the device; the table remove makes it single-use; the TTL
/// bounds how long a parked session stays alive.
fn take_resume_entry(
    shared: &Shared,
    token: &ResumeToken,
    device: &str,
) -> Result<VerifierSession, &'static str> {
    let expected = mint_token(&shared.config.session_secret, token.id, device);
    if expected.mac != token.mac {
        return Err("token not valid for this device");
    }
    let entry = shared
        .resume
        .lock()
        .unwrap()
        .remove(&token.id)
        .ok_or("unknown or already-used token")?;
    if entry.device != device {
        return Err("token bound to a different device");
    }
    if entry.expires_at <= Instant::now() {
        return Err("token expired");
    }
    Ok(entry.session)
}

/// Parks a finished connection's session for resumption, purging
/// expired entries and respecting the capacity cap.
fn park_session(shared: &Shared, token_id: u64, device: String, mut session: VerifierSession) {
    // Unanswered challenges die with the connection; a resumed window
    // starts fresh (the nonce counter keeps advancing, so nothing is
    // ever re-issued).
    session.clear_outstanding();
    let now = Instant::now();
    let mut table = shared.resume.lock().unwrap();
    table.retain(|_, e| e.expires_at > now);
    if table.len() >= shared.config.resume_capacity.max(1) {
        return;
    }
    table.insert(
        token_id,
        ResumeEntry {
            session,
            device,
            expires_at: now + shared.config.resume_ttl,
        },
    );
}

/// One verified round awaiting its tick's flush: finalized (end-to-end
/// latency, device aggregate, exemplar) once the verdict batch has
/// actually reached the wire.
struct PendingRound {
    trace_id: u64,
    /// When the round's CHALLENGE was issued (the trace-id mint).
    issued_at: Instant,
    /// When the worker started replaying the evidence.
    replay_start: Instant,
    /// Replay duration in ns.
    replay_ns: u64,
    accepted: bool,
}

/// Per-tick observability and counter deltas, committed once per
/// drain tick instead of once per round.
#[derive(Default)]
struct TickTally {
    frames_rx: u64,
    frames_tx: u64,
    accepted: u64,
    rejected: u64,
    latencies_ns: Vec<u64>,
    /// Rounds verified this tick, pending flush finalization. Taken
    /// (`std::mem::take`) *before* [`TickTally::commit`] resets the
    /// tally — only populated when the telemetry plane is on.
    rounds: Vec<PendingRound>,
    /// Sealed records awaiting their batched audit append — only
    /// populated when [`ServerConfig::audit_log`] is set.
    records: Vec<VerdictRecord>,
}

impl TickTally {
    fn commit(&mut self, counters: &Counters) {
        if self.frames_rx > 0 {
            rap_obs::counter!("serve_frames_rx_total").add(self.frames_rx);
        }
        if self.frames_tx > 0 {
            rap_obs::counter!("serve_frames_tx_total").add(self.frames_tx);
        }
        if self.accepted > 0 {
            counters
                .verdicts_accepted
                .fetch_add(self.accepted, Ordering::Relaxed);
            rap_obs::counter!("serve_verdicts_accepted_total").add(self.accepted);
        }
        if self.rejected > 0 {
            counters
                .verdicts_rejected
                .fetch_add(self.rejected, Ordering::Relaxed);
            rap_obs::counter!("serve_verdicts_rejected_total").add(self.rejected);
        }
        // Replay latencies live in the µs–ms band on loopback; the
        // round-scale bucket ladder keeps the bucket-derived quantiles
        // meaningful there (the decade layout collapsed the band).
        let h = rap_obs::histogram!("serve_verify_latency_ns", &rap_obs::ROUND_LATENCY_NS_BOUNDS);
        for ns in self.latencies_ns.drain(..) {
            h.observe(ns);
        }
        *self = TickTally::default();
    }
}

/// A growable receive buffer that yields complete frames and refills
/// with one `read` syscall per drain tick.
struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

const FILL_CHUNK: usize = 64 * 1024;

impl FrameBuf {
    fn new() -> FrameBuf {
        FrameBuf {
            buf: Vec::with_capacity(FILL_CHUNK),
            start: 0,
        }
    }

    /// Decodes the next complete frame from the buffer; `Ok(None)`
    /// means more bytes are needed.
    fn next_frame(&mut self, max_len: u32) -> Result<Option<Frame>, FrameError> {
        match decode_frame(&self.buf[self.start..], max_len) {
            Ok((frame, used)) => {
                self.start += used;
                Ok(Some(frame))
            }
            Err(FrameError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// One blocking read into the buffer tail; compacts first so the
    /// buffer does not grow with consumed frames.
    fn fill(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let old = self.buf.len();
        self.buf.resize(old + FILL_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }
}

/// Nanoseconds from `epoch` to `t` (0 when `t` precedes the epoch).
fn rel_ns(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_nanos() as u64
}

/// Per-connection telemetry context: the connection-level stage spans
/// (accept wait, dispatch, shard-queue wait) every round of this
/// connection shares, plus the queue depths observed at enqueue time.
/// Built once per connection, only when the telemetry plane is on.
struct ConnObs<'a> {
    telemetry: &'a Telemetry,
    epoch: Instant,
    device: String,
    accept_start_ns: u64,
    accept_dur_ns: u64,
    dispatch_start_ns: u64,
    dispatch_dur_ns: u64,
    shardq_start_ns: u64,
    shardq_dur_ns: u64,
    accept_depth: u32,
    shard_depth: u32,
}

fn serve_connection(shared: &Shared, verifier: &Verifier, pending: PendingConn) {
    let replay_picked_at = Instant::now();
    let PendingConn {
        conn_id,
        mut stream,
        device,
        requested_window,
        restored,
        accepted_at,
        dispatch_started_at,
        shard_enqueued_at,
        accept_depth,
        shard_depth,
    } = pending;
    let config = &shared.config;
    let counters = &shared.counters;

    let obs = shared.telemetry.as_ref().map(|telemetry| ConnObs {
        telemetry,
        epoch: shared.epoch,
        device: device.clone(),
        accept_start_ns: rel_ns(shared.epoch, accepted_at),
        accept_dur_ns: dispatch_started_at
            .saturating_duration_since(accepted_at)
            .as_nanos() as u64,
        dispatch_start_ns: rel_ns(shared.epoch, dispatch_started_at),
        dispatch_dur_ns: shard_enqueued_at
            .saturating_duration_since(dispatch_started_at)
            .as_nanos() as u64,
        shardq_start_ns: rel_ns(shared.epoch, shard_enqueued_at),
        shardq_dur_ns: replay_picked_at
            .saturating_duration_since(shard_enqueued_at)
            .as_nanos() as u64,
        accept_depth,
        shard_depth,
    });

    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);

    if shared.shutdown.load(Ordering::SeqCst) {
        send_error(
            &mut stream,
            counters,
            ErrorCode::Draining,
            "server draining",
        );
        return;
    }

    let resumed = restored.is_some();
    let mut session = restored.unwrap_or_else(|| {
        // Per-connection secret: server secret ‖ connection id, so
        // nonces are unique across connections by construction.
        let mut secret = config.session_secret.clone();
        secret.extend_from_slice(&conn_id.to_le_bytes());
        VerifierSession::from_verifier(verifier.clone(), &secret)
    });
    if resumed {
        session.clear_outstanding();
    }
    let window = requested_window.clamp(1, config.window.max(1));

    // Mint this connection's own resumption token — tokens rotate on
    // every handshake, resumed or not.
    let token_id = shared.token_seq.fetch_add(1, Ordering::Relaxed);
    let token = mint_token(&config.session_secret, token_id, &device);

    // Handshake reply: the SESSION grant plus the initial challenge
    // window, flushed as one write.
    let mut outbuf = encode_frame(
        FrameType::Session,
        &encode_session(&SessionGrant { token, window }),
    );
    // Round trace ids are minted at CHALLENGE issue; `issued` mirrors
    // the session's FIFO challenge queue (an ATTEST — even a garbage
    // one — consumes the front challenge, so front-pop stays aligned).
    let mut issued: VecDeque<(u64, Instant)> = VecDeque::new();
    for _ in 0..window {
        let chal = session.issue_windowed_challenge();
        outbuf.extend_from_slice(&encode_frame(FrameType::Challenge, &chal.0));
        if let Some(obs) = &obs {
            issued.push_back((obs.telemetry.rounds.mint(), Instant::now()));
        }
    }
    if stream
        .write_all(&outbuf)
        .and_then(|()| stream.flush())
        .is_err()
    {
        return;
    }
    rap_obs::counter!("serve_frames_tx_total").add(1 + u64::from(window));
    outbuf.clear();

    let mut inbuf = FrameBuf::new();
    let mut tick = TickTally::default();
    loop {
        // Drain tick: verify every complete frame already buffered,
        // accumulating verdicts + replacement challenges in `outbuf`
        // and observability deltas in `tick`.
        loop {
            match inbuf.next_frame(config.max_frame_len) {
                Ok(None) => break,
                Ok(Some(frame)) if frame.frame_type == FrameType::Attest => {
                    tick.frames_rx += 1;
                    if session.outstanding_count() == 0 {
                        // The client wrote past its granted window.
                        flush_tick(
                            &mut stream,
                            &mut outbuf,
                            &mut tick,
                            counters,
                            obs.as_ref(),
                            shared.audit.as_ref(),
                        );
                        send_error(
                            &mut stream,
                            counters,
                            ErrorCode::Protocol,
                            "attest with no outstanding challenge (window overrun)",
                        );
                        return;
                    }
                    let started = Instant::now();
                    let record = verify_one(&mut session, &device, &frame.payload);
                    let replay_ns = started.elapsed().as_nanos() as u64;
                    tick.latencies_ns.push(replay_ns);
                    let accepted = record.accepted();
                    if accepted {
                        tick.accepted += 1;
                    } else {
                        tick.rejected += 1;
                    }
                    #[allow(deprecated)]
                    if let Some(hook) = &config.verdict_hook {
                        (hook.0)(&device, accepted);
                    }
                    if let Some(hook) = &config.round_hook {
                        (hook.0)(&RoundEvent::Verdict {
                            device: device.clone(),
                            record: record.clone(),
                        });
                    }
                    let verdict = Verdict::from_record(&record);
                    if shared.audit.is_some() {
                        tick.records.push(record);
                    }
                    outbuf.extend_from_slice(&encode_frame(FrameType::Verdict, &verdict.encode()));
                    let chal = session.issue_windowed_challenge();
                    outbuf.extend_from_slice(&encode_frame(FrameType::Challenge, &chal.0));
                    tick.frames_tx += 2;
                    if let Some(obs) = &obs {
                        // This ATTEST consumed the front challenge; its
                        // replacement challenge starts the next round.
                        let (trace_id, issued_at) = issued.pop_front().unwrap_or((0, started));
                        tick.rounds.push(PendingRound {
                            trace_id,
                            issued_at,
                            replay_start: started,
                            replay_ns,
                            accepted,
                        });
                        issued.push_back((obs.telemetry.rounds.mint(), Instant::now()));
                    }
                }
                Ok(Some(_)) => {
                    flush_tick(
                        &mut stream,
                        &mut outbuf,
                        &mut tick,
                        counters,
                        obs.as_ref(),
                        shared.audit.as_ref(),
                    );
                    send_error(
                        &mut stream,
                        counters,
                        ErrorCode::Protocol,
                        "expected ATTEST",
                    );
                    return;
                }
                Err(e) => {
                    flush_tick(
                        &mut stream,
                        &mut outbuf,
                        &mut tick,
                        counters,
                        obs.as_ref(),
                        shared.audit.as_ref(),
                    );
                    let code = match e {
                        FrameError::Oversized { .. } => ErrorCode::Oversized,
                        _ => ErrorCode::Protocol,
                    };
                    send_error(&mut stream, counters, code, &e.to_string());
                    return;
                }
            }
        }
        if !flush_tick(
            &mut stream,
            &mut outbuf,
            &mut tick,
            counters,
            obs.as_ref(),
            shared.audit.as_ref(),
        ) {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            send_error(
                &mut stream,
                counters,
                ErrorCode::Draining,
                "server draining",
            );
            return;
        }
        match inbuf.fill(&mut stream) {
            // Clean close between frames: park the session so the
            // device can resume its nonce chain.
            Ok(0) => {
                park_session(shared, token_id, device, session);
                return;
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    send_error(
                        &mut stream,
                        counters,
                        ErrorCode::Draining,
                        "server draining",
                    );
                } else {
                    send_error(
                        &mut stream,
                        counters,
                        ErrorCode::Timeout,
                        "read deadline expired",
                    );
                }
                return;
            }
            // An abrupt close (unread challenges force a reset) still
            // parks the session — the device likely wants to resume.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                park_session(shared, token_id, device, session);
                return;
            }
            Err(_) => return,
        }
    }
}

/// Verifies one ATTEST payload, sealing the outcome as a
/// proof-carrying [`VerdictRecord`] (the wire `VERDICT` frame is
/// derived from it via [`Verdict::from_record`]).
fn verify_one(session: &mut VerifierSession, device: &str, payload: &[u8]) -> VerdictRecord {
    match decode_stream(payload) {
        Err(wire) => {
            // A malformed stream still consumes the front challenge —
            // a device does not get a second try against a nonce by
            // sending garbage first. The sealed record binds the nonce
            // it burned and a hash of the raw payload.
            let chal = session.outstanding();
            let _ = session.check_response(&[]);
            let stats = session.verifier().stats();
            session.verifier().seal_verdict(VerdictDraft {
                device: device.to_string(),
                chal: chal.unwrap_or(Challenge([0u8; 32])),
                report_hash: sha256(payload),
                stats_digest: stats_digest(&stats),
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
                kind: "wire".to_string(),
                detail: wire.to_string(),
                seq: session.responses_checked(),
                ..VerdictDraft::default()
            })
        }
        Ok(reports) => session.check_response_record(device, &reports).0,
    }
}

/// Commits the tick's observability deltas and flushes the batched
/// verdict/challenge frames in one write. Returns `false` when the
/// write failed (the connection is gone).
///
/// With the telemetry plane on, the tick's verified rounds are
/// finalized *after* the write lands: a round's end-to-end latency
/// runs challenge issue → verdict on the wire, so the flush itself is
/// the last span of every round in the batch.
fn flush_tick(
    stream: &mut TcpStream,
    outbuf: &mut Vec<u8>,
    tick: &mut TickTally,
    counters: &Counters,
    obs: Option<&ConnObs<'_>>,
    audit: Option<&Mutex<AuditLog>>,
) -> bool {
    // Audit first: the batch lands in the chained log before the
    // verdicts reach the wire, so the log is never *behind* what a
    // client has seen. One lock + one write for the whole tick.
    if let Some(audit) = audit {
        let records = std::mem::take(&mut tick.records);
        if !records.is_empty() {
            let appended = records.len() as u64;
            let mut log = audit.lock().unwrap();
            for record in &records {
                log.append_record(record);
            }
            if log.flush().is_ok() {
                rap_obs::counter!("serve_audit_records_total").add(appended);
            } else {
                rap_obs::counter!("serve_audit_append_errors_total").add(appended);
            }
        }
    }
    // Taken before commit — commit resets the whole tally.
    let rounds = std::mem::take(&mut tick.rounds);
    tick.commit(counters);
    let finalize = match obs {
        Some(o) if !rounds.is_empty() => Some((o, Instant::now())),
        _ => None,
    };
    if !outbuf.is_empty() {
        let ok = stream
            .write_all(outbuf)
            .and_then(|()| stream.flush())
            .is_ok();
        outbuf.clear();
        if !ok {
            // The rounds in this batch never reached the wire; their
            // verdicts are lost with the connection, so no exemplars.
            return false;
        }
    }
    if let Some((o, flush_start)) = finalize {
        finalize_rounds(o, flush_start, &rounds);
    }
    true
}

/// Post-flush round finalization: observe end-to-end latencies, update
/// the device aggregate row (one lock for the whole batch), and offer
/// each round to the slow-round exemplar ring with its five-stage span
/// tree.
fn finalize_rounds(obs: &ConnObs<'_>, flush_start: Instant, rounds: &[PendingRound]) {
    let flush_end = Instant::now();
    let flush_start_ns = rel_ns(obs.epoch, flush_start);
    let flush_dur_ns = flush_end.saturating_duration_since(flush_start).as_nanos() as u64;
    let total_of = |r: &PendingRound| -> u64 {
        flush_end.saturating_duration_since(r.issued_at).as_nanos() as u64
    };
    let hist = rap_obs::histogram!("serve_round_latency_ns", &rap_obs::ROUND_LATENCY_NS_BOUNDS);
    {
        let mut devices = obs.telemetry.devices.lock().unwrap();
        let agg = devices.touch(&obs.device);
        for r in rounds {
            agg.rounds += 1;
            if !r.accepted {
                agg.rejects += 1;
            }
            agg.observe(total_of(r));
        }
        agg.last_seen_ns = rel_ns(obs.epoch, flush_end);
    }
    for r in rounds {
        let total_ns = total_of(r);
        hist.observe(total_ns);
        obs.telemetry.rounds.record(total_ns, || RoundExemplar {
            trace_id: r.trace_id,
            device: obs.device.clone(),
            total_ns,
            accepted: r.accepted,
            accept_depth: obs.accept_depth,
            shard_depth: obs.shard_depth,
            spans: vec![
                StageSpan {
                    trace_id: r.trace_id,
                    stage: "accept",
                    start_ns: obs.accept_start_ns,
                    dur_ns: obs.accept_dur_ns,
                },
                StageSpan {
                    trace_id: r.trace_id,
                    stage: "dispatch",
                    start_ns: obs.dispatch_start_ns,
                    dur_ns: obs.dispatch_dur_ns,
                },
                StageSpan {
                    trace_id: r.trace_id,
                    stage: "shard_queue",
                    start_ns: obs.shardq_start_ns,
                    dur_ns: obs.shardq_dur_ns,
                },
                StageSpan {
                    trace_id: r.trace_id,
                    stage: "replay",
                    start_ns: rel_ns(obs.epoch, r.replay_start),
                    dur_ns: r.replay_ns,
                },
                StageSpan {
                    trace_id: r.trace_id,
                    stage: "flush",
                    start_ns: flush_start_ns,
                    dur_ns: flush_dur_ns,
                },
            ],
        });
    }
}

/// Payload cap for admin requests — both request types are tiny, so a
/// malformed or hostile scraper cannot make the admin thread allocate.
const ADMIN_MAX_FRAME_LEN: u32 = 4096;

/// Idle deadline per admin read: the single admin thread serves
/// scrapers sequentially, so a scraper that connects and goes silent
/// is dropped after one second to let the next one in (`rap top`
/// reconnects on every poll anyway).
const ADMIN_READ_TIMEOUT: Duration = Duration::from_secs(1);

/// The admin accept loop: same nonblocking 2 ms poll as the main
/// accept loop, serving one scraper connection at a time.
fn admin_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => serve_admin_conn(shared, stream),
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Answers `STATS`/`EXEMPLARS` requests on one admin connection until
/// the peer closes, goes idle past [`ADMIN_READ_TIMEOUT`], or sends
/// anything else (answered with a `Protocol` error).
fn serve_admin_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(ADMIN_READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut stream, ADMIN_MAX_FRAME_LEN) {
            Ok(Some(frame)) => frame,
            // Clean close, idle timeout, or garbage: drop the scraper
            // and serve the next one.
            Ok(None) | Err(_) => return,
        };
        let reply = match frame.frame_type {
            FrameType::Stats => match decode_stats_request(&frame.payload) {
                Ok(StatsFormat::Prometheus) => {
                    rap_obs::global().snapshot().to_prometheus().into_bytes()
                }
                Ok(StatsFormat::Json) => telemetry_json(shared).to_compact().into_bytes(),
                Err(e) => {
                    send_error(
                        &mut stream,
                        &shared.counters,
                        ErrorCode::Protocol,
                        &e.to_string(),
                    );
                    return;
                }
            },
            FrameType::Exemplars => exemplars_json(shared).to_compact().into_bytes(),
            _ => {
                send_error(
                    &mut stream,
                    &shared.counters,
                    ErrorCode::Protocol,
                    "expected STATS or EXEMPLARS",
                );
                return;
            }
        };
        if write_frame(&mut stream, frame.frame_type, &reply).is_err() {
            return;
        }
        rap_obs::counter!("serve_admin_scrapes_total").inc();
    }
}

/// The `STATS` (JSON format) response: uptime, the server's own
/// counters, the full metrics snapshot (same source as the Prometheus
/// rendering, so the two renderings agree on any quiesced counter),
/// and the per-device aggregate table, name-sorted.
fn telemetry_json(shared: &Shared) -> Json {
    let stats = shared.counters.snapshot();
    let snap = rap_obs::global().snapshot();
    let devices = match &shared.telemetry {
        Some(t) => {
            let table = t.devices.lock().unwrap();
            let mut rows: Vec<(&String, &DeviceAgg)> = table.iter().collect();
            rows.sort_by_key(|(name, _)| *name);
            Json::Obj(
                rows.into_iter()
                    .map(|(name, agg)| {
                        (
                            name.clone(),
                            Json::obj([
                                ("rounds", Json::Uint(agg.rounds)),
                                ("rejects", Json::Uint(agg.rejects)),
                                ("resumes", Json::Uint(agg.resumes)),
                                ("last_seen_ns", Json::Uint(agg.last_seen_ns)),
                                ("p99_ns", Json::Uint(agg.p99_ns())),
                            ]),
                        )
                    })
                    .collect(),
            )
        }
        None => Json::Obj(Vec::new()),
    };
    let mut extra = match &shared.config.admin_extra {
        Some(provider) => (provider.0)(),
        None => Vec::new(),
    };
    let mut out = Json::obj([
        (
            "uptime_ns",
            Json::Uint(shared.epoch.elapsed().as_nanos() as u64),
        ),
        (
            "server",
            Json::obj([
                ("accepted", Json::Uint(stats.accepted)),
                ("shed", Json::Uint(stats.shed)),
                ("resumed", Json::Uint(stats.resumed)),
                ("resume_rejected", Json::Uint(stats.resume_rejected)),
                ("verdicts_accepted", Json::Uint(stats.verdicts_accepted)),
                ("verdicts_rejected", Json::Uint(stats.verdicts_rejected)),
                ("errors_sent", Json::Uint(stats.errors_sent)),
                ("error_send_failed", Json::Uint(stats.error_send_failed)),
            ]),
        ),
        ("metrics", snap.to_json()),
        ("devices", devices),
    ]);
    if !extra.is_empty() {
        if let Json::Obj(fields) = &mut out {
            fields.append(&mut extra);
        }
    }
    out
}

/// The `EXEMPLARS` response: the slow-round ring as JSON.
fn exemplars_json(shared: &Shared) -> Json {
    match &shared.telemetry {
        Some(t) => t.rounds.to_json(),
        None => Json::Obj(Vec::new()),
    }
}

/// Sends one `ERROR` frame, counting it in `errors_sent` only when the
/// write actually flushed; failures (the peer is already gone) are
/// counted separately in `error_send_failed`.
fn send_error(w: &mut impl Write, counters: &Counters, code: ErrorCode, msg: &str) {
    let bytes = encode_frame(FrameType::Error, &encode_error(code, msg));
    match w.write_all(&bytes).and_then(|()| w.flush()) {
        Ok(()) => {
            counters.errors_sent.fetch_add(1, Ordering::Relaxed);
            rap_obs::counter!("serve_errors_tx_total").inc();
        }
        Err(_) => {
            counters.error_send_failed.fetch_add(1, Ordering::Relaxed);
            rap_obs::counter!("serve_errors_tx_failed_total").inc();
        }
    }
}

fn send_read_error(stream: &mut TcpStream, counters: &Counters, err: &ReadFrameError) {
    let (code, msg) = match err {
        ReadFrameError::Frame(FrameError::Oversized { .. }) => {
            (ErrorCode::Oversized, err.to_string())
        }
        ReadFrameError::Frame(_) => (ErrorCode::Protocol, err.to_string()),
        ReadFrameError::Io(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            (ErrorCode::Timeout, "read deadline expired".to_string())
        }
        ReadFrameError::Io(_) => (ErrorCode::Internal, err.to_string()),
    };
    send_error(stream, counters, code, &msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink whose writes always fail — exercises the send_error
    /// accounting deterministically, without a socket.
    struct BrokenPipe;

    impl Write for BrokenPipe {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "peer gone",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_error_counts_only_flushed_frames() {
        let counters = Counters::default();
        let mut ok_sink = Vec::new();
        send_error(&mut ok_sink, &counters, ErrorCode::Busy, "later");
        assert_eq!(counters.errors_sent.load(Ordering::Relaxed), 1);
        assert_eq!(counters.error_send_failed.load(Ordering::Relaxed), 0);
        assert!(!ok_sink.is_empty(), "the frame reached the sink");

        send_error(&mut BrokenPipe, &counters, ErrorCode::Busy, "later");
        assert_eq!(
            counters.errors_sent.load(Ordering::Relaxed),
            1,
            "a failed write must not count as sent"
        );
        assert_eq!(counters.error_send_failed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn resume_token_macs_bind_id_and_device() {
        let t = mint_token(b"secret", 7, "device-a");
        assert_eq!(t, mint_token(b"secret", 7, "device-a"));
        assert_ne!(t.mac, mint_token(b"secret", 8, "device-a").mac);
        assert_ne!(t.mac, mint_token(b"secret", 7, "device-b").mac);
        assert_ne!(t.mac, mint_token(b"other", 7, "device-a").mac);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in 1..=8usize {
            for device in ["a", "device-1", "device-2", "αβγ"] {
                let s = shard_of(device, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(device, shards));
            }
        }
    }

    #[test]
    fn empty_secret_is_rejected_before_binding() {
        // ServerConfig::default() deliberately ships no secret; the
        // typed error fires before any socket work. A full Verifier is
        // not needed to hit the check, but start() takes one — so this
        // lives here with a minimal image via the test-only helper in
        // loopback tests; instead we just assert on the config shape.
        assert!(ServerConfig::default().session_secret.is_empty());
    }

    #[test]
    fn frame_buf_yields_frames_across_split_reads() {
        let mut fb = FrameBuf::new();
        let a = encode_frame(FrameType::Attest, &[1, 2, 3]);
        let b = encode_frame(FrameType::Attest, &[4; 100]);
        let mut stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        // Feed in two arbitrary halves through the Read impl.
        let half = stream.split_off(a.len() + 3);
        let mut r1: &[u8] = &stream;
        fb.fill(&mut r1).unwrap();
        let f1 = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(f1.payload, vec![1, 2, 3]);
        assert!(fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().is_none());
        let mut r2: &[u8] = &half;
        fb.fill(&mut r2).unwrap();
        let f2 = fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(f2.payload, vec![4; 100]);
        assert!(fb.next_frame(DEFAULT_MAX_FRAME_LEN).unwrap().is_none());
    }
}
