//! The attestation server: a bounded accept loop feeding a worker pool
//! that drives one [`VerifierSession`] per connection.
//!
//! All workers clone one [`Verifier`], so every connection shares the
//! two-level replay cache — a fleet of devices running the same binary
//! decodes each deterministic stretch once, no matter which connection
//! saw it first. Session state (nonces, used-challenge set) stays
//! strictly per-connection: each session is seeded with the server
//! secret *plus a unique connection id*, so a nonce can never repeat
//! across connections.
//!
//! Overload is shed, not queued: when `max_pending` connections are
//! already waiting, the accept loop answers `ERROR busy` and closes
//! instead of growing an unbounded backlog. Shutdown drains: the
//! listener stops accepting, queued and in-flight rounds finish
//! (bounded by the per-connection read deadline), and every worker
//! flushes its `rap-obs` trace ring before joining.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rap_track::{decode_stream, SessionError, Verifier, VerifierSession};

use crate::frame::{
    encode_error, read_frame, write_frame, ErrorCode, FrameType, ReadFrameError, Verdict,
    DEFAULT_MAX_FRAME_LEN,
};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each handles one connection at a time).
    pub threads: usize,
    /// Connections that may wait for a worker before new arrivals are
    /// shed with `ERROR busy`.
    pub max_pending: usize,
    /// Payload-size cap applied before any allocation.
    pub max_frame_len: u32,
    /// Per-connection read deadline; also bounds how long a drain can
    /// wait on an in-flight round.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Seed for per-connection nonce derivation (a deployment uses an
    /// OS RNG; determinism keeps tests reproducible).
    pub session_secret: Vec<u8>,
    /// When set, stop accepting and drain after this many connections
    /// have been accepted — lets scripts run a bounded smoke test
    /// without signal handling.
    pub conn_limit: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 4,
            max_pending: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            session_secret: b"rap-serve-session".to_vec(),
            conn_limit: None,
        }
    }
}

/// Counters reported by [`Server::shutdown`]/[`Server::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handed to a worker.
    pub accepted: u64,
    /// Connections shed with `ERROR busy`.
    pub shed: u64,
    /// Rounds whose evidence verified.
    pub verdicts_accepted: u64,
    /// Rounds whose evidence was rejected (wire or session failure).
    pub verdicts_rejected: u64,
    /// `Error` frames sent (busy, timeout, protocol, draining …).
    pub errors_sent: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    verdicts_accepted: AtomicU64,
    verdicts_rejected: AtomicU64,
    errors_sent: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            verdicts_accepted: self.verdicts_accepted.load(Ordering::Relaxed),
            verdicts_rejected: self.verdicts_rejected.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
        }
    }
}

/// Bounded handoff between the accept loop and the workers.
/// `try_push` refuses instead of blocking — that refusal is the load
/// shed. `pop` blocks until a connection arrives or the queue closes.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    items: VecDeque<(u64, TcpStream)>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Returns the item on refusal (queue full or closed) so the
    /// caller can still talk to the connection it failed to enqueue.
    fn try_push(&self, item: (u64, TcpStream)) -> Result<(), (u64, TcpStream)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.items.len() >= self.cap {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<(u64, TcpStream)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// A running attestation server; dropping it without calling
/// [`Server::shutdown`] aborts the drain (threads are detached).
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    queue: Arc<ConnQueue>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port) and
    /// starts the accept loop plus `config.threads` workers, all
    /// verifying through clones of `verifier`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(
        verifier: Verifier,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let queue = Arc::new(ConnQueue::new(config.max_pending));
        let config = Arc::new(config);

        let worker_handles = (0..config.threads.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let config = Arc::clone(&config);
                let verifier = verifier.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    while let Some((conn_id, stream)) = queue.pop() {
                        rap_obs::gauge!("serve_active_connections").inc();
                        serve_connection(conn_id, stream, &verifier, &config, &counters, &shutdown);
                        rap_obs::gauge!("serve_active_connections").dec();
                    }
                    // Scoped-thread rule from the fleet layer applies
                    // here too: flush the trace ring before join.
                    rap_obs::flush_thread();
                })
            })
            .collect();

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let config = Arc::clone(&config);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                accept_loop(listener, &queue, &counters, &config, &shutdown);
                queue.close();
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            counters,
            accept_handle: Some(accept_handle),
            worker_handles,
            queue,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stats so far (the server keeps running).
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Graceful drain: stop accepting, let queued and in-flight rounds
    /// finish (bounded by the read deadline), join every thread, and
    /// return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
        self.counters.snapshot()
    }

    /// Waits for the server to drain on its own — only meaningful with
    /// [`ServerConfig::conn_limit`], after which the accept loop exits
    /// and the queue closes without an explicit [`Server::shutdown`].
    pub fn join(mut self) -> ServerStats {
        self.join_threads();
        self.counters.snapshot()
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: &ConnQueue,
    counters: &Counters,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let mut next_conn_id = 0u64;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(limit) = config.conn_limit {
            if next_conn_id >= limit {
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn_id;
                next_conn_id += 1;
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                match queue.try_push((conn_id, stream)) {
                    Ok(()) => {
                        counters.accepted.fetch_add(1, Ordering::Relaxed);
                        rap_obs::counter!("serve_conns_accepted_total").inc();
                    }
                    Err((_, mut stream)) => {
                        // Shed, don't queue: an explicit busy error
                        // lets the client back off and retry.
                        counters.shed.fetch_add(1, Ordering::Relaxed);
                        rap_obs::counter!("serve_conns_shed_total").inc();
                        counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                        rap_obs::counter!("serve_errors_tx_total").inc();
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                        let _ = write_frame(
                            &mut stream,
                            FrameType::Error,
                            &encode_error(ErrorCode::Busy, "connection queue full"),
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn serve_connection(
    conn_id: u64,
    mut stream: TcpStream,
    verifier: &Verifier,
    config: &ServerConfig,
    counters: &Counters,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);

    // Per-connection secret: server secret ⊕ connection id, so nonces
    // are unique across connections by construction.
    let mut secret = config.session_secret.clone();
    secret.extend_from_slice(&conn_id.to_le_bytes());
    let mut session = VerifierSession::from_verifier(verifier.clone(), &secret);

    // The opener must be HELLO.
    match read_frame(&mut stream, config.max_frame_len) {
        Ok(Some(frame)) if frame.frame_type == FrameType::Hello => {
            rap_obs::counter!("serve_frames_rx_total").inc();
            if std::str::from_utf8(&frame.payload).is_err() {
                send_error(
                    &mut stream,
                    counters,
                    ErrorCode::Protocol,
                    "hello not UTF-8",
                );
                return;
            }
        }
        Ok(Some(_)) => {
            send_error(&mut stream, counters, ErrorCode::Protocol, "expected HELLO");
            return;
        }
        Ok(None) => return,
        Err(e) => {
            send_read_error(&mut stream, counters, &e);
            return;
        }
    }

    loop {
        if shutdown.load(Ordering::SeqCst) {
            send_error(
                &mut stream,
                counters,
                ErrorCode::Draining,
                "server draining",
            );
            return;
        }

        let chal = session.issue_challenge();
        if write_frame(&mut stream, FrameType::Challenge, &chal.0).is_err() {
            return;
        }
        rap_obs::counter!("serve_frames_tx_total").inc();

        let frame = match read_frame(&mut stream, config.max_frame_len) {
            Ok(Some(frame)) if frame.frame_type == FrameType::Attest => frame,
            Ok(Some(_)) => {
                send_error(
                    &mut stream,
                    counters,
                    ErrorCode::Protocol,
                    "expected ATTEST",
                );
                return;
            }
            Ok(None) => return, // client closed between rounds
            Err(e) => {
                send_read_error(&mut stream, counters, &e);
                return;
            }
        };
        rap_obs::counter!("serve_frames_rx_total").inc();

        let started = Instant::now();
        let verdict = match decode_stream(&frame.payload) {
            Err(wire) => Verdict {
                accepted: false,
                events: 0,
                steps: 0,
                detail: format!("wire: {wire}"),
            },
            Ok(reports) => match session.check_response(&reports) {
                Ok(path) => Verdict {
                    accepted: true,
                    events: path.events.len() as u32,
                    steps: path.steps,
                    detail: String::new(),
                },
                Err(SessionError::Verification(v)) => Verdict {
                    accepted: false,
                    events: 0,
                    steps: 0,
                    detail: format!("violation: {v}"),
                },
                Err(e) => Verdict {
                    accepted: false,
                    events: 0,
                    steps: 0,
                    detail: format!("session: {e}"),
                },
            },
        };
        rap_obs::histogram!("serve_verify_latency_ns", &rap_obs::LATENCY_NS_BOUNDS)
            .observe(started.elapsed().as_nanos() as u64);
        if verdict.accepted {
            counters.verdicts_accepted.fetch_add(1, Ordering::Relaxed);
            rap_obs::counter!("serve_verdicts_accepted_total").inc();
        } else {
            counters.verdicts_rejected.fetch_add(1, Ordering::Relaxed);
            rap_obs::counter!("serve_verdicts_rejected_total").inc();
        }

        if write_frame(&mut stream, FrameType::Verdict, &verdict.encode()).is_err() {
            return;
        }
        rap_obs::counter!("serve_frames_tx_total").inc();
    }
}

fn send_error(stream: &mut TcpStream, counters: &Counters, code: ErrorCode, msg: &str) {
    counters.errors_sent.fetch_add(1, Ordering::Relaxed);
    rap_obs::counter!("serve_errors_tx_total").inc();
    let _ = write_frame(stream, FrameType::Error, &encode_error(code, msg));
    let _ = stream.flush();
}

fn send_read_error(stream: &mut TcpStream, counters: &Counters, err: &ReadFrameError) {
    let (code, msg) = match err {
        ReadFrameError::Frame(crate::frame::FrameError::Oversized { .. }) => {
            (ErrorCode::Oversized, err.to_string())
        }
        ReadFrameError::Frame(_) => (ErrorCode::Protocol, err.to_string()),
        ReadFrameError::Io(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            (ErrorCode::Timeout, "read deadline expired".to_string())
        }
        ReadFrameError::Io(_) => (ErrorCode::Internal, err.to_string()),
    };
    send_error(stream, counters, code, &msg);
}
