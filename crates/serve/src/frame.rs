//! The service frame protocol: length-prefixed frames carrying the
//! challenge–response messages between [`AttestClient`] and the
//! server.
//!
//! Every frame starts with a 10-byte little-endian header:
//!
//! ```text
//! magic  "RAPS"        4 bytes
//! ver    u8 = 2        1
//! type   u8            1       Hello | Challenge | Attest | Verdict | Error | Resume | Session
//! len    u32           4       payload length in bytes
//! ```
//!
//! followed by `len` payload bytes. Payloads:
//!
//! | frame       | direction | payload                                              |
//! |-------------|-----------|------------------------------------------------------|
//! | `Hello`     | C → S     | requested window `u16`, device name UTF-8            |
//! | `Resume`    | C → S     | token id `u64`, mac `[u8;32]`, window `u16`, device  |
//! | `Session`   | S → C     | token id `u64`, mac `[u8;32]`, granted window `u16`  |
//! | `Challenge` | S → C     | 32-byte nonce                                        |
//! | `Attest`    | C → S     | a [`rap_track::encode_stream`] report stream         |
//! | `Verdict`   | S → C     | accepted `u8`, events `u32`, steps `u64`, detail     |
//! | `Error`     | S → C     | code `u8`, message UTF-8                             |
//! | `Stats`     | A → S     | request: format `u8` (0 Prometheus, 1 JSON)          |
//! | `Stats`     | S → A     | response: rendered snapshot, UTF-8                   |
//! | `Exemplars` | A → S     | request: empty                                       |
//! | `Exemplars` | S → A     | response: slow-round exemplar JSON, UTF-8            |
//!
//! `A → S` rows are the admin telemetry plane: `Stats`/`Exemplars`
//! travel only on the loopback admin listener (`rap serve --admin`),
//! never on the attestation socket — an attestation connection that
//! sends one gets a `Protocol` error, exactly like any other
//! out-of-place frame.
//!
//! Version 2 replaced the bare-device `Hello` of version 1 and added
//! the `Resume`/`Session` handshake: every accepted opener is answered
//! with a `Session` grant carrying a single-use resumption token, and
//! a reconnecting device may present that token in a `Resume` opener
//! to continue its nonce chain without a fresh `Hello` setup.
//!
//! [`AttestClient`]: crate::AttestClient

use std::io::{Read, Write};

use rap_track::Challenge;

/// The frame magic, distinct from the report-stream magic (`RAPR`) so
/// a report stream pasted onto the socket is rejected at the first
/// header.
pub const FRAME_MAGIC: &[u8; 4] = b"RAPS";
/// The service protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 2;
/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 10;
/// Default cap on payload length; larger frames are rejected before
/// any allocation.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 4 * 1024 * 1024;

/// The kind of one service frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client opener: names the device about to attest.
    Hello = 1,
    /// Server nonce for the next attestation round.
    Challenge = 2,
    /// Client evidence: an encoded report stream.
    Attest = 3,
    /// Server decision for one round.
    Verdict = 4,
    /// Server-side failure; the connection closes after this frame.
    Error = 5,
    /// Client opener: presents a resumption token instead of `Hello`.
    Resume = 6,
    /// Server session grant: resumption token + granted window.
    Session = 7,
    /// Admin request/response: a point-in-time metrics snapshot in the
    /// requested [`StatsFormat`].
    Stats = 8,
    /// Admin request/response: the slow-round exemplar ring as JSON.
    Exemplars = 9,
}

impl FrameType {
    /// All frame types, for exhaustive protocol tests.
    pub const ALL: [FrameType; 9] = [
        FrameType::Hello,
        FrameType::Challenge,
        FrameType::Attest,
        FrameType::Verdict,
        FrameType::Error,
        FrameType::Resume,
        FrameType::Session,
        FrameType::Stats,
        FrameType::Exemplars,
    ];

    fn from_u8(v: u8) -> Option<FrameType> {
        match v {
            1 => Some(FrameType::Hello),
            2 => Some(FrameType::Challenge),
            3 => Some(FrameType::Attest),
            4 => Some(FrameType::Verdict),
            5 => Some(FrameType::Error),
            6 => Some(FrameType::Resume),
            7 => Some(FrameType::Session),
            8 => Some(FrameType::Stats),
            9 => Some(FrameType::Exemplars),
            _ => None,
        }
    }
}

/// The rendering a `Stats` admin request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatsFormat {
    /// Prometheus text exposition
    /// ([`Snapshot::to_prometheus`](rap_obs::Snapshot::to_prometheus)).
    Prometheus = 0,
    /// The full telemetry JSON document: server counters, the metrics
    /// snapshot and the per-device aggregate table.
    Json = 1,
}

impl StatsFormat {
    fn from_u8(v: u8) -> Option<StatsFormat> {
        match v {
            0 => Some(StatsFormat::Prometheus),
            1 => Some(StatsFormat::Json),
            _ => None,
        }
    }
}

/// Encodes a `Stats` request payload: one format byte.
pub fn encode_stats_request(format: StatsFormat) -> Vec<u8> {
    vec![format as u8]
}

/// Decodes a `Stats` request payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] unless the payload is exactly one known
/// format byte.
pub fn decode_stats_request(payload: &[u8]) -> Result<StatsFormat, FrameError> {
    let [byte] = payload else {
        return Err(FrameError::BadPayload {
            what: "stats request must be exactly one format byte",
        });
    };
    StatsFormat::from_u8(*byte).ok_or(FrameError::BadPayload {
        what: "unknown stats format",
    })
}

/// Why the server is closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Connection cap reached; retry after a backoff.
    Busy = 1,
    /// The client violated the frame protocol.
    Protocol = 2,
    /// A frame exceeded the server's size cap.
    Oversized = 3,
    /// The client went silent past the read deadline.
    Timeout = 4,
    /// The server is draining for shutdown.
    Draining = 5,
    /// Unexpected server-side failure.
    Internal = 6,
    /// The resumption token was unknown, expired, already used, or
    /// bound to a different device.
    ResumeRejected = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Busy),
            2 => Some(ErrorCode::Protocol),
            3 => Some(ErrorCode::Oversized),
            4 => Some(ErrorCode::Timeout),
            5 => Some(ErrorCode::Draining),
            6 => Some(ErrorCode::Internal),
            7 => Some(ErrorCode::ResumeRejected),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Draining => "draining",
            ErrorCode::Internal => "internal",
            ErrorCode::ResumeRejected => "resume-rejected",
        };
        f.write_str(s)
    }
}

/// One decoded frame: its type plus the raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type from the header.
    pub frame_type: FrameType,
    /// The payload bytes (interpretation depends on `frame_type`).
    pub payload: Vec<u8>,
}

/// A failure while decoding a frame (header or payload).
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new decode failures can be added without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The buffer ended mid-frame.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// The frame did not start with `RAPS`.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// Unknown frame type byte.
    BadType {
        /// The type byte found.
        found: u8,
    },
    /// The declared payload length exceeds the receiver's cap.
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// The payload did not parse as its frame type demands.
    BadPayload {
        /// What the payload failed to provide.
        what: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { offset } => write!(f, "frame truncated at byte {offset}"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            FrameError::BadType { found } => write!(f, "unknown frame type {found}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::BadPayload { what } => write!(f, "bad frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame (header + payload) into a fresh buffer.
pub fn encode_frame(frame_type: FrameType, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(frame_type as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the front of `buf`, returning the frame and
/// the number of bytes consumed.
///
/// # Errors
///
/// Every malformed prefix yields a typed [`FrameError`]; no input
/// panics. `max_len` bounds the declared payload length *before* the
/// payload is touched, so an adversarial length field cannot force an
/// allocation.
pub fn decode_frame(buf: &[u8], max_len: u32) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated { offset: buf.len() });
    }
    if &buf[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion { found: buf[4] });
    }
    let frame_type = FrameType::from_u8(buf[5]).ok_or(FrameError::BadType { found: buf[5] })?;
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    let end = HEADER_LEN + len as usize;
    if buf.len() < end {
        return Err(FrameError::Truncated { offset: buf.len() });
    }
    Ok((
        Frame {
            frame_type,
            payload: buf[HEADER_LEN..end].to_vec(),
        },
        end,
    ))
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF *before any header byte* — the
/// peer closed between frames. EOF mid-frame is
/// [`FrameError::Truncated`]; read timeouts surface as the underlying
/// [`std::io::Error`] (kind `WouldBlock`/`TimedOut`).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Option<Frame>, ReadFrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated { offset: got }.into()),
            Ok(n) => got += n,
            Err(e) => return Err(ReadFrameError::Io(e)),
        }
    }
    if &header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic.into());
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion { found: header[4] }.into());
    }
    let frame_type =
        FrameType::from_u8(header[5]).ok_or(FrameError::BadType { found: header[5] })?;
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len }.into());
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    offset: HEADER_LEN + got,
                }
                .into())
            }
            Ok(n) => got += n,
            Err(e) => return Err(ReadFrameError::Io(e)),
        }
    }
    Ok(Some(Frame {
        frame_type,
        payload,
    }))
}

/// Writes one frame to a blocking stream and flushes it.
pub fn write_frame(
    w: &mut impl Write,
    frame_type: FrameType,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame_type, payload))?;
    w.flush()
}

/// A failure while reading a frame from a stream: either the bytes
/// were malformed or the transport failed.
#[derive(Debug)]
pub enum ReadFrameError {
    /// The bytes received were not a valid frame.
    Frame(FrameError),
    /// The transport failed (including read deadline expiry).
    Io(std::io::Error),
}

impl From<FrameError> for ReadFrameError {
    fn from(e: FrameError) -> ReadFrameError {
        ReadFrameError::Frame(e)
    }
}

impl std::fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFrameError::Frame(e) => write!(f, "{e}"),
            ReadFrameError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ReadFrameError {}

/// The server's decision for one attestation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether the evidence verified.
    pub accepted: bool,
    /// Path events reconstructed (0 when rejected).
    pub events: u32,
    /// Instructions replayed (0 when rejected).
    pub steps: u64,
    /// Human-readable detail (the violation, when rejected).
    pub detail: String,
}

impl Verdict {
    /// Derives the wire verdict from a sealed
    /// [`VerdictRecord`](rap_track::VerdictRecord) — the frame is a
    /// lossy *view* of the record (no nonce, hashes, or seal), kept
    /// wire-compatible with pre-record servers. The detail string
    /// prefixes (`wire: ` for codec failures, `session: ` for protocol
    /// failures, `violation: ` for evidence failures) are part of the
    /// client-visible contract.
    pub fn from_record(record: &rap_track::VerdictRecord) -> Verdict {
        let f = &record.fields;
        let detail = if f.accepted {
            String::new()
        } else {
            match f.kind.as_str() {
                "wire" => format!("wire: {}", f.detail),
                "no-outstanding-challenge" | "challenge-reused" => {
                    format!("session: {}", f.detail)
                }
                _ => format!("violation: {}", f.detail),
            }
        };
        Verdict {
            accepted: f.accepted,
            events: f.events,
            steps: f.steps,
            detail,
        }
    }

    /// Encodes this verdict as a `Verdict` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + self.detail.len());
        out.push(u8::from(self.accepted));
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.steps.to_le_bytes());
        out.extend_from_slice(self.detail.as_bytes());
        out
    }

    /// Decodes a `Verdict` frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] when the payload is shorter than the
    /// fixed fields or the detail is not UTF-8.
    pub fn decode(payload: &[u8]) -> Result<Verdict, FrameError> {
        if payload.len() < 13 {
            return Err(FrameError::BadPayload {
                what: "verdict shorter than fixed fields",
            });
        }
        let accepted = payload[0] != 0;
        let events = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
        let steps = u64::from_le_bytes([
            payload[5],
            payload[6],
            payload[7],
            payload[8],
            payload[9],
            payload[10],
            payload[11],
            payload[12],
        ]);
        let detail = std::str::from_utf8(&payload[13..])
            .map_err(|_| FrameError::BadPayload {
                what: "verdict detail not UTF-8",
            })?
            .to_string();
        Ok(Verdict {
            accepted,
            events,
            steps,
            detail,
        })
    }
}

/// Encodes an `Error` frame payload.
pub fn encode_error(code: ErrorCode, msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(code as u8);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decodes an `Error` frame payload into `(code, message)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] when the payload is empty, carries an
/// unknown code, or the message is not UTF-8.
pub fn decode_error(payload: &[u8]) -> Result<(ErrorCode, String), FrameError> {
    let (&code, msg) = payload.split_first().ok_or(FrameError::BadPayload {
        what: "empty error payload",
    })?;
    let code = ErrorCode::from_u8(code).ok_or(FrameError::BadPayload {
        what: "unknown error code",
    })?;
    let msg = std::str::from_utf8(msg)
        .map_err(|_| FrameError::BadPayload {
            what: "error message not UTF-8",
        })?
        .to_string();
    Ok((code, msg))
}

/// Decodes a `Challenge` frame payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] unless the payload is exactly 32 bytes.
pub fn decode_challenge(payload: &[u8]) -> Result<Challenge, FrameError> {
    let bytes: [u8; 32] = payload.try_into().map_err(|_| FrameError::BadPayload {
        what: "challenge must be exactly 32 bytes",
    })?;
    Ok(Challenge(bytes))
}

/// A server-issued, single-use session-resumption token.
///
/// The id names the saved session state; the mac binds the id to the
/// device name under the server secret, so a token cannot be minted or
/// replayed for a different device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeToken {
    /// Server-side identifier of the saved session state.
    pub id: u64,
    /// HMAC over `id || device` under the server secret.
    pub mac: [u8; 32],
}

/// The server's `Session` grant: the resumption token for *this*
/// connection plus the pipelining window actually granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionGrant {
    /// Token to present in a later `Resume` opener.
    pub token: ResumeToken,
    /// Rounds the client may keep in flight on this connection.
    pub window: u16,
}

/// Encodes a `Hello` frame payload: requested window + device name.
pub fn encode_hello(window: u16, device: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + device.len());
    out.extend_from_slice(&window.to_le_bytes());
    out.extend_from_slice(device.as_bytes());
    out
}

/// Decodes a `Hello` frame payload into `(requested window, device)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] when the payload is shorter than the
/// window field or the device name is not UTF-8.
pub fn decode_hello(payload: &[u8]) -> Result<(u16, String), FrameError> {
    if payload.len() < 2 {
        return Err(FrameError::BadPayload {
            what: "hello shorter than fixed fields",
        });
    }
    let window = u16::from_le_bytes([payload[0], payload[1]]);
    let device = std::str::from_utf8(&payload[2..])
        .map_err(|_| FrameError::BadPayload {
            what: "hello device name not UTF-8",
        })?
        .to_string();
    Ok((window, device))
}

/// Encodes a `Session` frame payload: token id, mac, granted window.
pub fn encode_session(grant: &SessionGrant) -> Vec<u8> {
    let mut out = Vec::with_capacity(42);
    out.extend_from_slice(&grant.token.id.to_le_bytes());
    out.extend_from_slice(&grant.token.mac);
    out.extend_from_slice(&grant.window.to_le_bytes());
    out
}

/// Decodes a `Session` frame payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] unless the payload is exactly the 42
/// fixed bytes.
pub fn decode_session(payload: &[u8]) -> Result<SessionGrant, FrameError> {
    if payload.len() != 42 {
        return Err(FrameError::BadPayload {
            what: "session grant must be exactly 42 bytes",
        });
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let mac: [u8; 32] = payload[8..40].try_into().unwrap();
    let window = u16::from_le_bytes([payload[40], payload[41]]);
    Ok(SessionGrant {
        token: ResumeToken { id, mac },
        window,
    })
}

/// Encodes a `Resume` frame payload: token id, mac, requested window,
/// device name.
pub fn encode_resume(token: &ResumeToken, window: u16, device: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(42 + device.len());
    out.extend_from_slice(&token.id.to_le_bytes());
    out.extend_from_slice(&token.mac);
    out.extend_from_slice(&window.to_le_bytes());
    out.extend_from_slice(device.as_bytes());
    out
}

/// Decodes a `Resume` frame payload into `(token, requested window,
/// device)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] when the payload is shorter than the
/// fixed fields or the device name is not UTF-8.
pub fn decode_resume(payload: &[u8]) -> Result<(ResumeToken, u16, String), FrameError> {
    if payload.len() < 42 {
        return Err(FrameError::BadPayload {
            what: "resume shorter than fixed fields",
        });
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let mac: [u8; 32] = payload[8..40].try_into().unwrap();
    let window = u16::from_le_bytes([payload[40], payload[41]]);
    let device = std::str::from_utf8(&payload[42..])
        .map_err(|_| FrameError::BadPayload {
            what: "resume device name not UTF-8",
        })?
        .to_string();
    Ok((ResumeToken { id, mac }, window, device))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        for ft in FrameType::ALL {
            let payload = vec![0xAB; 17];
            let bytes = encode_frame(ft, &payload);
            let (frame, used) = decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(frame.frame_type, ft);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn verdict_roundtrip() {
        let v = Verdict {
            accepted: true,
            events: 42,
            steps: 1_000_000_007,
            detail: "ok — path reconstructed".to_string(),
        };
        assert_eq!(Verdict::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn error_roundtrip() {
        let payload = encode_error(ErrorCode::Busy, "try later");
        assert_eq!(
            decode_error(&payload).unwrap(),
            (ErrorCode::Busy, "try later".to_string())
        );
    }

    #[test]
    fn oversized_length_rejected_before_payload() {
        let mut bytes = encode_frame(FrameType::Attest, &[]);
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes, 1024),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            })
        );
    }

    #[test]
    fn hello_session_resume_roundtrip() {
        let (window, device) = decode_hello(&encode_hello(6, "device-α")).unwrap();
        assert_eq!((window, device.as_str()), (6, "device-α"));

        let grant = SessionGrant {
            token: ResumeToken {
                id: 0xDEAD_BEEF_0042,
                mac: [0x5A; 32],
            },
            window: 8,
        };
        assert_eq!(decode_session(&encode_session(&grant)).unwrap(), grant);

        let (token, window, device) =
            decode_resume(&encode_resume(&grant.token, 4, "device-α")).unwrap();
        assert_eq!(token, grant.token);
        assert_eq!((window, device.as_str()), (4, "device-α"));
    }

    #[test]
    fn handshake_payloads_reject_short_and_non_utf8() {
        assert!(matches!(
            decode_hello(&[1]),
            Err(FrameError::BadPayload { .. })
        ));
        let mut bad_hello = encode_hello(1, "d");
        bad_hello.push(0xFF);
        assert!(matches!(
            decode_hello(&bad_hello),
            Err(FrameError::BadPayload { .. })
        ));
        for len in [0usize, 41, 43] {
            assert!(matches!(
                decode_session(&vec![0u8; len]),
                Err(FrameError::BadPayload { .. })
            ));
        }
        assert!(matches!(
            decode_resume(&[0u8; 41]),
            Err(FrameError::BadPayload { .. })
        ));
        let token = ResumeToken {
            id: 1,
            mac: [0; 32],
        };
        let mut bad_resume = encode_resume(&token, 1, "d");
        bad_resume.push(0xFE);
        assert!(matches!(
            decode_resume(&bad_resume),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn stats_request_roundtrip_and_typed_rejection() {
        for format in [StatsFormat::Prometheus, StatsFormat::Json] {
            let payload = encode_stats_request(format);
            assert_eq!(payload.len(), 1);
            assert_eq!(decode_stats_request(&payload).unwrap(), format);
        }
        for bad in [&[][..], &[2u8][..], &[0u8, 0][..], &[0xFFu8][..]] {
            assert!(matches!(
                decode_stats_request(bad),
                Err(FrameError::BadPayload { .. })
            ));
        }
    }

    #[test]
    fn read_frame_clean_eof_is_none() {
        let mut empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME_LEN),
            Ok(None)
        ));
    }

    #[test]
    fn read_frame_mid_frame_eof_is_truncated() {
        let bytes = encode_frame(FrameType::Hello, b"dev");
        let mut cut: &[u8] = &bytes[..bytes.len() - 1];
        assert!(matches!(
            read_frame(&mut cut, DEFAULT_MAX_FRAME_LEN),
            Err(ReadFrameError::Frame(FrameError::Truncated { .. }))
        ));
    }
}
