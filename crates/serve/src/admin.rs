//! Client for the server's admin telemetry endpoint.
//!
//! [`AdminClient`] speaks the same frame codec as the attestation
//! socket but only the two admin frame types: `STATS` (a point-in-time
//! metrics snapshot, Prometheus text or telemetry JSON) and
//! `EXEMPLARS` (the slow-round exemplar ring as JSON). `rap top` and
//! `rap stats --watch` are built on it; the connection is
//! request/response, one frame each way per call.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::client::ClientError;
use crate::frame::{
    encode_stats_request, read_frame, write_frame, FrameType, StatsFormat, DEFAULT_MAX_FRAME_LEN,
};

/// Connection settings for the admin telemetry endpoint.
#[derive(Debug, Clone)]
pub struct AdminClient {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_frame_len: u32,
}

impl AdminClient {
    /// Points at a server's admin address (the `admin on ADDR` line
    /// `rap serve --admin` prints, or [`Server::admin_addr`]).
    ///
    /// [`Server::admin_addr`]: crate::Server::admin_addr
    pub fn new(addr: impl Into<String>) -> AdminClient {
        AdminClient {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// Opens one admin connection. The server serves scrapers
    /// sequentially and drops idle ones after a second, so hold the
    /// connection only while actively scraping.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the address does not parse;
    /// [`ClientError::Io`] on connect/configure failures.
    pub fn connect(&self) -> Result<AdminConn, ClientError> {
        let addr: SocketAddr = self
            .addr
            .parse()
            .map_err(|_| ClientError::Protocol("unparseable admin address"))?;
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(AdminConn {
            stream,
            max_frame_len: self.max_frame_len,
        })
    }
}

/// One open admin connection; each method is one request/response
/// round-trip.
#[derive(Debug)]
pub struct AdminConn {
    stream: TcpStream,
    max_frame_len: u32,
}

impl AdminConn {
    /// Fetches a point-in-time snapshot in the given format:
    /// Prometheus text exposition, or the telemetry JSON document
    /// (uptime, server counters, metrics, per-device table).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server answers with an `ERROR`
    /// frame; [`ClientError::Protocol`] on an unexpected frame type or
    /// a non-UTF-8 payload; transport failures as [`ClientError::Io`].
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        self.request(FrameType::Stats, &encode_stats_request(format))
    }

    /// Fetches the slow-round exemplar ring as JSON.
    ///
    /// # Errors
    ///
    /// As for [`AdminConn::stats`].
    pub fn exemplars(&mut self) -> Result<String, ClientError> {
        self.request(FrameType::Exemplars, &[])
    }

    fn request(&mut self, frame_type: FrameType, payload: &[u8]) -> Result<String, ClientError> {
        write_frame(&mut self.stream, frame_type, payload)?;
        let frame = read_frame(&mut self.stream, self.max_frame_len)?
            .ok_or(ClientError::Protocol("server closed the admin connection"))?;
        match frame.frame_type {
            ft if ft == frame_type => String::from_utf8(frame.payload)
                .map_err(|_| ClientError::Protocol("admin reply not UTF-8")),
            FrameType::Error => {
                let (code, msg) = crate::frame::decode_error(&frame.payload)?;
                Err(ClientError::Server { code, msg })
            }
            _ => Err(ClientError::Protocol("unexpected admin reply type")),
        }
    }
}
