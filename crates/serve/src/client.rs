//! The Prover-side client: connects, answers challenges with signed
//! report streams, and returns the server's typed verdicts.
//!
//! A connection opens with `HELLO` (or `RESUME` with a token from an
//! earlier session) and receives a `SESSION` grant: a fresh
//! resumption token plus the pipelining window the server actually
//! granted. [`Connection::round`] runs one round at a time;
//! [`Connection::pipelined`] keeps up to the granted window of rounds
//! in flight, writing ahead while verdicts stream back in order.
//!
//! Transient failures (connection refused, `ERROR busy`) retry with
//! bounded exponential backoff; the jitter is drawn from SplitMix64
//! seeded by [`ClientConfig::jitter_seed`], so a test or bench replays
//! the exact same timing.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use rap_track::{encode_stream, Challenge, Report};

use crate::frame::{
    decode_challenge, decode_error, decode_session, encode_hello, encode_resume, read_frame,
    write_frame, ErrorCode, FrameError, FrameType, ReadFrameError, ResumeToken, Verdict,
    DEFAULT_MAX_FRAME_LEN,
};

/// Tunables for [`AttestClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for each frame read.
    pub read_timeout: Duration,
    /// Deadline for each frame write.
    pub write_timeout: Duration,
    /// Retries after the first attempt (connect failures and
    /// `ERROR busy` only — verdicts are never retried).
    pub retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// SplitMix64 seed for deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Payload-size cap for received frames.
    pub max_frame_len: u32,
    /// Pipelining window to request from the server (the server may
    /// grant less; 1 degenerates to strict request/response rounds).
    pub window: u16,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5EED,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            window: 1,
        }
    }
}

/// A client-side failure.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new failure modes can be added without a breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(std::io::Error),
    /// The server sent bytes that were not a valid frame.
    Frame(FrameError),
    /// The server closed the connection with a typed error.
    Server {
        /// Why the server refused.
        code: ErrorCode,
        /// The server's message.
        msg: String,
    },
    /// The server broke the protocol (unexpected frame type, or closed
    /// mid-round).
    Protocol(&'static str),
    /// Every attempt failed; holds the final attempt's error.
    Exhausted {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// The error from the last attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Server { code, msg } => write!(f, "server error ({code}): {msg}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl From<ReadFrameError> for ClientError {
    fn from(e: ReadFrameError) -> ClientError {
        match e {
            ReadFrameError::Frame(e) => ClientError::Frame(e),
            ReadFrameError::Io(e) => ClientError::Io(e),
        }
    }
}

impl ClientError {
    /// Whether a fresh attempt could plausibly succeed — connect
    /// failures and server `busy` shedding, nothing else.
    fn transient(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ),
            ClientError::Server { code, .. } => *code == ErrorCode::Busy,
            _ => false,
        }
    }
}

/// A client for one attestation server address.
#[derive(Debug, Clone)]
pub struct AttestClient {
    addr: String,
    config: ClientConfig,
}

/// One open connection: the opener (`HELLO` or `RESUME`) is sent; the
/// `SESSION` grant is consumed lazily on the first read, after which
/// [`Connection::resume_token`] holds the token for the *next*
/// connection.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    max_frame_len: u32,
    grant: Option<(ResumeToken, u16)>,
    pending: VecDeque<Challenge>,
}

impl AttestClient {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:7207"`).
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> AttestClient {
        AttestClient {
            addr: addr.into(),
            config,
        }
    }

    /// Opens a connection and sends `HELLO`, retrying transient
    /// failures with backoff.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] once the retry budget is spent; any
    /// non-transient [`ClientError`] immediately.
    pub fn open(&self, device: &str) -> Result<Connection, ClientError> {
        let window = self.config.window.max(1);
        self.open_with(|conn| {
            write_frame(
                &mut conn.stream,
                FrameType::Hello,
                &encode_hello(window, device),
            )
        })
    }

    /// Opens a connection that resumes the session `token` names: the
    /// server restores the device's nonce chain without a fresh
    /// `HELLO` setup. The token must have come from an earlier
    /// [`Connection::close`] (or [`Connection::resume_token`]) for the
    /// same device.
    ///
    /// # Errors
    ///
    /// The server answers an invalid, expired, reused, or
    /// wrong-device token with [`ClientError::Server`] carrying
    /// [`ErrorCode::ResumeRejected`] (surfaced on the first read);
    /// transport failures as in [`AttestClient::open`].
    pub fn resume(&self, device: &str, token: ResumeToken) -> Result<Connection, ClientError> {
        let window = self.config.window.max(1);
        self.open_with(|conn| {
            write_frame(
                &mut conn.stream,
                FrameType::Resume,
                &encode_resume(&token, window, device),
            )
        })
    }

    fn open_with(
        &self,
        mut opener: impl FnMut(&mut Connection) -> std::io::Result<()>,
    ) -> Result<Connection, ClientError> {
        let attempts = self.config.retries + 1;
        let mut rng = SplitMix64::new(self.config.jitter_seed);
        for attempt in 0..attempts {
            match self.connect_once(&mut opener) {
                Ok(conn) => return Ok(conn),
                Err(e) if e.transient() && attempt + 1 < attempts => {
                    rap_obs::counter!("serve_client_retries_total").inc();
                    std::thread::sleep(self.backoff(attempt, &mut rng));
                }
                Err(e) if e.transient() => {
                    return Err(ClientError::Exhausted {
                        attempts,
                        last: Box::new(e),
                    })
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt");
    }

    /// One full attestation round on a fresh connection: open, receive
    /// the challenge, call `respond` to produce the signed report
    /// stream, return the server's verdict.
    ///
    /// # Errors
    ///
    /// Propagates [`AttestClient::open`] and [`Connection::round`]
    /// failures.
    pub fn attest_once(
        &self,
        device: &str,
        respond: impl FnOnce(Challenge) -> Vec<Report>,
    ) -> Result<Verdict, ClientError> {
        let mut conn = self.open(device)?;
        conn.round(respond)
    }

    fn connect_once(
        &self,
        opener: &mut impl FnMut(&mut Connection) -> std::io::Result<()>,
    ) -> Result<Connection, ClientError> {
        let addr = self
            .addr
            .parse()
            .map_err(|_| ClientError::Protocol("unparseable server address"))?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let _ = stream.set_nodelay(true);
        let mut conn = Connection {
            stream,
            max_frame_len: self.config.max_frame_len,
            grant: None,
            pending: VecDeque::new(),
        };
        conn.pending.reserve(self.config.window as usize);
        opener(&mut conn)?;
        Ok(conn)
    }

    fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let base = self.config.backoff_base.as_millis() as u64;
        let cap = self.config.backoff_cap.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap.max(1));
        let jitter = rng.next() % exp.max(1);
        Duration::from_millis(exp + jitter / 2)
    }
}

impl Connection {
    /// Runs one challenge–response round: takes the next `CHALLENGE`,
    /// answers with the reports `respond` produces, and returns the
    /// `VERDICT`. Call again for another round on the same connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server closes with a typed
    /// error (e.g. draining), [`ClientError::Protocol`] on unexpected
    /// frames, [`ClientError::Io`]/[`ClientError::Frame`] on transport
    /// or decode failures.
    pub fn round(
        &mut self,
        respond: impl FnOnce(Challenge) -> Vec<Report>,
    ) -> Result<Verdict, ClientError> {
        let chal = self.next_challenge()?;
        let reports = respond(chal);
        write_frame(
            &mut self.stream,
            FrameType::Attest,
            &encode_stream(&reports),
        )?;
        self.read_verdict()
    }

    /// Runs `rounds` rounds keeping up to the granted window in
    /// flight: an initial burst of ATTEST frames, then one new ATTEST
    /// per VERDICT received. Verdicts come back in round order.
    ///
    /// # Errors
    ///
    /// As [`Connection::round`]; on error, in-flight rounds are lost.
    pub fn pipelined(
        &mut self,
        rounds: usize,
        mut respond: impl FnMut(Challenge) -> Vec<Report>,
    ) -> Result<Vec<Verdict>, ClientError> {
        let mut verdicts = Vec::with_capacity(rounds);
        let mut sent = 0usize;
        // Write-ahead burst: one ATTEST per challenge the handshake
        // granted (bounded by the number of rounds requested). The
        // granted window is unknown until the first read consumes the
        // SESSION grant, so the bound is re-checked per iteration.
        while sent < rounds && sent < self.granted_window().max(1) as usize {
            let chal = self.next_challenge()?;
            write_frame(
                &mut self.stream,
                FrameType::Attest,
                &encode_stream(&respond(chal)),
            )?;
            sent += 1;
        }
        while verdicts.len() < rounds {
            verdicts.push(self.read_verdict()?);
            if sent < rounds {
                let chal = self.next_challenge()?;
                write_frame(
                    &mut self.stream,
                    FrameType::Attest,
                    &encode_stream(&respond(chal)),
                )?;
                sent += 1;
            }
        }
        Ok(verdicts)
    }

    /// The resumption token granted to this connection, once the
    /// `SESSION` frame has been read (after the first round at the
    /// latest). Present it to [`AttestClient::resume`] to continue
    /// this session on a new connection.
    pub fn resume_token(&self) -> Option<ResumeToken> {
        self.grant.map(|(token, _)| token)
    }

    /// The pipelining window the server granted (0 until the
    /// `SESSION` frame has been read).
    pub fn granted_window(&self) -> u16 {
        self.grant.map_or(0, |(_, w)| w)
    }

    /// Closes the connection cleanly and returns the resumption token:
    /// shuts down the write side, then drains the server's remaining
    /// frames until it acknowledges the close with EOF — after which
    /// the server is guaranteed to have parked the session, so an
    /// immediate [`AttestClient::resume`] with the token succeeds.
    pub fn close(mut self) -> Option<ResumeToken> {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        while let Ok(Some(_)) = read_frame(&mut self.stream, self.max_frame_len) {}
        self.grant.map(|(token, _)| token)
    }

    /// Sends raw bytes on the open connection — test aid for malformed
    /// and slow-loris inputs; not part of the protocol.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads the next frame — test aid for driving the protocol
    /// manually after [`Connection::send_raw`]. `SESSION` grants are
    /// consumed transparently (stashing the token), so the first frame
    /// this returns on a fresh connection is the first `CHALLENGE`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on clean EOF; transport and decode
    /// failures as their own variants.
    pub fn read_next(&mut self) -> Result<(FrameType, Vec<u8>), ClientError> {
        loop {
            let (ft, payload) = self.expect_frame()?;
            if ft == FrameType::Session && self.grant.is_none() {
                let grant = decode_session(&payload)?;
                self.grant = Some((grant.token, grant.window));
                continue;
            }
            return Ok((ft, payload));
        }
    }

    /// The next challenge: buffered first, then read from the stream
    /// (consuming the `SESSION` grant if it has not arrived yet).
    fn next_challenge(&mut self) -> Result<Challenge, ClientError> {
        if let Some(chal) = self.pending.pop_front() {
            return Ok(chal);
        }
        loop {
            match self.expect_frame()? {
                (FrameType::Session, payload) => {
                    let grant = decode_session(&payload)?;
                    self.grant = Some((grant.token, grant.window));
                }
                (FrameType::Challenge, payload) => return Ok(decode_challenge(&payload)?),
                (FrameType::Error, payload) => return Err(server_error(&payload)),
                _ => return Err(ClientError::Protocol("expected CHALLENGE")),
            }
        }
    }

    /// Reads until a `VERDICT`, buffering replacement challenges that
    /// arrive ahead of it.
    fn read_verdict(&mut self) -> Result<Verdict, ClientError> {
        loop {
            match self.expect_frame()? {
                (FrameType::Verdict, payload) => return Ok(Verdict::decode(&payload)?),
                (FrameType::Challenge, payload) => {
                    self.pending.push_back(decode_challenge(&payload)?);
                }
                (FrameType::Session, payload) => {
                    let grant = decode_session(&payload)?;
                    self.grant = Some((grant.token, grant.window));
                }
                (FrameType::Error, payload) => return Err(server_error(&payload)),
                _ => return Err(ClientError::Protocol("expected VERDICT")),
            }
        }
    }

    fn expect_frame(&mut self) -> Result<(FrameType, Vec<u8>), ClientError> {
        match read_frame(&mut self.stream, self.max_frame_len)? {
            Some(frame) => Ok((frame.frame_type, frame.payload)),
            None => Err(ClientError::Protocol("server closed the connection")),
        }
    }
}

fn server_error(payload: &[u8]) -> ClientError {
    match decode_error(payload) {
        Ok((code, msg)) => ClientError::Server { code, msg },
        Err(e) => ClientError::Frame(e),
    }
}

/// SplitMix64 — the repo's standard deterministic generator (see
/// `rap-fuzz`), re-implemented locally so the runtime crate does not
/// depend on the fuzzing crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let client = AttestClient::new("127.0.0.1:1", ClientConfig::default());
        let delays: Vec<Duration> = {
            let mut rng = SplitMix64::new(7);
            (0..6).map(|a| client.backoff(a, &mut rng)).collect()
        };
        let again: Vec<Duration> = {
            let mut rng = SplitMix64::new(7);
            (0..6).map(|a| client.backoff(a, &mut rng)).collect()
        };
        assert_eq!(delays, again, "jitter must be deterministic");
        let cap = ClientConfig::default().backoff_cap.as_millis() as u64;
        for d in delays {
            assert!(
                d.as_millis() as u64 <= cap + cap / 2,
                "delay {d:?} over cap"
            );
        }
    }

    #[test]
    fn refused_connection_exhausts_retries() {
        // Port 1 on loopback is essentially never listening.
        let config = ClientConfig {
            retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        };
        let client = AttestClient::new("127.0.0.1:1", config);
        match client.open("dev") {
            Err(ClientError::Exhausted { attempts: 3, .. }) => {}
            Err(ClientError::Io(_)) => {} // some kernels time out instead
            other => panic!("expected exhausted retries, got {other:?}"),
        }
    }
}
