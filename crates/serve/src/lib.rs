//! # rap-serve — the networked attestation service
//!
//! RAP-Track's verifier is the Ver endpoint of a remote-attestation
//! protocol (paper §II-C: Prv sends `(CF_Log, auth)` to a remote Ver);
//! this crate puts an actual wire between them. Std-only TCP, no
//! external dependencies, same as the rest of the workspace.
//!
//! * [`Server`] — bounded accept loop + worker pool, every connection
//!   a [`rap_track::VerifierSession`] over clones of one shared
//!   [`rap_track::Verifier`] (one replay cache for the whole fleet).
//!   Overload is shed with `ERROR busy`; shutdown drains in-flight
//!   rounds and flushes `rap-obs`.
//! * [`AttestClient`] — connect/read deadlines and bounded
//!   exponential-backoff retry with deterministic SplitMix64 jitter.
//! * [`frame`] — the length-prefixed frame protocol
//!   (`HELLO`/`CHALLENGE`/`ATTEST`/`VERDICT`/`ERROR`); report payloads
//!   reuse [`rap_track::encode_stream`].
//!
//! ```no_run
//! use rap_serve::{AttestClient, ClientConfig, Server, ServerConfig};
//! use rap_track::Verifier;
//! # fn verifier() -> Verifier { unimplemented!() }
//! # fn respond(_: rap_track::Challenge) -> Vec<rap_track::Report> { unimplemented!() }
//!
//! let server = Server::start(verifier(), "127.0.0.1:0", ServerConfig::default())?;
//! let client = AttestClient::new(server.local_addr().to_string(), ClientConfig::default());
//! let verdict = client.attest_once("device-0", respond)?;
//! assert!(verdict.accepted);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod frame;

mod client;
mod server;

pub use client::{AttestClient, ClientConfig, ClientError, Connection};
pub use frame::{ErrorCode, Frame, FrameError, FrameType, ReadFrameError, Verdict};
pub use server::{Server, ServerConfig, ServerStats};
