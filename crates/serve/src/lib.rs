//! # rap-serve — the networked attestation service
//!
//! RAP-Track's verifier is the Ver endpoint of a remote-attestation
//! protocol (paper §II-C: Prv sends `(CF_Log, auth)` to a remote Ver);
//! this crate puts an actual wire between them. Std-only TCP, no
//! external dependencies, same as the rest of the workspace.
//!
//! * [`Server`] — bounded accept loop → device-sharded dispatcher →
//!   one worker per verifier shard, every connection a
//!   [`rap_track::VerifierSession`] over clones of one shared
//!   [`rap_track::Verifier`] (one replay cache for the whole fleet,
//!   with per-device thread locality from the sharding). Rounds are
//!   pipelined up to a granted window and verdict/observability
//!   writes are batched per drain tick. Overload is shed with
//!   `ERROR busy`; shutdown drains in-flight rounds and flushes
//!   `rap-obs`. A closing connection parks its session under a
//!   single-use resumption token so the device can continue its nonce
//!   chain on the next connection.
//! * [`AttestClient`] — connect/read deadlines and bounded
//!   exponential-backoff retry with deterministic SplitMix64 jitter;
//!   [`Connection::pipelined`] keeps a window of rounds in flight and
//!   [`AttestClient::resume`] reconnects with a token.
//! * [`frame`] — the length-prefixed frame protocol, version 2
//!   (`HELLO`/`RESUME`/`SESSION`/`CHALLENGE`/`ATTEST`/`VERDICT`/
//!   `ERROR`, plus the admin-only `STATS`/`EXEMPLARS`); report
//!   payloads reuse [`rap_track::encode_stream`].
//! * [`AdminClient`] — the telemetry plane's client. With
//!   [`ServerConfig::admin_addr`] set the server runs a separate
//!   loopback listener serving point-in-time Prometheus/JSON
//!   snapshots, a per-device aggregate table, and slow-round
//!   exemplars with per-stage span trees (`rap top` is built on it).
//!
//! ```no_run
//! use rap_serve::{AttestClient, ClientConfig, Server, ServerConfig};
//! use rap_track::Verifier;
//! # fn verifier() -> Verifier { unimplemented!() }
//! # fn respond(_: rap_track::Challenge) -> Vec<rap_track::Report> { unimplemented!() }
//!
//! let config = ServerConfig {
//!     session_secret: b"from-an-os-rng".to_vec(),
//!     ..ServerConfig::default()
//! };
//! let server = Server::start(verifier(), "127.0.0.1:0", config)?;
//! let client = AttestClient::new(server.local_addr().to_string(), ClientConfig::default());
//!
//! // Pipelined rounds on one connection, then resume on a second.
//! let mut conn = client.open("device-0")?;
//! let verdicts = conn.pipelined(4, |chal| respond(chal))?;
//! assert!(verdicts.iter().all(|v| v.accepted));
//! let token = conn.close().expect("session grant received");
//! let mut conn = client.resume("device-0", token)?;
//! let verdict = conn.round(respond)?;
//! assert!(verdict.accepted);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod frame;

mod admin;
mod client;
mod server;

pub use admin::{AdminClient, AdminConn};
pub use client::{AttestClient, ClientConfig, ClientError, Connection};
pub use frame::{
    ErrorCode, Frame, FrameError, FrameType, ReadFrameError, ResumeToken, SessionGrant,
    StatsFormat, Verdict,
};
pub use server::{
    AdminExtra, RoundEvent, RoundEventFn, RoundHook, Server, ServerConfig, ServerStats, StartError,
};
#[allow(deprecated)]
pub use server::{VerdictFn, VerdictHook};

/// The commonly-imported surface in one glob: server + client types
/// and the typed round-event hook with its sealed
/// [`VerdictRecord`](rap_track::VerdictRecord) payload.
///
/// ```
/// use rap_serve::prelude::*;
/// ```
pub mod prelude {
    pub use crate::client::{AttestClient, ClientConfig, Connection};
    pub use crate::frame::Verdict;
    pub use crate::server::{RoundEvent, RoundHook, Server, ServerConfig};
    pub use rap_track::{VerdictDraft, VerdictRecord};
}
