//! Loopback integration tests: real TCP connections on 127.0.0.1
//! against a real [`Server`], covering benign devices, attack
//! workloads, malformed and oversized frames, slow-loris partial
//! writes, busy shedding, concurrent mixed clients, and
//! drain-during-load. Every failure mode must surface as a typed
//! verdict or error — no connection ever observes a panic or an
//! unbounded hang.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rap_obs::Json;
use rap_serve::frame::{decode_error, encode_frame};
use rap_serve::{
    AdminClient, AttestClient, ClientConfig, ClientError, ErrorCode, FrameType, Server,
    ServerConfig, StartError, StatsFormat,
};
use rap_track::{CfaEngine, Challenge, EngineConfig, Key, Report, Verifier};

/// A [`ServerConfig`] with the test secret set — the default ships an
/// empty secret on purpose and [`Server::start`] rejects it.
fn test_config() -> ServerConfig {
    ServerConfig {
        session_secret: b"loopback-test-secret".to_vec(),
        ..ServerConfig::default()
    }
}

/// The deployed application every test device runs: the `fibcall`
/// evaluation workload (calls + a runtime-variable loop, so the
/// CF_Log is non-trivial but verification stays fast).
fn deployed() -> (rap_link::LinkedProgram, workloads::Workload) {
    let w = workloads::by_name("fibcall").expect("fibcall workload exists");
    let linked =
        rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).expect("workload links");
    (linked, w)
}

fn test_key() -> Key {
    rap_track::device_key("loopback")
}

fn test_verifier(linked: &rap_link::LinkedProgram) -> Verifier {
    Verifier::builder()
        .key(test_key())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("all builder fields set")
}

/// Produces a benign signed report stream for `chal`.
fn respond_benign(
    linked: &rap_link::LinkedProgram,
    w: &workloads::Workload,
) -> impl Fn(Challenge) -> Vec<Report> {
    let linked = linked.clone();
    let attach = w.attach;
    let max_instrs = w.max_instrs;
    move |chal| {
        let engine = CfaEngine::new(test_key());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        attach(&mut machine);
        engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    max_instrs: max_instrs * 2,
                    watermark: Some(256),
                },
            )
            .expect("benign attestation runs")
            .reports
    }
}

/// Produces a forged stream: the strongest adversary (holds the key)
/// redirects one MTB packet and re-signs — authentication passes,
/// replay must reject.
fn respond_forged(
    linked: &rap_link::LinkedProgram,
    w: &workloads::Workload,
) -> impl Fn(Challenge) -> Vec<Report> {
    let benign = respond_benign(linked, w);
    move |chal| {
        let mut reports = benign(chal);
        let seq = reports
            .iter()
            .position(|r| !r.log.mtb.is_empty())
            .expect("some report has MTB packets");
        let mut log = reports[seq].log.clone();
        log.mtb[0].dest ^= 0x40;
        reports[seq] = Report::new(
            &test_key(),
            chal,
            reports[seq].h_mem,
            log,
            seq as u32,
            reports[seq].is_final,
            reports[seq].overflow,
        );
        reports
    }
}

fn quick_client(addr: std::net::SocketAddr) -> AttestClient {
    AttestClient::new(
        addr.to_string(),
        ClientConfig {
            retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            read_timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    )
}

#[test]
fn benign_round_is_accepted() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());

    let verdict = client
        .attest_once("device-0", respond_benign(&linked, &w))
        .expect("round completes");
    assert!(verdict.accepted, "benign evidence accepted: {verdict:?}");
    assert!(verdict.events > 0, "path has events");
    assert!(verdict.steps > 0, "path has steps");

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.verdicts_accepted, 1);
    assert_eq!(stats.verdicts_rejected, 0);
}

#[test]
fn attack_round_is_rejected_with_typed_detail() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());

    let verdict = client
        .attest_once("attacker-0", respond_forged(&linked, &w))
        .expect("round completes (rejection is a verdict, not an error)");
    assert!(!verdict.accepted);
    assert!(
        verdict.detail.starts_with("violation: "),
        "typed violation detail, got {:?}",
        verdict.detail
    );

    let stats = server.shutdown();
    assert_eq!(stats.verdicts_rejected, 1);
}

#[test]
fn rounds_reuse_one_connection_with_fresh_nonces() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("device-0").expect("opens");
    let respond = respond_benign(&linked, &w);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..3 {
        let mut captured = None;
        let verdict = conn
            .round(|chal| {
                captured = Some(chal);
                respond(chal)
            })
            .expect("round completes");
        assert!(verdict.accepted);
        assert!(
            seen.insert(captured.expect("challenge captured").0),
            "nonce repeated across rounds"
        );
    }
    drop(conn);
    let stats = server.shutdown();
    assert_eq!(stats.verdicts_accepted, 3);
    assert_eq!(stats.accepted, 1, "one connection served all rounds");
}

#[test]
fn nonces_are_unique_across_connections() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());
    let respond = respond_benign(&linked, &w);

    let mut seen = std::collections::HashSet::new();
    for device in 0..4 {
        let mut captured = None;
        let verdict = client
            .attest_once(&format!("device-{device}"), |chal| {
                captured = Some(chal);
                respond(chal)
            })
            .expect("round completes");
        assert!(verdict.accepted);
        assert!(
            seen.insert(captured.expect("challenge captured").0),
            "nonce repeated across connections"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_attest_payload_gets_rejected_verdict() {
    let (linked, _w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("garbler").expect("opens");
    let (ft, _chal) = conn.read_next().expect("challenge arrives");
    assert_eq!(ft, FrameType::Challenge);
    // A well-formed frame whose payload is not a report stream.
    conn.send_raw(&encode_frame(FrameType::Attest, b"not a report stream"))
        .expect("writes");
    match conn.read_next().expect("verdict arrives") {
        (FrameType::Verdict, payload) => {
            let v = rap_serve::Verdict::decode(&payload).expect("verdict decodes");
            assert!(!v.accepted);
            assert!(v.detail.starts_with("wire: "), "got {:?}", v.detail);
        }
        other => panic!("expected verdict, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn bad_magic_and_oversized_frames_get_typed_errors() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            max_frame_len: 1024,
            ..test_config()
        },
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    // Bad magic after HELLO → protocol error, close.
    let mut conn = client.open("mangler").expect("opens");
    let _ = conn.read_next().expect("challenge arrives");
    conn.send_raw(b"XXXXXXXXXXXXXXXXXXXX").expect("writes");
    match conn.read_next().expect("error frame arrives") {
        (FrameType::Error, payload) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Protocol);
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Oversized declared length → oversized error, close, before any
    // payload allocation.
    let mut conn = client.open("bloater").expect("opens");
    let _ = conn.read_next().expect("challenge arrives");
    let mut huge = encode_frame(FrameType::Attest, &[]);
    huge[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    conn.send_raw(&huge).expect("writes");
    match conn.read_next().expect("error frame arrives") {
        (FrameType::Error, payload) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Oversized);
        }
        other => panic!("expected error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn slow_loris_partial_write_is_deadline_bounded() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_millis(300),
            ..test_config()
        },
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let started = Instant::now();
    let mut conn = client.open("loris").expect("opens");
    let _ = conn.read_next().expect("challenge arrives");
    // Half a header, then silence: the server must not wait forever.
    conn.send_raw(b"RAPS\x01").expect("writes");
    match conn.read_next().expect("error frame arrives") {
        (FrameType::Error, payload) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Timeout);
        }
        other => panic!("expected timeout error, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout path must be deadline-bounded"
    );
    server.shutdown();
}

#[test]
fn overload_is_shed_with_busy() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            max_pending: 1,
            read_timeout: Duration::from_secs(5),
            ..test_config()
        },
    )
    .expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    );

    // Occupy the single worker (it blocks reading our ATTEST)...
    let mut held = client.open("holder").expect("opens");
    let _ = held.read_next().expect("challenge arrives");
    std::thread::sleep(Duration::from_millis(50));
    // ...fill the queue with a second connection...
    let queued = client.open("waiter").expect("opens");
    std::thread::sleep(Duration::from_millis(50));
    // ...so a third is shed.
    let mut shed = client.open("shed").expect("TCP connect still succeeds");
    match shed.read_next() {
        Ok((FrameType::Error, payload)) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Busy);
        }
        // The busy frame may race the close; a reset is also a shed.
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        other => panic!("expected busy shed, got {other:?}"),
    }

    // Close both held connections so the drain doesn't wait out the
    // read deadline.
    drop(queued);
    drop(held);
    let stats = server.shutdown();
    assert!(stats.shed >= 1, "at least one connection shed: {stats:?}");
}

/// The acceptance-criteria test: 8 concurrent clients mixing benign,
/// attack, and malformed traffic; every client gets the correct typed
/// verdict, the server drains cleanly, and the whole thing is
/// deadline-bounded.
#[test]
fn eight_concurrent_mixed_clients_then_clean_drain() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            threads: 4,
            ..test_config()
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    let benign_ok = AtomicU64::new(0);
    let attacks_rejected = AtomicU64::new(0);
    let malformed_rejected = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for i in 0..8u64 {
            let linked = &linked;
            let w = &w;
            let benign_ok = &benign_ok;
            let attacks_rejected = &attacks_rejected;
            let malformed_rejected = &malformed_rejected;
            scope.spawn(move || {
                let client = quick_client(addr);
                match i % 3 {
                    0 => {
                        let v = client
                            .attest_once(&format!("benign-{i}"), respond_benign(linked, w))
                            .expect("benign round completes");
                        assert!(v.accepted, "client {i}: {v:?}");
                        benign_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    1 => {
                        let v = client
                            .attest_once(&format!("attacker-{i}"), respond_forged(linked, w))
                            .expect("attack round completes");
                        assert!(!v.accepted, "client {i}: forged evidence must reject");
                        assert!(v.detail.starts_with("violation: "), "client {i}: {v:?}");
                        attacks_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        let mut conn = client.open(&format!("garbler-{i}")).expect("opens");
                        let (ft, _) = conn.read_next().expect("challenge arrives");
                        assert_eq!(ft, FrameType::Challenge);
                        conn.send_raw(&encode_frame(FrameType::Attest, &[0xEE; 40]))
                            .expect("writes");
                        match conn.read_next().expect("verdict arrives") {
                            (FrameType::Verdict, payload) => {
                                let v = rap_serve::Verdict::decode(&payload).unwrap();
                                assert!(!v.accepted, "client {i}: garbage must reject");
                                assert!(v.detail.starts_with("wire: "), "client {i}: {v:?}");
                            }
                            other => panic!("client {i}: expected verdict, got {other:?}"),
                        }
                        malformed_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let started = Instant::now();
    let stats = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain must be deadline-bounded"
    );
    assert_eq!(benign_ok.load(Ordering::Relaxed), 3);
    assert_eq!(attacks_rejected.load(Ordering::Relaxed), 3);
    assert_eq!(malformed_rejected.load(Ordering::Relaxed), 2);
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.verdicts_accepted, 3);
    assert_eq!(stats.verdicts_rejected, 5);
}

#[test]
fn drain_during_load_finishes_inflight_rounds() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            read_timeout: Duration::from_secs(2),
            ..test_config()
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    let completed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for i in 0..3u64 {
            let linked = &linked;
            let w = &w;
            let completed = &completed;
            scope.spawn(move || {
                let client = AttestClient::new(
                    addr.to_string(),
                    ClientConfig {
                        retries: 0,
                        read_timeout: Duration::from_secs(5),
                        ..ClientConfig::default()
                    },
                );
                let respond = respond_benign(linked, w);
                // Keep attesting until the server goes away.
                for _ in 0..200 {
                    match client.attest_once(&format!("load-{i}"), &respond) {
                        Ok(v) => {
                            assert!(v.accepted);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server { code, .. }) => {
                            assert!(
                                code == ErrorCode::Draining || code == ErrorCode::Busy,
                                "unexpected server error {code}"
                            );
                            break;
                        }
                        Err(_) => break, // refused/reset after drain
                    }
                }
            });
        }

        // Let some rounds complete, then drain under load.
        while completed.load(Ordering::Relaxed) < 2 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let started = Instant::now();
        let stats = server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "drain under load must be deadline-bounded"
        );
        // Rounds finished before and during the drain — nothing was
        // dropped mid-verification.
        assert!(
            stats.verdicts_accepted >= 2,
            "rounds completed before and during drain: {stats:?}"
        );
    });

    assert!(completed.load(Ordering::Relaxed) >= 2);
}

#[test]
fn conn_limit_drains_automatically() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            conn_limit: Some(2),
            ..test_config()
        },
    )
    .expect("binds");
    let addr = server.local_addr();
    let client = quick_client(addr);

    for i in 0..2 {
        let v = client
            .attest_once(&format!("device-{i}"), respond_benign(&linked, &w))
            .expect("round completes");
        assert!(v.accepted);
    }
    let stats = server.join();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.verdicts_accepted, 2);
}

#[test]
fn empty_session_secret_is_rejected_with_typed_error() {
    let (linked, _w) = deployed();
    // ServerConfig::default() deliberately ships an empty secret; a
    // server must refuse to start with it (forgeable nonce chains).
    match Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig::default(),
    ) {
        Err(StartError::EmptySecret) => {}
        Ok(_) => panic!("an empty session secret must be rejected"),
        Err(other) => panic!("expected EmptySecret, got {other:?}"),
    }
}

#[test]
fn pipelined_rounds_on_one_connection() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            window: 4,
            ..ClientConfig::default()
        },
    );

    let mut conn = client.open("pipeline-0").expect("opens");
    let respond = respond_benign(&linked, &w);
    let mut seen = std::collections::HashSet::new();
    let verdicts = conn
        .pipelined(8, |chal| {
            assert!(seen.insert(chal.0), "nonce repeated within the pipeline");
            respond(chal)
        })
        .expect("pipelined rounds complete");
    assert_eq!(verdicts.len(), 8);
    assert!(verdicts.iter().all(|v| v.accepted), "{verdicts:?}");
    assert_eq!(
        conn.granted_window(),
        4,
        "server grants the requested window"
    );
    drop(conn);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1, "one connection served all rounds");
    assert_eq!(stats.verdicts_accepted, 8);
    assert_eq!(stats.verdicts_rejected, 0);
}

#[test]
fn session_resumes_across_connections_without_rehello() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            window: 2,
            ..ClientConfig::default()
        },
    );
    let respond = respond_benign(&linked, &w);
    let mut seen = std::collections::HashSet::new();

    let mut conn = client.open("resumer").expect("opens");
    for v in conn
        .pipelined(2, |chal| {
            assert!(seen.insert(chal.0));
            respond(chal)
        })
        .expect("first connection rounds")
    {
        assert!(v.accepted);
    }
    let token = conn.close().expect("session grant carried a token");

    // Reconnect with the token: no HELLO, the nonce chain continues
    // (challenges stay unique across the resumed connections).
    let mut conn = client.resume("resumer", token).expect("resumes");
    for v in conn
        .pipelined(2, |chal| {
            assert!(seen.insert(chal.0), "resumed session repeated a nonce");
            respond(chal)
        })
        .expect("resumed connection rounds")
    {
        assert!(v.accepted);
    }
    let rotated = conn.close().expect("resumed session granted a fresh token");
    assert_ne!(rotated, token, "tokens rotate on every handshake");

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.resumed, 1);
    assert_eq!(stats.resume_rejected, 0);
    assert_eq!(stats.verdicts_accepted, 4);
}

#[test]
fn resume_token_replay_is_rejected() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("replayer").expect("opens");
    let v = conn.round(respond_benign(&linked, &w)).expect("round");
    assert!(v.accepted);
    let token = conn.close().expect("token granted");

    // First use succeeds...
    let conn = client
        .resume("replayer", token)
        .expect("first resume opens");
    let _ = conn.close();
    // ...the second presentation of the same token must be rejected —
    // tokens are single-use.
    let mut conn = client.resume("replayer", token).expect("TCP connects");
    match conn.read_next() {
        Ok((FrameType::Error, payload)) => {
            let (code, msg) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::ResumeRejected, "{msg}");
        }
        other => panic!("expected resume rejection, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.resumed, 1);
    assert!(stats.resume_rejected >= 1, "{stats:?}");
}

#[test]
fn resume_token_for_wrong_device_is_rejected() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("device-a").expect("opens");
    let v = conn.round(respond_benign(&linked, &w)).expect("round");
    assert!(v.accepted);
    let token = conn.close().expect("token granted");

    // The token's mac binds it to "device-a"; presenting it under a
    // different device name must fail before any session state moves.
    let mut conn = client.resume("device-b", token).expect("TCP connects");
    match conn.read_next() {
        Ok((FrameType::Error, payload)) => {
            let (code, msg) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::ResumeRejected, "{msg}");
        }
        other => panic!("expected resume rejection, got {other:?}"),
    }
    // The rightful device can still resume: the failed attempt did not
    // consume the parked session.
    let mut conn = client.resume("device-a", token).expect("resumes");
    let v = conn.round(respond_benign(&linked, &w)).expect("round");
    assert!(v.accepted);

    let stats = server.shutdown();
    assert_eq!(stats.resumed, 1);
    assert_eq!(stats.resume_rejected, 1);
}

#[test]
fn expired_resume_token_is_rejected() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            resume_ttl: Duration::from_millis(50),
            ..test_config()
        },
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("sleeper").expect("opens");
    let v = conn.round(respond_benign(&linked, &w)).expect("round");
    assert!(v.accepted);
    let token = conn.close().expect("token granted");

    std::thread::sleep(Duration::from_millis(120));
    let mut conn = client.resume("sleeper", token).expect("TCP connects");
    match conn.read_next() {
        Ok((FrameType::Error, payload)) => {
            let (code, msg) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::ResumeRejected, "{msg}");
            assert!(msg.contains("expired"), "got {msg:?}");
        }
        other => panic!("expected expired-token rejection, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.resume_rejected, 1);
}

#[test]
fn window_is_clamped_and_overrun_is_rejected() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            window: 2,
            ..test_config()
        },
    )
    .expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            window: 64,
            ..ClientConfig::default()
        },
    );
    let respond = respond_benign(&linked, &w);

    // The server grants only its cap: exactly two challenges arrive
    // before any attest is answered.
    let mut conn = client.open("greedy").expect("opens");
    let (ft, p1) = conn.read_next().expect("first challenge");
    assert_eq!(ft, FrameType::Challenge);
    let (ft, p2) = conn.read_next().expect("second challenge");
    assert_eq!(ft, FrameType::Challenge);
    assert_eq!(conn.granted_window(), 2, "window clamped to the server cap");

    let c1 = rap_serve::frame::decode_challenge(&p1).unwrap();
    let c2 = rap_serve::frame::decode_challenge(&p2).unwrap();
    // Write ahead the full window, plus one round beyond it answered
    // against a challenge the server never issued.
    for chal in [c1, c2, Challenge::from_seed(99)] {
        conn.send_raw(&encode_frame(
            FrameType::Attest,
            &rap_track::encode_stream(&respond(chal)),
        ))
        .expect("writes");
    }
    // In-window rounds verify; the overrun round mismatches the next
    // issued challenge and is rejected — write-ahead past the granted
    // window buys nothing.
    let mut verdicts = Vec::new();
    while verdicts.len() < 3 {
        match conn.read_next().expect("response") {
            (FrameType::Verdict, payload) => {
                verdicts.push(rap_serve::Verdict::decode(&payload).unwrap())
            }
            (FrameType::Challenge, _) => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(verdicts[0].accepted && verdicts[1].accepted, "{verdicts:?}");
    assert!(!verdicts[2].accepted, "overrun round must reject");
    assert!(
        verdicts[2].detail.starts_with("violation: "),
        "got {:?}",
        verdicts[2].detail
    );
    server.shutdown();
}

#[test]
fn out_of_order_responses_are_rejected() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            window: 2,
            ..ClientConfig::default()
        },
    );
    let respond = respond_benign(&linked, &w);

    let mut conn = client.open("reorder").expect("opens");
    let (_, p1) = conn.read_next().expect("first challenge");
    let (_, p2) = conn.read_next().expect("second challenge");
    let c1 = rap_serve::frame::decode_challenge(&p1).unwrap();
    let c2 = rap_serve::frame::decode_challenge(&p2).unwrap();

    // Answer the window in reverse: each response meets the wrong
    // front-of-window challenge and must be rejected.
    for chal in [c2, c1] {
        conn.send_raw(&encode_frame(
            FrameType::Attest,
            &rap_track::encode_stream(&respond(chal)),
        ))
        .expect("writes");
    }
    let mut rejected = 0;
    while rejected < 2 {
        match conn.read_next().expect("response") {
            (FrameType::Verdict, payload) => {
                let v = rap_serve::Verdict::decode(&payload).unwrap();
                assert!(!v.accepted, "out-of-order response must reject: {v:?}");
                assert!(v.detail.starts_with("violation: "), "got {:?}", v.detail);
                rejected += 1;
            }
            (FrameType::Challenge, _) => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.verdicts_rejected, 2);
    assert_eq!(stats.verdicts_accepted, 0);
}

#[test]
fn drain_with_full_pipeline_in_flight_flushes_verdicts() {
    let (linked, w) = deployed();
    let server =
        Server::start(test_verifier(&linked), "127.0.0.1:0", test_config()).expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            window: 4,
            ..ClientConfig::default()
        },
    );
    let respond = respond_benign(&linked, &w);

    // Fill the whole window without reading a single verdict.
    let mut conn = client.open("drainee").expect("opens");
    for _ in 0..4 {
        let (ft, payload) = conn.read_next().expect("challenge");
        assert_eq!(ft, FrameType::Challenge);
        let chal = rap_serve::frame::decode_challenge(&payload).unwrap();
        conn.send_raw(&encode_frame(
            FrameType::Attest,
            &rap_track::encode_stream(&respond(chal)),
        ))
        .expect("writes");
    }
    // Guarantee the pipeline is in flight server-side, then drain.
    let (ft, payload) = conn.read_next().expect("first verdict");
    assert_eq!(ft, FrameType::Verdict);
    assert!(rap_serve::Verdict::decode(&payload).unwrap().accepted);

    let drainer = std::thread::spawn(move || server.shutdown());
    // Every verdict already in flight must still arrive, in order,
    // before the draining error (or EOF) ends the connection.
    let mut verdicts = 1;
    loop {
        match conn.read_next() {
            Ok((FrameType::Verdict, payload)) => {
                assert!(rap_serve::Verdict::decode(&payload).unwrap().accepted);
                verdicts += 1;
            }
            Ok((FrameType::Challenge, _)) => {}
            Ok((FrameType::Error, payload)) => {
                let (code, _) = decode_error(&payload).expect("error decodes");
                assert_eq!(code, ErrorCode::Draining);
                break;
            }
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(_) => break, // reset/EOF after the drain is also a close
        }
    }
    assert_eq!(verdicts, 4, "every in-flight round drained to a verdict");

    let stats = drainer.join().expect("drain completes");
    assert_eq!(stats.verdicts_accepted, 4);
}

#[test]
fn failed_error_sends_are_counted_separately() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(2),
            ..test_config()
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    // Each iteration provokes exactly one ERROR send attempt (bad
    // magic → protocol error) with the peer already gone: unread
    // challenge bytes in our receive buffer turn the close into a TCP
    // reset, so the server's reply write fails. The reset races the
    // server's read, so retry until at least one send attempt fails.
    let mut attempts = 0u64;
    for _ in 0..40 {
        attempts += 1;
        let client = AttestClient::new(
            addr.to_string(),
            ClientConfig {
                retries: 0,
                ..ClientConfig::default()
            },
        );
        let mut conn = client.open("goner").expect("opens");
        // Let the SESSION + CHALLENGE frames land unread in our
        // receive buffer, then break the protocol and vanish.
        std::thread::sleep(Duration::from_millis(30));
        let _ = conn.send_raw(b"XXXXXXXXXXXXXXXXXXXX");
        drop(conn);
        std::thread::sleep(Duration::from_millis(30));
        if server.stats().error_send_failed >= 1 {
            break;
        }
    }

    // Wait until the server has resolved every send attempt.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = server.stats();
        if stats.errors_sent + stats.error_send_failed >= attempts || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        stats.errors_sent + stats.error_send_failed,
        attempts,
        "every send attempt is counted exactly once: {stats:?}"
    );
    assert!(
        stats.error_send_failed >= 1,
        "a reply to a gone peer must count as failed, not sent: {stats:?}"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Telemetry plane: trace propagation, mid-load scraping, exemplar ring.
// ---------------------------------------------------------------------------

/// A [`ServerConfig`] with the admin telemetry listener enabled.
fn admin_config(threshold: Duration) -> ServerConfig {
    ServerConfig {
        admin_addr: Some("127.0.0.1:0".to_string()),
        slow_round_threshold: threshold,
        ..test_config()
    }
}

/// One fresh admin connection fetching the exemplar document.
fn scrape_exemplars(addr: std::net::SocketAddr) -> Json {
    let body = AdminClient::new(addr.to_string())
        .connect()
        .expect("admin connects")
        .exemplars()
        .expect("exemplars fetch");
    rap_obs::json::parse(&body).expect("exemplars JSON parses")
}

/// One fresh admin connection fetching the telemetry JSON document.
fn scrape_telemetry(addr: std::net::SocketAddr) -> Json {
    let body = AdminClient::new(addr.to_string())
        .connect()
        .expect("admin connects")
        .stats(StatsFormat::Json)
        .expect("stats fetch");
    rap_obs::json::parse(&body).expect("telemetry JSON parses")
}

/// Exemplar finalization lands just *after* the verdict batch hits the
/// wire, so a client that has read its verdicts can race the server's
/// bookkeeping by a few microseconds — poll until `pred` holds.
fn wait_for(mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "telemetry did not settle in 10s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn every_stage_span_carries_the_round_trace_id() {
    const ROUNDS: usize = 4;
    let (linked, w) = deployed();
    // Threshold zero: every round exceeds it (record uses a strict
    // `>`), so the ring retains a full span tree per round.
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        admin_config(Duration::ZERO),
    )
    .expect("binds");
    let admin = server.admin_addr().expect("admin listener bound");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("traced-0").expect("opens");
    let verdicts = conn
        .pipelined(ROUNDS, respond_benign(&linked, &w))
        .expect("rounds run");
    assert!(verdicts.iter().all(|v| v.accepted));
    let _ = conn.close();

    wait_for(|| {
        scrape_exemplars(admin)
            .get("retained")
            .and_then(Json::as_u64)
            .expect("retained count")
            >= ROUNDS as u64
    });
    let doc = scrape_exemplars(admin);
    assert_eq!(doc.get("threshold_ns").and_then(Json::as_u64), Some(0));
    let exemplars = doc
        .get("exemplars")
        .and_then(Json::as_array)
        .expect("exemplars array");
    assert_eq!(exemplars.len(), ROUNDS);

    let mut seen_ids = std::collections::HashSet::new();
    for ex in exemplars {
        let trace_id = ex.get("trace_id").and_then(Json::as_u64).expect("trace_id");
        assert!(trace_id > 0, "trace ids are minted from 1");
        assert!(
            seen_ids.insert(trace_id),
            "trace ids are distinct across rounds"
        );
        assert_eq!(ex.get("device").and_then(Json::as_str), Some("traced-0"));
        assert_eq!(ex.get("accepted"), Some(&Json::Bool(true)));
        assert!(ex.get("total_ns").and_then(Json::as_u64).unwrap() > 0);

        // The span tree covers the whole pipeline in stage order, and
        // every span carries the round's trace id.
        let spans = ex.get("spans").and_then(Json::as_array).expect("spans");
        let stages: Vec<&str> = spans
            .iter()
            .map(|s| s.get("stage").and_then(Json::as_str).expect("stage name"))
            .collect();
        assert_eq!(
            stages,
            ["accept", "dispatch", "shard_queue", "replay", "flush"],
            "complete accept→verdict span tree in pipeline order"
        );
        for span in spans {
            assert_eq!(
                span.get("trace_id").and_then(Json::as_u64),
                Some(trace_id),
                "every stage span carries the round's trace id"
            );
        }
    }
    server.shutdown();
}

#[test]
fn mid_load_admin_scrapes_are_monotonic_and_consistent() {
    const DEVICES: [&str; 3] = ["scrape-a", "scrape-b", "scrape-c"];
    const ROUNDS_EACH: usize = 4;
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        admin_config(Duration::from_millis(5)),
    )
    .expect("binds");
    let admin = server.admin_addr().expect("admin listener bound");
    let addr = server.local_addr();

    let load = {
        let linked = linked.clone();
        std::thread::spawn(move || {
            let client = quick_client(addr);
            for device in DEVICES {
                let mut conn = client.open(device).expect("opens");
                let verdicts = conn
                    .pipelined(ROUNDS_EACH, respond_benign(&linked, &w))
                    .expect("rounds run");
                assert!(verdicts.iter().all(|v| v.accepted));
                let _ = conn.close();
            }
        })
    };

    // Scrape while the load runs: every counter in the `server` block
    // (and the uptime clock) must be monotonic non-decreasing across
    // consecutive snapshots.
    let counters_of = |doc: &Json| -> Vec<(String, u64)> {
        let mut out = vec![(
            "uptime_ns".to_string(),
            doc.get("uptime_ns").and_then(Json::as_u64).unwrap(),
        )];
        for (name, value) in doc.get("server").and_then(Json::entries).expect("server") {
            out.push((name.clone(), value.as_u64().expect("counter is a uint")));
        }
        out
    };
    let mut snapshots = vec![counters_of(&scrape_telemetry(admin))];
    while !load.is_finished() {
        snapshots.push(counters_of(&scrape_telemetry(admin)));
        std::thread::sleep(Duration::from_millis(2));
    }
    load.join().expect("load completes");
    snapshots.push(counters_of(&scrape_telemetry(admin)));
    assert!(snapshots.len() >= 2, "at least one mid-load scrape pair");
    for pair in snapshots.windows(2) {
        for ((name, prev), (_, cur)) in pair[0].iter().zip(pair[1].iter()) {
            assert!(
                cur >= prev,
                "{name} went backwards across scrapes: {prev} -> {cur}"
            );
        }
    }

    // After the load quiesces the per-device table must agree with the
    // verdicts the clients actually received: ROUNDS_EACH accepted
    // rounds per device, nothing rejected, nothing resumed.
    wait_for(|| {
        let doc = scrape_telemetry(admin);
        let devices = doc.get("devices").and_then(Json::entries).expect("devices");
        devices
            .iter()
            .map(|(_, d)| d.get("rounds").and_then(Json::as_u64).unwrap())
            .sum::<u64>()
            >= (DEVICES.len() * ROUNDS_EACH) as u64
    });
    let doc = scrape_telemetry(admin);
    let devices = doc.get("devices").and_then(Json::entries).expect("devices");
    assert_eq!(devices.len(), DEVICES.len());
    for device in DEVICES {
        let row = doc
            .get("devices")
            .and_then(|d| d.get(device))
            .unwrap_or_else(|| panic!("device {device} has a table row"));
        assert_eq!(
            row.get("rounds").and_then(Json::as_u64),
            Some(ROUNDS_EACH as u64),
            "{device} rounds match delivered verdicts"
        );
        assert_eq!(row.get("rejects").and_then(Json::as_u64), Some(0));
        assert_eq!(row.get("resumes").and_then(Json::as_u64), Some(0));
        assert!(row.get("last_seen_ns").and_then(Json::as_u64).unwrap() > 0);
        assert!(
            row.get("p99_ns").and_then(Json::as_u64).unwrap() > 0,
            "{device} has a bucket-estimated p99"
        );
    }
    server.shutdown();
}

#[test]
fn exemplar_ring_retains_only_rounds_above_threshold() {
    let (linked, w) = deployed();

    // An hour-long threshold: loopback rounds are all counted but none
    // qualifies as slow, so the ring stays empty.
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        admin_config(Duration::from_secs(3600)),
    )
    .expect("binds");
    let admin = server.admin_addr().expect("admin listener bound");
    let client = quick_client(server.local_addr());
    let verdict = client
        .attest_once("fast-0", respond_benign(&linked, &w))
        .expect("round completes");
    assert!(verdict.accepted);
    wait_for(|| {
        scrape_exemplars(admin)
            .get("rounds_seen")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    });
    let doc = scrape_exemplars(admin);
    assert_eq!(doc.get("retained").and_then(Json::as_u64), Some(0));
    assert_eq!(
        doc.get("exemplars").and_then(Json::as_array).unwrap().len(),
        0,
        "no round beats an hour-long threshold"
    );
    server.shutdown();

    // Threshold zero: the same round qualifies and is retained.
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        admin_config(Duration::ZERO),
    )
    .expect("binds");
    let admin = server.admin_addr().expect("admin listener bound");
    let client = quick_client(server.local_addr());
    let verdict = client
        .attest_once("slow-0", respond_benign(&linked, &w))
        .expect("round completes");
    assert!(verdict.accepted);
    wait_for(|| {
        scrape_exemplars(admin)
            .get("retained")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    });
    server.shutdown();
}

#[test]
fn device_table_evicts_lru_beyond_cap_and_counts_evictions() {
    const CAP: usize = 4;
    const OVERFLOW: usize = 3;
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            device_table_cap: CAP,
            ..admin_config(Duration::from_secs(3600))
        },
    )
    .expect("binds");
    let admin = server.admin_addr().expect("admin listener bound");
    let client = quick_client(server.local_addr());
    let evictions_before = rap_obs::counter!("admin_device_table_evictions_total").get();

    // cap + K distinct devices, one accepted round each, in order —
    // the first K rows are the coldest and must be the ones evicted.
    let names: Vec<String> = (0..CAP + OVERFLOW).map(|i| format!("lru-{i}")).collect();
    for name in &names {
        let verdict = client
            .attest_once(name, respond_benign(&linked, &w))
            .expect("round completes");
        assert!(verdict.accepted);
    }

    wait_for(|| {
        // Device rows land at verdict flush; wait until the *last*
        // registered device is visible.
        scrape_telemetry(admin)
            .get("devices")
            .and_then(Json::entries)
            .is_some_and(|rows| rows.iter().any(|(n, _)| n == names.last().unwrap()))
    });
    let doc = scrape_telemetry(admin);
    let rows = doc
        .get("devices")
        .and_then(Json::entries)
        .expect("devices table present");
    assert_eq!(
        rows.len(),
        CAP,
        "table capped at {CAP}: {:?}",
        rows.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );
    for survivor in &names[OVERFLOW..] {
        assert!(
            rows.iter().any(|(n, _)| n == survivor),
            "most-recently-touched device {survivor} must survive"
        );
    }
    for evicted in &names[..OVERFLOW] {
        assert!(
            !rows.iter().any(|(n, _)| n == evicted),
            "least-recently-touched device {evicted} must be evicted"
        );
    }
    let evicted_total =
        rap_obs::counter!("admin_device_table_evictions_total").get() - evictions_before;
    assert!(
        evicted_total >= OVERFLOW as u64,
        "evictions counted: {evicted_total}"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Proof-carrying verdicts: the typed round hook and the audit log.
// ---------------------------------------------------------------------------

fn audit_tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rap-serve-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn round_hook_delivers_sealed_records_matching_wire_verdicts() {
    let (linked, w) = deployed();
    let verifier = test_verifier(&linked);
    let seal_key = verifier.verdict_seal_key();

    let seen: std::sync::Arc<std::sync::Mutex<Vec<(String, rap_track::VerdictRecord)>>> =
        std::sync::Arc::default();
    let sink = std::sync::Arc::clone(&seen);
    let config = ServerConfig {
        round_hook: Some(rap_serve::RoundHook::new(move |event| {
            let rap_serve::RoundEvent::Verdict { device, record } = event else {
                return;
            };
            sink.lock().unwrap().push((device.clone(), record.clone()));
        })),
        ..test_config()
    };
    let server = Server::start(verifier, "127.0.0.1:0", config).expect("binds");
    let client = quick_client(server.local_addr());

    let ok = client
        .attest_once("device-0", respond_benign(&linked, &w))
        .expect("benign round");
    let bad = client
        .attest_once("attacker-0", respond_forged(&linked, &w))
        .expect("forged round");
    server.shutdown();

    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 2, "one event per round");
    for (device, record) in seen.iter() {
        assert_eq!(&record.fields.device, device);
        assert!(
            record.authenticate(&seal_key),
            "server-sealed record authenticates under the derived seal key"
        );
    }
    // The wire frame is a pure view of the sealed record: deriving it
    // again from the hook's record reproduces what the client decoded.
    assert_eq!(rap_serve::Verdict::from_record(&seen[0].1), ok);
    assert_eq!(rap_serve::Verdict::from_record(&seen[1].1), bad);
    assert!(seen[0].1.accepted() && !seen[1].1.accepted());
}

#[test]
#[allow(deprecated)]
fn deprecated_bool_hook_still_fires_alongside_round_hook() {
    let (linked, w) = deployed();
    let bools: std::sync::Arc<std::sync::Mutex<Vec<(String, bool)>>> = std::sync::Arc::default();
    let events = std::sync::Arc::new(AtomicU64::new(0));
    let bool_sink = std::sync::Arc::clone(&bools);
    let event_sink = std::sync::Arc::clone(&events);
    let config = ServerConfig {
        verdict_hook: Some(rap_serve::VerdictHook::new(move |device, accepted| {
            bool_sink
                .lock()
                .unwrap()
                .push((device.to_string(), accepted));
        })),
        round_hook: Some(rap_serve::RoundHook::new(move |_| {
            event_sink.fetch_add(1, Ordering::Relaxed);
        })),
        ..test_config()
    };
    let server = Server::start(test_verifier(&linked), "127.0.0.1:0", config).expect("binds");
    let client = quick_client(server.local_addr());
    client
        .attest_once("device-0", respond_benign(&linked, &w))
        .expect("round");
    server.shutdown();

    assert_eq!(
        bools.lock().unwrap().as_slice(),
        &[("device-0".to_string(), true)]
    );
    assert_eq!(events.load(Ordering::Relaxed), 1);
}

#[test]
fn audit_log_chains_every_served_round_and_detects_tamper() {
    let (linked, w) = deployed();
    let verifier = test_verifier(&linked);
    let seal_key = verifier.verdict_seal_key();
    let path = audit_tmp("served.ralog");
    std::fs::remove_file(&path).ok();

    let config = ServerConfig {
        audit_log: Some(path.clone()),
        ..test_config()
    };
    let server = Server::start(verifier, "127.0.0.1:0", config).expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("device-0").expect("connects");
    let verdicts = conn
        .pipelined(4, respond_benign(&linked, &w))
        .expect("pipelined rounds");
    assert_eq!(verdicts.len(), 4);
    drop(conn);
    client
        .attest_once("attacker-0", respond_forged(&linked, &w))
        .expect("forged round");
    server.shutdown();

    let report = rap_audit::ChainVerifier::with_seal_key(seal_key)
        .verify_file(&path)
        .expect("log readable");
    assert!(report.ok(), "clean chain, got {:?}", report.first_break);
    assert_eq!(report.entries, 5, "every served round is in the chain");

    // One flipped byte anywhere must surface as a typed first break.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let report = rap_audit::ChainVerifier::new()
        .verify_file(&path)
        .expect("log readable");
    assert!(!report.ok(), "tampered chain must not verify");
}

#[test]
fn tampered_audit_log_refuses_server_start() {
    let (linked, w) = deployed();
    let path = audit_tmp("tamper-start.ralog");
    std::fs::remove_file(&path).ok();
    {
        let config = ServerConfig {
            audit_log: Some(path.clone()),
            ..test_config()
        };
        let server = Server::start(test_verifier(&linked), "127.0.0.1:0", config).expect("binds");
        quick_client(server.local_addr())
            .attest_once("device-0", respond_benign(&linked, &w))
            .expect("round");
        server.shutdown();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0x80; // complete frame, corrupted hash: tamper, not crash
    std::fs::write(&path, &bytes).unwrap();

    match Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            audit_log: Some(path),
            ..test_config()
        },
    ) {
        Err(StartError::Audit(e)) => {
            assert!(e.to_string().contains("tampered"), "typed open error: {e}");
        }
        other => panic!("expected StartError::Audit, got {:?}", other.map(|_| ())),
    }
}
