//! Loopback integration tests: real TCP connections on 127.0.0.1
//! against a real [`Server`], covering benign devices, attack
//! workloads, malformed and oversized frames, slow-loris partial
//! writes, busy shedding, concurrent mixed clients, and
//! drain-during-load. Every failure mode must surface as a typed
//! verdict or error — no connection ever observes a panic or an
//! unbounded hang.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rap_serve::frame::{decode_error, encode_frame};
use rap_serve::{
    AttestClient, ClientConfig, ClientError, ErrorCode, FrameType, Server, ServerConfig,
};
use rap_track::{CfaEngine, Challenge, EngineConfig, Key, Report, Verifier};

/// The deployed application every test device runs: the `fibcall`
/// evaluation workload (calls + a runtime-variable loop, so the
/// CF_Log is non-trivial but verification stays fast).
fn deployed() -> (rap_link::LinkedProgram, workloads::Workload) {
    let w = workloads::by_name("fibcall").expect("fibcall workload exists");
    let linked =
        rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).expect("workload links");
    (linked, w)
}

fn test_key() -> Key {
    rap_track::device_key("loopback")
}

fn test_verifier(linked: &rap_link::LinkedProgram) -> Verifier {
    Verifier::builder()
        .key(test_key())
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("all builder fields set")
}

/// Produces a benign signed report stream for `chal`.
fn respond_benign(
    linked: &rap_link::LinkedProgram,
    w: &workloads::Workload,
) -> impl Fn(Challenge) -> Vec<Report> {
    let linked = linked.clone();
    let attach = w.attach;
    let max_instrs = w.max_instrs;
    move |chal| {
        let engine = CfaEngine::new(test_key());
        let mut machine = mcu_sim::Machine::new(linked.image.clone());
        attach(&mut machine);
        engine
            .attest(
                &mut machine,
                &linked.map,
                chal,
                EngineConfig {
                    max_instrs: max_instrs * 2,
                    watermark: Some(256),
                },
            )
            .expect("benign attestation runs")
            .reports
    }
}

/// Produces a forged stream: the strongest adversary (holds the key)
/// redirects one MTB packet and re-signs — authentication passes,
/// replay must reject.
fn respond_forged(
    linked: &rap_link::LinkedProgram,
    w: &workloads::Workload,
) -> impl Fn(Challenge) -> Vec<Report> {
    let benign = respond_benign(linked, w);
    move |chal| {
        let mut reports = benign(chal);
        let seq = reports
            .iter()
            .position(|r| !r.log.mtb.is_empty())
            .expect("some report has MTB packets");
        let mut log = reports[seq].log.clone();
        log.mtb[0].dest ^= 0x40;
        reports[seq] = Report::new(
            &test_key(),
            chal,
            reports[seq].h_mem,
            log,
            seq as u32,
            reports[seq].is_final,
            reports[seq].overflow,
        );
        reports
    }
}

fn quick_client(addr: std::net::SocketAddr) -> AttestClient {
    AttestClient::new(
        addr.to_string(),
        ClientConfig {
            retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            read_timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    )
}

#[test]
fn benign_round_is_accepted() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let verdict = client
        .attest_once("device-0", respond_benign(&linked, &w))
        .expect("round completes");
    assert!(verdict.accepted, "benign evidence accepted: {verdict:?}");
    assert!(verdict.events > 0, "path has events");
    assert!(verdict.steps > 0, "path has steps");

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.verdicts_accepted, 1);
    assert_eq!(stats.verdicts_rejected, 0);
}

#[test]
fn attack_round_is_rejected_with_typed_detail() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let verdict = client
        .attest_once("attacker-0", respond_forged(&linked, &w))
        .expect("round completes (rejection is a verdict, not an error)");
    assert!(!verdict.accepted);
    assert!(
        verdict.detail.starts_with("violation: "),
        "typed violation detail, got {:?}",
        verdict.detail
    );

    let stats = server.shutdown();
    assert_eq!(stats.verdicts_rejected, 1);
}

#[test]
fn rounds_reuse_one_connection_with_fresh_nonces() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("device-0").expect("opens");
    let respond = respond_benign(&linked, &w);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..3 {
        let mut captured = None;
        let verdict = conn
            .round(|chal| {
                captured = Some(chal);
                respond(chal)
            })
            .expect("round completes");
        assert!(verdict.accepted);
        assert!(
            seen.insert(captured.expect("challenge captured").0),
            "nonce repeated across rounds"
        );
    }
    drop(conn);
    let stats = server.shutdown();
    assert_eq!(stats.verdicts_accepted, 3);
    assert_eq!(stats.accepted, 1, "one connection served all rounds");
}

#[test]
fn nonces_are_unique_across_connections() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("binds");
    let client = quick_client(server.local_addr());
    let respond = respond_benign(&linked, &w);

    let mut seen = std::collections::HashSet::new();
    for device in 0..4 {
        let mut captured = None;
        let verdict = client
            .attest_once(&format!("device-{device}"), |chal| {
                captured = Some(chal);
                respond(chal)
            })
            .expect("round completes");
        assert!(verdict.accepted);
        assert!(
            seen.insert(captured.expect("challenge captured").0),
            "nonce repeated across connections"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_attest_payload_gets_rejected_verdict() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let mut conn = client.open("garbler").expect("opens");
    let (ft, _chal) = conn.read_next().expect("challenge arrives");
    assert_eq!(ft, FrameType::Challenge);
    // A well-formed frame whose payload is not a report stream.
    conn.send_raw(&encode_frame(FrameType::Attest, b"not a report stream"))
        .expect("writes");
    match conn.read_next().expect("verdict arrives") {
        (FrameType::Verdict, payload) => {
            let v = rap_serve::Verdict::decode(&payload).expect("verdict decodes");
            assert!(!v.accepted);
            assert!(v.detail.starts_with("wire: "), "got {:?}", v.detail);
        }
        other => panic!("expected verdict, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn bad_magic_and_oversized_frames_get_typed_errors() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            max_frame_len: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    // Bad magic after HELLO → protocol error, close.
    let mut conn = client.open("mangler").expect("opens");
    let _ = conn.read_next().expect("challenge arrives");
    conn.send_raw(b"XXXXXXXXXXXXXXXXXXXX").expect("writes");
    match conn.read_next().expect("error frame arrives") {
        (FrameType::Error, payload) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Protocol);
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Oversized declared length → oversized error, close, before any
    // payload allocation.
    let mut conn = client.open("bloater").expect("opens");
    let _ = conn.read_next().expect("challenge arrives");
    let mut huge = encode_frame(FrameType::Attest, &[]);
    huge[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    conn.send_raw(&huge).expect("writes");
    match conn.read_next().expect("error frame arrives") {
        (FrameType::Error, payload) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Oversized);
        }
        other => panic!("expected error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn slow_loris_partial_write_is_deadline_bounded() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let client = quick_client(server.local_addr());

    let started = Instant::now();
    let mut conn = client.open("loris").expect("opens");
    let _ = conn.read_next().expect("challenge arrives");
    // Half a header, then silence: the server must not wait forever.
    conn.send_raw(b"RAPS\x01").expect("writes");
    match conn.read_next().expect("error frame arrives") {
        (FrameType::Error, payload) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Timeout);
        }
        other => panic!("expected timeout error, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout path must be deadline-bounded"
    );
    server.shutdown();
}

#[test]
fn overload_is_shed_with_busy() {
    let (linked, _w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            max_pending: 1,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let client = AttestClient::new(
        server.local_addr().to_string(),
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    );

    // Occupy the single worker (it blocks reading our ATTEST)...
    let mut held = client.open("holder").expect("opens");
    let _ = held.read_next().expect("challenge arrives");
    std::thread::sleep(Duration::from_millis(50));
    // ...fill the queue with a second connection...
    let queued = client.open("waiter").expect("opens");
    std::thread::sleep(Duration::from_millis(50));
    // ...so a third is shed.
    let mut shed = client.open("shed").expect("TCP connect still succeeds");
    match shed.read_next() {
        Ok((FrameType::Error, payload)) => {
            let (code, _) = decode_error(&payload).expect("error decodes");
            assert_eq!(code, ErrorCode::Busy);
        }
        // The busy frame may race the close; a reset is also a shed.
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        other => panic!("expected busy shed, got {other:?}"),
    }

    // Close both held connections so the drain doesn't wait out the
    // read deadline.
    drop(queued);
    drop(held);
    let stats = server.shutdown();
    assert!(stats.shed >= 1, "at least one connection shed: {stats:?}");
}

/// The acceptance-criteria test: 8 concurrent clients mixing benign,
/// attack, and malformed traffic; every client gets the correct typed
/// verdict, the server drains cleanly, and the whole thing is
/// deadline-bounded.
#[test]
fn eight_concurrent_mixed_clients_then_clean_drain() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    let benign_ok = AtomicU64::new(0);
    let attacks_rejected = AtomicU64::new(0);
    let malformed_rejected = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for i in 0..8u64 {
            let linked = &linked;
            let w = &w;
            let benign_ok = &benign_ok;
            let attacks_rejected = &attacks_rejected;
            let malformed_rejected = &malformed_rejected;
            scope.spawn(move || {
                let client = quick_client(addr);
                match i % 3 {
                    0 => {
                        let v = client
                            .attest_once(&format!("benign-{i}"), respond_benign(linked, w))
                            .expect("benign round completes");
                        assert!(v.accepted, "client {i}: {v:?}");
                        benign_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    1 => {
                        let v = client
                            .attest_once(&format!("attacker-{i}"), respond_forged(linked, w))
                            .expect("attack round completes");
                        assert!(!v.accepted, "client {i}: forged evidence must reject");
                        assert!(v.detail.starts_with("violation: "), "client {i}: {v:?}");
                        attacks_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        let mut conn = client.open(&format!("garbler-{i}")).expect("opens");
                        let (ft, _) = conn.read_next().expect("challenge arrives");
                        assert_eq!(ft, FrameType::Challenge);
                        conn.send_raw(&encode_frame(FrameType::Attest, &[0xEE; 40]))
                            .expect("writes");
                        match conn.read_next().expect("verdict arrives") {
                            (FrameType::Verdict, payload) => {
                                let v = rap_serve::Verdict::decode(&payload).unwrap();
                                assert!(!v.accepted, "client {i}: garbage must reject");
                                assert!(v.detail.starts_with("wire: "), "client {i}: {v:?}");
                            }
                            other => panic!("client {i}: expected verdict, got {other:?}"),
                        }
                        malformed_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let started = Instant::now();
    let stats = server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain must be deadline-bounded"
    );
    assert_eq!(benign_ok.load(Ordering::Relaxed), 3);
    assert_eq!(attacks_rejected.load(Ordering::Relaxed), 3);
    assert_eq!(malformed_rejected.load(Ordering::Relaxed), 2);
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.verdicts_accepted, 3);
    assert_eq!(stats.verdicts_rejected, 5);
}

#[test]
fn drain_during_load_finishes_inflight_rounds() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    let completed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for i in 0..3u64 {
            let linked = &linked;
            let w = &w;
            let completed = &completed;
            scope.spawn(move || {
                let client = AttestClient::new(
                    addr.to_string(),
                    ClientConfig {
                        retries: 0,
                        read_timeout: Duration::from_secs(5),
                        ..ClientConfig::default()
                    },
                );
                let respond = respond_benign(linked, w);
                // Keep attesting until the server goes away.
                for _ in 0..200 {
                    match client.attest_once(&format!("load-{i}"), &respond) {
                        Ok(v) => {
                            assert!(v.accepted);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server { code, .. }) => {
                            assert!(
                                code == ErrorCode::Draining || code == ErrorCode::Busy,
                                "unexpected server error {code}"
                            );
                            break;
                        }
                        Err(_) => break, // refused/reset after drain
                    }
                }
            });
        }

        // Let some rounds complete, then drain under load.
        while completed.load(Ordering::Relaxed) < 2 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let started = Instant::now();
        let stats = server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "drain under load must be deadline-bounded"
        );
        // Rounds finished before and during the drain — nothing was
        // dropped mid-verification.
        assert!(
            stats.verdicts_accepted >= 2,
            "rounds completed before and during drain: {stats:?}"
        );
    });

    assert!(completed.load(Ordering::Relaxed) >= 2);
}

#[test]
fn conn_limit_drains_automatically() {
    let (linked, w) = deployed();
    let server = Server::start(
        test_verifier(&linked),
        "127.0.0.1:0",
        ServerConfig {
            conn_limit: Some(2),
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr();
    let client = quick_client(addr);

    for i in 0..2 {
        let v = client
            .attest_once(&format!("device-{i}"), respond_benign(&linked, &w))
            .expect("round completes");
        assert!(v.accepted);
    }
    let stats = server.join();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.verdicts_accepted, 2);
}
