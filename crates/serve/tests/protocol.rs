//! Protocol-level tests for the service frame format: round-trips for
//! every frame type, typed rejection of malformed headers, truncation
//! at every byte boundary, and structure-aware random mutation reusing
//! the `rap-fuzz` helpers — a malformed frame must always yield a
//! typed [`FrameError`], never a panic.

use rap_fuzz::mutate::mutate_bytes;
use rap_fuzz::rng::Rng;
use rap_serve::frame::{
    decode_challenge, decode_error, decode_frame, decode_hello, decode_resume, decode_session,
    decode_stats_request, encode_error, encode_frame, encode_hello, encode_resume, encode_session,
    encode_stats_request, ErrorCode, FrameError, FrameType, ResumeToken, SessionGrant, StatsFormat,
    Verdict, DEFAULT_MAX_FRAME_LEN, HEADER_LEN, PROTOCOL_VERSION,
};

#[test]
fn every_frame_type_roundtrips() {
    for ft in FrameType::ALL {
        for payload_len in [0usize, 1, 32, 1000] {
            let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
            let bytes = encode_frame(ft, &payload);
            assert_eq!(bytes.len(), HEADER_LEN + payload_len);
            let (frame, used) = decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN)
                .unwrap_or_else(|e| panic!("{ft:?}/{payload_len}: {e}"));
            assert_eq!(used, bytes.len());
            assert_eq!(frame.frame_type, ft);
            assert_eq!(frame.payload, payload);
        }
    }
}

#[test]
fn frames_concatenate_into_a_stream() {
    let mut stream = Vec::new();
    stream.extend(encode_frame(FrameType::Hello, b"device-7"));
    stream.extend(encode_frame(FrameType::Challenge, &[9u8; 32]));
    stream.extend(encode_frame(FrameType::Attest, &[1, 2, 3]));

    let (f1, n1) = decode_frame(&stream, DEFAULT_MAX_FRAME_LEN).unwrap();
    let (f2, n2) = decode_frame(&stream[n1..], DEFAULT_MAX_FRAME_LEN).unwrap();
    let (f3, n3) = decode_frame(&stream[n1 + n2..], DEFAULT_MAX_FRAME_LEN).unwrap();
    assert_eq!(n1 + n2 + n3, stream.len());
    assert_eq!(
        [f1.frame_type, f2.frame_type, f3.frame_type],
        [FrameType::Hello, FrameType::Challenge, FrameType::Attest]
    );
}

#[test]
fn bad_magic_rejected() {
    let mut bytes = encode_frame(FrameType::Hello, b"x");
    bytes[0] ^= 0x20;
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::BadMagic)
    );
    // A report-stream frame ("RAPR") on the service socket is rejected
    // at the first header — the magics are deliberately distinct.
    let mut raw_report_stream = encode_frame(FrameType::Hello, b"x");
    raw_report_stream[..4].copy_from_slice(b"RAPR");
    assert_eq!(
        decode_frame(&raw_report_stream, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::BadMagic)
    );
}

#[test]
fn bad_version_rejected() {
    let mut bytes = encode_frame(FrameType::Hello, b"x");
    bytes[4] = PROTOCOL_VERSION + 1;
    assert_eq!(
        decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::BadVersion {
            found: PROTOCOL_VERSION + 1
        })
    );
}

#[test]
fn unknown_frame_type_rejected() {
    // 8 and 9 became STATS/EXEMPLARS when the admin plane landed; the
    // first unassigned type byte is now 10.
    for bad in [0u8, 10, 0xFF] {
        let mut bytes = encode_frame(FrameType::Hello, b"x");
        bytes[5] = bad;
        assert_eq!(
            decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::BadType { found: bad })
        );
    }
}

#[test]
fn oversized_length_rejected_without_allocation() {
    // The declared length is checked against the cap before the
    // payload is touched, so even u32::MAX cannot force an allocation.
    let mut bytes = encode_frame(FrameType::Attest, &[]);
    for len in [1025u32, 1 << 20, u32::MAX] {
        bytes[6..10].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes, 1024),
            Err(FrameError::Oversized { len, max: 1024 })
        );
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_typed() {
    for ft in FrameType::ALL {
        let bytes = encode_frame(ft, &[0xC3; 48]);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_LEN) {
                Err(FrameError::Truncated { offset }) => {
                    assert!(offset <= cut, "offset {offset} past cut {cut}")
                }
                other => panic!("{ft:?} cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn random_mutations_never_panic_and_always_type() {
    // Structure-aware byte mutation from the fuzzing crate: every
    // mutant either still decodes or yields a typed FrameError.
    let mut rng = Rng::new(0x5EBE);
    let base = encode_frame(FrameType::Attest, &[0x11; 64]);
    for _ in 0..2000 {
        let (mutant, _kind) = mutate_bytes(&mut rng, &base);
        let _ = decode_frame(&mutant, DEFAULT_MAX_FRAME_LEN);
        // Reaching here without a panic is the property; decode
        // success is allowed (some mutations only touch the payload).
    }
}

#[test]
fn verdict_payload_roundtrip_and_typed_rejection() {
    let v = Verdict {
        accepted: false,
        events: 0,
        steps: 0,
        detail: "violation: return mismatch".to_string(),
    };
    assert_eq!(Verdict::decode(&v.encode()).unwrap(), v);

    // Shorter than the fixed fields → typed error at every length.
    let full = v.encode();
    for cut in 0..13.min(full.len()) {
        assert!(matches!(
            Verdict::decode(&full[..cut]),
            Err(FrameError::BadPayload { .. })
        ));
    }
    // Non-UTF-8 detail.
    let mut bad = v.encode();
    bad.push(0xFF);
    bad.push(0xFE);
    assert!(matches!(
        Verdict::decode(&bad),
        Err(FrameError::BadPayload { .. })
    ));
}

#[test]
fn error_payload_roundtrip_and_typed_rejection() {
    for code in [
        ErrorCode::Busy,
        ErrorCode::Protocol,
        ErrorCode::Oversized,
        ErrorCode::Timeout,
        ErrorCode::Draining,
        ErrorCode::Internal,
        ErrorCode::ResumeRejected,
    ] {
        let payload = encode_error(code, "detail text");
        assert_eq!(
            decode_error(&payload).unwrap(),
            (code, "detail text".to_string())
        );
    }
    assert!(matches!(
        decode_error(&[]),
        Err(FrameError::BadPayload { .. })
    ));
    assert!(matches!(
        decode_error(&[0x77, b'm']),
        Err(FrameError::BadPayload { .. })
    ));
}

#[test]
fn handshake_frame_mutants_never_panic_and_always_type() {
    // 2000 structure-aware mutants over the v2 handshake frames —
    // 1000 RESUME and 1000 SESSION. Every mutant either still decodes
    // or yields a typed FrameError, at both the frame layer and the
    // payload decoders; reaching the end without a panic is the
    // property.
    let token = ResumeToken {
        id: 0x1122_3344_5566_7788,
        mac: [0xAB; 32],
    };
    let resume_base = encode_frame(FrameType::Resume, &encode_resume(&token, 4, "device-7"));
    let session_base = encode_frame(
        FrameType::Session,
        &encode_session(&SessionGrant { token, window: 4 }),
    );
    let mut rng = Rng::new(0xA77E57);
    for base in [&resume_base, &session_base] {
        for _ in 0..1000 {
            let (mutant, _kind) = mutate_bytes(&mut rng, base);
            if let Ok((frame, _used)) = decode_frame(&mutant, DEFAULT_MAX_FRAME_LEN) {
                match frame.frame_type {
                    FrameType::Resume => {
                        let _ = decode_resume(&frame.payload);
                    }
                    FrameType::Session => {
                        let _ = decode_session(&frame.payload);
                    }
                    FrameType::Hello => {
                        let _ = decode_hello(&frame.payload);
                    }
                    _ => {}
                }
            }
        }
    }
}

#[test]
fn admin_frame_mutants_never_panic_and_always_type() {
    // Same harness as the handshake mutants, over the admin plane's
    // frames: 1000 mutants each of a STATS request (both formats) and
    // an EXEMPLARS request. Decoded STATS payloads are routed through
    // decode_stats_request; reaching the end without a panic is the
    // property.
    let stats_prom = encode_frame(
        FrameType::Stats,
        &encode_stats_request(StatsFormat::Prometheus),
    );
    let stats_json = encode_frame(FrameType::Stats, &encode_stats_request(StatsFormat::Json));
    let exemplars = encode_frame(FrameType::Exemplars, &[]);
    let mut rng = Rng::new(0xADB11);
    for base in [&stats_prom, &stats_json, &exemplars] {
        for _ in 0..1000 {
            let (mutant, _kind) = mutate_bytes(&mut rng, base);
            if let Ok((frame, _used)) = decode_frame(&mutant, DEFAULT_MAX_FRAME_LEN) {
                if frame.frame_type == FrameType::Stats {
                    let _ = decode_stats_request(&frame.payload);
                }
            }
        }
    }
}

#[test]
fn stats_request_roundtrips_and_rejects() {
    for format in [StatsFormat::Prometheus, StatsFormat::Json] {
        let frame_bytes = encode_frame(FrameType::Stats, &encode_stats_request(format));
        let (frame, _) = decode_frame(&frame_bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(frame.frame_type, FrameType::Stats);
        assert_eq!(decode_stats_request(&frame.payload).unwrap(), format);
    }
    for bad in [&[][..], &[2][..], &[0, 1][..]] {
        assert!(matches!(
            decode_stats_request(bad),
            Err(FrameError::BadPayload { .. })
        ));
    }
}

#[test]
fn hello_resume_session_payloads_roundtrip() {
    let (window, device) = decode_hello(&encode_hello(9, "dev-α")).unwrap();
    assert_eq!((window, device.as_str()), (9, "dev-α"));

    let token = ResumeToken {
        id: 7,
        mac: [0x5C; 32],
    };
    let (got_token, got_window, got_device) =
        decode_resume(&encode_resume(&token, 3, "dev-α")).unwrap();
    assert_eq!(
        (got_token, got_window, got_device.as_str()),
        (token, 3, "dev-α")
    );

    let grant = SessionGrant { token, window: 3 };
    assert_eq!(decode_session(&encode_session(&grant)).unwrap(), grant);
}

#[test]
fn challenge_payload_must_be_exactly_32_bytes() {
    assert!(decode_challenge(&[7u8; 32]).is_ok());
    for len in [0usize, 31, 33] {
        assert!(matches!(
            decode_challenge(&vec![7u8; len]),
            Err(FrameError::BadPayload { .. })
        ));
    }
}
