//! Pocket Geiger counter (`ArduinoPocketGeiger`).
//!
//! Samples a radiation pulse counter over fixed windows, maintains an
//! 8-slot history ring, recomputes counts-per-minute each window and
//! fires a registered callback — through a function pointer, as the
//! library's `registerRadiationCallback` does — when CPM crosses the
//! alarm threshold.
//!
//! Control-flow profile: a general outer sampling loop, fully static
//! inner loops (history summation — elided by RAP-Track), a threshold
//! conditional and an **indirect call** per alarm.

use armv8m_isa::{Asm, Module, Reg};
use mcu_sim::Machine;

use crate::devices::{bases, Lcg, StreamSensor};
use crate::{Workload, SCRATCH_BUF};

/// Sampling windows processed.
pub const WINDOWS: u16 = 30;
/// CPM threshold that triggers the alarm callback.
pub const ALARM_CPM: u16 = 120;

/// RAM slot holding the alarm callback pointer.
const CALLBACK_PTR: u32 = SCRATCH_BUF;
/// History ring buffer (8 words) and its index cell.
const HISTORY: u32 = SCRATCH_BUF + 0x10;
const HISTORY_IDX: u32 = SCRATCH_BUF + 0x40;

fn module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R7, 0); // checksum
    a.movi(R5, 0); // alarms fired
                   // Register the alarm callback (function pointer in RAM).
    a.mov32(R6, CALLBACK_PTR);
    a.load_addr(R0, "alarm_blink");
    a.str_(R0, R6, 0);
    a.movi(R4, WINDOWS);
    a.label("window_loop");
    a.bl("sample_window"); // r0 = pulses this window
    a.add(R7, R7, R0);
    a.bl("update_history");
    a.bl("compute_cpm"); // r0 = counts per minute
    a.cmpi(R0, ALARM_CPM);
    a.blt("calm");
    // Alarm: dispatch through the registered callback.
    a.mov32(R6, CALLBACK_PTR);
    a.ldr(R3, R6, 0);
    a.blx(R3);
    a.label("calm");
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("window_loop");
    a.lsl(R5, R5, 12);
    a.add(R7, R7, R5);
    a.halt();

    // sample_window: read the pulse-counter delta register.
    a.func("sample_window");
    a.mov32(R1, bases::GEIGER);
    a.ldr(R0, R1, 0);
    a.ret();

    // update_history: history[idx & 7] = r0; idx += 1.
    a.func("update_history");
    a.mov32(R1, HISTORY_IDX);
    a.ldr(R2, R1, 0);
    a.movi(R3, 7);
    a.and(R3, R2, R3);
    a.lsl(R3, R3, 2);
    a.mov32(R1, HISTORY);
    a.add(R1, R1, R3);
    a.str_(R0, R1, 0);
    a.mov32(R1, HISTORY_IDX);
    a.addi(R2, R2, 1);
    a.str_(R2, R1, 0);
    a.ret();

    // compute_cpm: sum the 8 history slots (fully static loop) and
    // scale: cpm = sum * 60 / 8.
    a.func("compute_cpm");
    a.movi(R0, 0); // sum
    a.mov32(R1, HISTORY);
    a.movi(R2, 8); // static counter
    a.label("sum_loop");
    a.ldr(R3, R1, 0);
    a.add(R0, R0, R3);
    a.addi(R1, R1, 4);
    a.subi(R2, R2, 1);
    a.cmpi(R2, 0);
    a.bne("sum_loop");
    a.movi(R1, 60);
    a.mul(R0, R0, R1);
    a.movi(R1, 8);
    a.udiv(R0, R0, R1);
    a.ret();

    // alarm_blink: the registered radiation callback.
    a.func("alarm_blink");
    a.addi(R5, R5, 1);
    a.mov32(R1, bases::GEIGER);
    a.movi(R2, 0xFF);
    a.str_(R2, R1, 4); // pulse the LED register
    a.ret();

    a.into_module()
}

fn attach(machine: &mut Machine) {
    let mut rng = Lcg::new(0xBEC0);
    // Mostly background radiation with occasional bursts.
    let pulses: Vec<u32> = (0..WINDOWS as u32 + 4)
        .map(|i| {
            if i % 7 == 3 {
                rng.next_range(20, 60) // burst
            } else {
                rng.next_range(0, 12)
            }
        })
        .collect();
    machine
        .mem
        .attach_device(Box::new(StreamSensor::new(bases::GEIGER, pulses, 0)));
}

/// Builds the Geiger-counter workload.
pub fn workload() -> Workload {
    Workload {
        name: "geiger",
        description: "Pocket Geiger: windowed pulse counting, CPM history, alarm callback",
        module: module(),
        attach,
        max_instrs: 2_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    fn run_plain() -> Machine {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        m
    }

    #[test]
    fn bursts_trigger_the_callback() {
        let m = run_plain();
        let alarms = m.cpu.reg(Reg::R7) >> 12 & 0xFFF;
        assert!(alarms > 0, "bursts must fire the alarm callback");
        assert!(alarms < WINDOWS as u32);
    }

    #[test]
    fn history_summation_loop_is_static() {
        let w = workload();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        assert!(
            linked
                .map
                .loops_by_latch
                .values()
                .any(|l| matches!(l.kind, rap_link::LoopPlanKind::Static { init: 8 })),
            "history sum should be a static loop"
        );
    }

    #[test]
    fn indirect_call_site_present_after_linking() {
        let w = workload();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        assert!(linked
            .map
            .sites_by_entry
            .values()
            .any(|s| s.kind == rap_link::SiteKind::IndirectCall));
    }
}
