//! BEEBS benchmark kernels (Pallister et al.), as used by the paper for
//! the `prime`/`gps` instrumentation comparisons and the Fig. 1
//! motivation.
//!
//! * [`prime`] — trial-division prime counting: data-dependent inner
//!   loops with register-bound comparisons (no §IV-D opt applies) and
//!   heavy division.
//! * [`crc32`] — table-driven CRC-32: a conditional-dense table
//!   initialization plus straight-line, fully static processing loops.
//! * [`bubblesort`] — nested data-dependent compare-and-swap loops,
//!   the worst case for taken-branch logging.
//! * [`fibcall`] — naive recursive Fibonacci: deep call trees of
//!   `PUSH {LR}` / `POP {PC}` pairs, the return-tracking stress test.

use armv8m_isa::{Asm, Module, Reg};
use mcu_sim::Machine;

use crate::devices::Lcg;
use crate::{Workload, SCRATCH_BUF};

fn no_devices(_machine: &mut Machine) {}

// --------------------------------------------------------------------
// prime
// --------------------------------------------------------------------

/// Upper bound of the prime search.
pub const PRIME_LIMIT: u16 = 400;

/// Number of primes below [`PRIME_LIMIT`] (host-side oracle).
pub fn prime_count_oracle() -> u32 {
    let mut count = 0;
    for n in 2..PRIME_LIMIT as u32 {
        let mut d = 2;
        let mut prime = true;
        while d * d <= n {
            if n % d == 0 {
                prime = false;
                break;
            }
            d += 1;
        }
        if prime {
            count += 1;
        }
    }
    count
}

fn prime_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R7, 0); // prime count
    a.movi(R4, 2); // candidate n
    a.label("scan");
    a.mov(R0, R4);
    a.bl("is_prime"); // r0 = 1 if prime
    a.add(R7, R7, R0);
    a.addi(R4, R4, 1);
    a.cmpi(R4, PRIME_LIMIT);
    a.bne("scan");
    a.halt();

    // is_prime(n): trial division, d from 2 while d*d <= n.
    a.func("is_prime");
    a.mov(R1, R0); // n
    a.movi(R2, 2); // d
    a.label("trial");
    a.mul(R3, R2, R2); // d*d
    a.cmp(R3, R1);
    a.bhi("prime_yes"); // d*d > n → prime
                        // n % d == 0 ?
    a.udiv(R3, R1, R2);
    a.mul(R3, R3, R2);
    a.cmp(R3, R1);
    a.beq("prime_no"); // divisible → composite
    a.addi(R2, R2, 1);
    a.b("trial");
    a.label("prime_yes");
    a.movi(R0, 1);
    a.ret();
    a.label("prime_no");
    a.movi(R0, 0);
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `prime` workload.
pub fn prime() -> Workload {
    Workload {
        name: "prime",
        description: "BEEBS prime: trial-division prime counting",
        module: prime_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

// --------------------------------------------------------------------
// crc32
// --------------------------------------------------------------------

/// Input buffer length in bytes.
pub const CRC_LEN: u16 = 256;
const CRC_TABLE: u32 = SCRATCH_BUF; // 256 words
const CRC_BUF: u32 = SCRATCH_BUF + 0x400; // CRC_LEN bytes

/// Host-side CRC-32 oracle matching the kernel (poly 0xEDB88320).
pub fn crc32_oracle() -> u32 {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ 0xEDB8_8320
            } else {
                c >> 1
            };
        }
        *slot = c;
    }
    let mut rng = Lcg::new(0xC3C3);
    let mut crc = 0xFFFF_FFFFu32;
    for _ in 0..CRC_LEN {
        let byte = (rng.next_u32() >> 16) as u8;
        crc = table[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn crc32_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.bl("init_table");
    a.bl("fill_buffer");
    a.bl("compute_crc");
    a.mov(R7, R0);
    a.halt();

    // init_table: the classic reflected CRC-32 table build.
    a.func("init_table");
    a.mov32(R1, CRC_TABLE);
    a.movi(R2, 0); // i
    a.label("tbl_outer");
    a.mov(R3, R2); // c = i
    a.movi(R4, 8); // bit counter
    a.label("tbl_inner");
    a.movi(R5, 1);
    a.and(R5, R3, R5);
    a.cmpi(R5, 0);
    a.beq("even_bit");
    a.lsr(R3, R3, 1);
    a.mov32(R5, 0xEDB8_8320);
    a.eor(R3, R3, R5);
    a.b("bit_done");
    a.label("even_bit");
    a.lsr(R3, R3, 1);
    a.label("bit_done");
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("tbl_inner");
    a.str_(R3, R1, 0);
    a.addi(R1, R1, 4);
    a.addi(R2, R2, 1);
    a.cmpi(R2, 256);
    a.bne("tbl_outer");
    a.ret();

    // fill_buffer: deterministic LCG bytes (register-only iterator →
    // fully static loop, elided by RAP-Track).
    a.func("fill_buffer");
    a.mov32(R1, CRC_BUF);
    a.mov32(R2, 0xC3C3); // LCG state (same seed as the oracle)
    a.mov32(R4, 1_664_525);
    a.mov32(R5, 1_013_904_223);
    a.movi(R3, CRC_LEN); // static counter
    a.label("fill_loop");
    a.mul(R2, R2, R4);
    a.add(R2, R2, R5);
    a.lsr(R6, R2, 16);
    a.strb(R6, R1, 0);
    a.addi(R1, R1, 1);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("fill_loop");
    a.ret();

    // compute_crc: straight-line table-driven update per byte
    // (fully static loop).
    a.func("compute_crc");
    a.mov32(R0, 0xFFFF_FFFF); // crc
    a.mov32(R1, CRC_BUF);
    a.mov32(R4, CRC_TABLE);
    a.movi(R3, CRC_LEN); // static counter
    a.label("crc_loop");
    a.ldrb(R2, R1, 0);
    a.eor(R2, R2, R0);
    a.movi(R5, 0xFF);
    a.and(R2, R2, R5);
    a.ldr_idx(R2, R4, R2); // table[(crc ^ b) & 0xFF]
    a.lsr(R0, R0, 8);
    a.eor(R0, R0, R2);
    a.addi(R1, R1, 1);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("crc_loop");
    a.mov32(R5, 0xFFFF_FFFF);
    a.eor(R0, R0, R5); // final inversion
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `crc32` workload.
pub fn crc32() -> Workload {
    Workload {
        name: "crc32",
        description: "BEEBS crc_32: table build + table-driven checksum",
        module: crc32_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

// --------------------------------------------------------------------
// bubblesort
// --------------------------------------------------------------------

/// Array length sorted.
pub const SORT_LEN: u16 = 48;
const SORT_BUF: u32 = SCRATCH_BUF + 0x800;

/// Host-side oracle: checksum of the sorted array
/// (`Σ value[i] * (i+1)` over the sorted order).
pub fn sort_oracle() -> u32 {
    let mut rng = Lcg::new(0x50B7);
    let mut values: Vec<u32> = (0..SORT_LEN).map(|_| rng.next_u32() & 0xFFFF).collect();
    values.sort_unstable();
    values
        .iter()
        .enumerate()
        .fold(0u32, |acc, (i, v)| acc.wrapping_add(v * (i as u32 + 1)))
}

fn bubblesort_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.bl("fill_array");
    a.bl("sort");
    a.bl("checksum");
    a.mov(R7, R0);
    a.halt();

    // fill_array: LCG & 0xFFFF values (static loop).
    a.func("fill_array");
    a.mov32(R1, SORT_BUF);
    a.mov32(R2, 0x50B7);
    a.mov32(R4, 1_664_525);
    a.mov32(R5, 1_013_904_223);
    a.movi(R3, SORT_LEN);
    a.label("fa_loop");
    a.mul(R2, R2, R4);
    a.add(R2, R2, R5);
    a.movi(R6, 0xFFFF);
    a.and(R6, R6, R2);
    a.str_(R6, R1, 0);
    a.addi(R1, R1, 4);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("fa_loop");
    a.ret();

    // sort: classic bubble sort, n-1 full passes.
    a.func("sort");
    a.movi(R4, SORT_LEN - 1); // passes
    a.label("pass_loop");
    a.mov32(R1, SORT_BUF);
    a.movi(R5, SORT_LEN - 1); // comparisons per pass
    a.label("cmp_loop");
    a.ldr(R2, R1, 0);
    a.ldr(R3, R1, 4);
    a.cmp(R2, R3);
    a.bls("no_swap");
    a.str_(R3, R1, 0);
    a.str_(R2, R1, 4);
    a.label("no_swap");
    a.addi(R1, R1, 4);
    a.subi(R5, R5, 1);
    a.cmpi(R5, 0);
    a.bne("cmp_loop");
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("pass_loop");
    a.ret();

    // checksum: Σ value[i] * (i+1) (static loop).
    a.func("checksum");
    a.mov32(R1, SORT_BUF);
    a.movi(R0, 0);
    a.movi(R2, 1); // weight
    a.movi(R3, SORT_LEN);
    a.label("ck_loop");
    a.ldr(R4, R1, 0);
    a.mul(R4, R4, R2);
    a.add(R0, R0, R4);
    a.addi(R1, R1, 4);
    a.addi(R2, R2, 1);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("ck_loop");
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `bubblesort` workload.
pub fn bubblesort() -> Workload {
    Workload {
        name: "bubblesort",
        description: "BEEBS bubblesort: nested compare-and-swap passes",
        module: bubblesort_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

// --------------------------------------------------------------------
// fibcall
// --------------------------------------------------------------------

/// Fibonacci argument.
pub const FIB_N: u16 = 13;

/// Host-side oracle.
pub fn fib_oracle() -> u32 {
    fn f(n: u32) -> u32 {
        if n < 2 {
            n
        } else {
            f(n - 1) + f(n - 2)
        }
    }
    f(FIB_N as u32)
}

fn fibcall_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R0, FIB_N);
    a.bl("fib");
    a.mov(R7, R0);
    a.halt();

    // fib(n): naive recursion; every frame pushes LR and returns via
    // POP {PC} — a monitored return per call.
    a.func("fib");
    a.cmpi(R0, 2);
    a.bcc("fib_base"); // n < 2 → return n
    a.push(&[Reg::R4, Reg::Lr]);
    a.mov(R4, R0);
    a.subi(R0, R4, 1);
    a.bl("fib");
    a.mov(R1, R0);
    a.subi(R0, R4, 2);
    a.push(&[Reg::R1]);
    a.bl("fib");
    a.pop(&[Reg::R1]);
    a.add(R0, R0, R1);
    a.pop(&[Reg::R4, Reg::Pc]);
    a.label("fib_base");
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `fibcall` workload.
pub fn fibcall() -> Workload {
    Workload {
        name: "fibcall",
        description: "BEEBS fibcall: recursive Fibonacci, return-tracking stress",
        module: fibcall_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    fn run(w: &Workload) -> u32 {
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        m.cpu.reg(Reg::R7)
    }

    #[test]
    fn prime_matches_oracle() {
        assert_eq!(run(&prime()), prime_count_oracle());
    }

    #[test]
    fn crc32_matches_oracle() {
        assert_eq!(run(&crc32()), crc32_oracle());
    }

    #[test]
    fn bubblesort_matches_oracle() {
        assert_eq!(run(&bubblesort()), sort_oracle());
    }

    #[test]
    fn fibcall_matches_oracle() {
        assert_eq!(run(&fibcall()), fib_oracle());
        assert_eq!(fib_oracle(), 233);
    }
}
