//! Synthetic sensor peripherals.
//!
//! The paper's applications read real hardware (ultrasonic echo pins,
//! Geiger pulse counters, UART-attached GPS modules…). Here each sensor
//! is a memory-mapped [`BusDevice`] fed by a deterministic pseudo-random
//! stream, so every run — and every CFA configuration of the same
//! workload — sees identical inputs. Only the *control-flow profile* of
//! the application matters to the experiments; the data is a stand-in.

use mcu_sim::BusDevice;

/// Deterministic 32-bit LCG (Numerical Recipes constants) used to
/// synthesize sensor streams without external dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg {
    state: u32,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u32) -> Lcg {
        Lcg { state: seed }
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(1_664_525)
            .wrapping_add(1_013_904_223);
        self.state
    }

    /// Next value in `[lo, hi)` (upper bits for better quality).
    pub fn next_range(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo < hi);
        lo + (self.next_u32() >> 8) % (hi - lo)
    }
}

/// A read-side FIFO register: every read of offset 0 pops the next
/// value of a pre-generated stream; once exhausted it returns
/// `exhausted_value`.
#[derive(Debug, Clone)]
pub struct StreamSensor {
    base: u32,
    values: Vec<u32>,
    next: usize,
    exhausted_value: u32,
    /// Values written to offset 4 (actuator side), for test inspection.
    pub written: Vec<u32>,
}

impl StreamSensor {
    /// Creates a sensor at `base` serving `values` in order.
    pub fn new(base: u32, values: Vec<u32>, exhausted_value: u32) -> StreamSensor {
        StreamSensor {
            base,
            values,
            next: 0,
            exhausted_value,
            written: Vec::new(),
        }
    }

    /// How many values have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.next.min(self.values.len())
    }
}

impl BusDevice for StreamSensor {
    fn base(&self) -> u32 {
        self.base
    }

    fn size(&self) -> u32 {
        8
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 => {
                let v = self
                    .values
                    .get(self.next)
                    .copied()
                    .unwrap_or(self.exhausted_value);
                self.next += 1;
                v
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == 4 {
            self.written.push(value);
        }
    }
}

/// A byte-stream UART: reads of offset 0 return the next byte
/// (zero once exhausted — used as the end-of-stream sentinel).
#[derive(Debug, Clone)]
pub struct ByteUart {
    base: u32,
    bytes: Vec<u8>,
    next: usize,
    /// Bytes written to the TX register (offset 4).
    pub tx: Vec<u8>,
}

impl ByteUart {
    /// Creates a UART at `base` serving `bytes`.
    pub fn new(base: u32, bytes: Vec<u8>) -> ByteUart {
        ByteUart {
            base,
            bytes,
            next: 0,
            tx: Vec::new(),
        }
    }
}

impl BusDevice for ByteUart {
    fn base(&self) -> u32 {
        self.base
    }

    fn size(&self) -> u32 {
        8
    }

    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 => {
                let b = self.bytes.get(self.next).copied().unwrap_or(0);
                self.next += 1;
                b as u32
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == 4 {
            self.tx.push(value as u8);
        }
    }
}

/// Peripheral window bases used by the workloads.
pub mod bases {
    use mcu_sim::PERIPH_BASE;

    /// Ultrasonic ranger (echo-time register).
    pub const ULTRASONIC: u32 = PERIPH_BASE;
    /// Geiger pulse counter.
    pub const GEIGER: u32 = PERIPH_BASE + 0x100;
    /// Syringe-pump command UART.
    pub const SYRINGE: u32 = PERIPH_BASE + 0x200;
    /// Temperature sensor.
    pub const TEMPERATURE: u32 = PERIPH_BASE + 0x300;
    /// GPS NMEA UART.
    pub const GPS: u32 = PERIPH_BASE + 0x400;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Lcg::new(43);
        assert_ne!(a.next_u32(), c.next_u32());
    }

    #[test]
    fn lcg_range_bounds() {
        let mut g = Lcg::new(7);
        for _ in 0..1000 {
            let v = g.next_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn stream_sensor_pops_then_saturates() {
        let mut s = StreamSensor::new(0x4000_0000, vec![5, 6], 99);
        assert_eq!(s.read(0), 5);
        assert_eq!(s.read(0), 6);
        assert_eq!(s.read(0), 99);
        assert_eq!(s.consumed(), 2);
        s.write(4, 1234);
        assert_eq!(s.written, vec![1234]);
    }

    #[test]
    fn byte_uart_serves_bytes_then_zero() {
        let mut u = ByteUart::new(0x4000_0400, b"$G".to_vec());
        assert_eq!(u.read(0), b'$' as u32);
        assert_eq!(u.read(0), b'G' as u32);
        assert_eq!(u.read(0), 0);
        u.write(4, b'!' as u32);
        assert_eq!(u.tx, vec![b'!']);
    }
}
