//! Parameterized synthetic workloads for sweeps.
//!
//! The paper's figures use fixed applications; the sweep experiments in
//! `rap-bench` additionally vary *structural parameters* to locate
//! crossovers: how does each CFA method scale with branch density, loop
//! weight and input size?

use armv8m_isa::{Asm, Module, Reg};
use mcu_sim::Machine;

use crate::devices::{bases, ByteUart, Lcg};
use crate::{gps, Workload};

/// Parameters of the synthetic kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticParams {
    /// Outer iterations (work volume).
    pub iterations: u16,
    /// Data-dependent conditionals evaluated per iteration (tracked
    /// branch density).
    pub conditionals_per_iter: u16,
    /// Straight-line arithmetic instructions per iteration (dilutes
    /// branch density).
    pub straightline_per_iter: u16,
    /// Whether each iteration performs a call/return pair.
    pub with_calls: bool,
}

impl Default for SyntheticParams {
    fn default() -> SyntheticParams {
        SyntheticParams {
            iterations: 100,
            conditionals_per_iter: 2,
            straightline_per_iter: 8,
            with_calls: false,
        }
    }
}

fn module(p: SyntheticParams) -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R7, 0); // checksum
    a.mov32(R6, 0x5EED); // LCG state (data source)
    a.mov32(R10, 1_664_525);
    a.mov32(R11, 1_013_904_223);
    a.movi(R4, p.iterations);
    a.label("outer");
    // Fresh pseudo-random word each iteration.
    a.mul(R6, R6, R10);
    a.add(R6, R6, R11);
    a.mov(R1, R6);
    // Data-dependent conditionals: test successive bits of R1.
    for c in 0..p.conditionals_per_iter {
        let skip = format!("skip_{c}");
        a.movi(R2, 1);
        a.and(R2, R1, R2);
        a.cmpi(R2, 0);
        a.beq(skip.as_str());
        a.addi(R7, R7, 1);
        a.label(skip);
        a.mov(R2, R1);
        a.lsr(R2, R2, 1);
        a.mov(R1, R2);
    }
    // Straight-line filler.
    for _ in 0..p.straightline_per_iter {
        a.addi(R7, R7, 3);
        a.eor(R7, R7, R6);
    }
    if p.with_calls {
        a.bl("leafwork");
    }
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("outer");
    a.halt();

    a.func("leafwork");
    a.addi(R7, R7, 7);
    a.ret();

    a.into_module()
}

fn no_devices(_machine: &mut Machine) {}

/// Builds a synthetic workload with the given structure.
pub fn synthetic(p: SyntheticParams) -> Workload {
    Workload {
        name: "synthetic",
        description: "parameterized kernel for density/volume sweeps",
        module: module(p),
        attach: no_devices,
        max_instrs: 20_000_000,
    }
}

/// A GPS workload scaled to `sentences` NMEA sentences — the
/// input-volume sweep (log size and runtime should scale linearly).
pub fn gps_scaled(sentences: usize) -> Workload {
    let mut rng = Lcg::new(0x69F5);
    let mut bytes = Vec::new();
    for _ in 0..sentences {
        let value = rng.next_range(100, 99_999);
        bytes.extend(gps::sentence(value, false));
    }
    // The attach closure must be a fn pointer; stash the stream in a
    // thread-local keyed by length instead of capturing.
    STREAM.with(|s| *s.borrow_mut() = bytes);
    fn attach(machine: &mut Machine) {
        let bytes = STREAM.with(|s| s.borrow().clone());
        machine
            .mem
            .attach_device(Box::new(ByteUart::new(bases::GPS, bytes)));
    }
    let base = gps::workload();
    Workload {
        name: "gps-scaled",
        description: "NMEA parser with a scaled sentence stream",
        module: base.module,
        attach,
        max_instrs: 50_000_000,
    }
}

thread_local! {
    static STREAM: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    fn run(w: &Workload) -> (u32, u64) {
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        let out = m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        (m.cpu.reg(Reg::R7), out.cycles)
    }

    #[test]
    fn synthetic_runs_and_scales_with_iterations() {
        let small = run(&synthetic(SyntheticParams {
            iterations: 10,
            ..SyntheticParams::default()
        }));
        let big = run(&synthetic(SyntheticParams {
            iterations: 100,
            ..SyntheticParams::default()
        }));
        assert!(big.1 > 8 * small.1, "cycles scale with iterations");
    }

    #[test]
    fn conditional_density_changes_log_not_semantics() {
        for conds in [0u16, 1, 4, 8] {
            let w = synthetic(SyntheticParams {
                conditionals_per_iter: conds,
                ..SyntheticParams::default()
            });
            let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
            let engine = rap_track::CfaEngine::new(rap_track::device_key("syn"));
            let mut machine = mcu_sim::Machine::new(linked.image.clone());
            engine
                .attest(
                    &mut machine,
                    &linked.map,
                    rap_track::Challenge::from_seed(0),
                    rap_track::EngineConfig::default(),
                )
                .unwrap();
            // Baseline semantics agree.
            let (plain_r7, _) = run(&w);
            assert_eq!(machine.cpu.reg(Reg::R7), plain_r7, "conds={conds}");
        }
    }

    #[test]
    fn gps_scaled_consumes_whole_stream() {
        for n in [2usize, 8] {
            let w = gps_scaled(n);
            let image = w.module.assemble(0).unwrap();
            let mut m = Machine::new(image);
            (w.attach)(&mut m);
            m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
            assert!(m.cpu.reg(Reg::R7) > 0);
        }
        // More sentences → more parsed value accumulated... not
        // necessarily monotone (wrapping), but runtime is.
        let cycles: Vec<u64> = [2usize, 8]
            .iter()
            .map(|n| {
                let w = gps_scaled(*n);
                let image = w.module.assemble(0).unwrap();
                let mut m = Machine::new(image);
                (w.attach)(&mut m);
                m.run(&mut NullSecureWorld, w.max_instrs).unwrap().cycles
            })
            .collect();
        assert!(cycles[1] > 3 * cycles[0]);
    }
}
