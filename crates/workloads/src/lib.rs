//! # workloads — the paper's evaluation applications
//!
//! Faithful control-flow reimplementations of the open-source MCU
//! applications the paper evaluates on (§I, §V): an ultrasonic ranger,
//! a pocket Geiger counter, a syringe pump, a temperature sensor and a
//! TinyGPS-style NMEA parser, plus BEEBS benchmark kernels (`prime`,
//! `crc32`, `bubblesort`, `fibcall`). Sensors are replaced by
//! deterministic synthetic streams ([`devices`]); the applications'
//! *control-flow profiles* — branch mix, loop structure, call and
//! indirect-dispatch density — are what the experiments measure, and
//! those are preserved.
//!
//! ```
//! use workloads::all;
//! for w in all() {
//!     let image = w.module.assemble(0)?;
//!     let mut machine = mcu_sim::Machine::new(image);
//!     (w.attach)(&mut machine);
//!     machine.run(&mut mcu_sim::NullSecureWorld, w.max_instrs)?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod beebs;
pub mod beebs2;
pub mod devices;
pub mod geiger;
pub mod gps;
pub mod synthetic;
pub mod syringe;
pub mod temperature;
pub mod ultrasonic;

use armv8m_isa::{Module, Reg};
use mcu_sim::{Machine, RAM_BASE};

/// RAM address of the shared results buffer used by sensing workloads.
pub const RESULT_BUF: u32 = RAM_BASE + 0x1000;
/// RAM address of per-workload scratch structures (tables, windows…).
pub const SCRATCH_BUF: u32 = RAM_BASE + 0x2000;

/// One evaluation application.
pub struct Workload {
    /// Short identifier used in figure rows.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The application in label form (input to the offline phase).
    pub module: Module,
    /// Attaches the workload's synthetic sensor devices.
    pub attach: fn(&mut Machine),
    /// Instruction budget for one run.
    pub max_instrs: u64,
}

impl Workload {
    /// Register holding the workload's final checksum (all workloads
    /// use `R7` by convention).
    pub fn result_reg(&self) -> Reg {
        Reg::R7
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("instrs", &self.module.instr_count())
            .finish()
    }
}

/// All workloads in the paper's presentation order.
pub fn all() -> Vec<Workload> {
    vec![
        ultrasonic::workload(),
        geiger::workload(),
        syringe::workload(),
        temperature::workload(),
        gps::workload(),
        beebs::prime(),
        beebs::crc32(),
        beebs::bubblesort(),
        beebs::fibcall(),
        beebs2::matmult(),
        beebs2::fir(),
        beebs2::binsearch(),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    #[test]
    fn every_workload_assembles_and_halts() {
        for w in all() {
            let image = w.module.assemble(0).unwrap_or_else(|e| {
                panic!("{} fails to assemble: {e}", w.name);
            });
            let mut m = Machine::new(image);
            (w.attach)(&mut m);
            let outcome = m
                .run(&mut NullSecureWorld, w.max_instrs)
                .unwrap_or_else(|e| panic!("{} fails to run: {e}", w.name));
            assert!(outcome.instrs > 100, "{} did trivial work", w.name);
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        for name in names {
            assert!(by_name(name).is_some());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_workload_links_under_rap_track() {
        for w in all() {
            let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default())
                .unwrap_or_else(|e| panic!("{} fails to link: {e}", w.name));
            assert!(
                linked.map.mtbar.is_some(),
                "{} should have at least one trampoline",
                w.name
            );
        }
    }

    /// The semantics-preservation property across every configuration:
    /// plain, RAP-Track-linked and TRACES-instrumented executions all
    /// produce the same checksum.
    #[test]
    fn all_configurations_agree_on_results() {
        for w in all() {
            let plain_image = w.module.assemble(0).unwrap();
            let mut plain = Machine::new(plain_image);
            (w.attach)(&mut plain);
            plain
                .run(&mut NullSecureWorld, w.max_instrs)
                .expect("plain");
            let expected = plain.cpu.reg(w.result_reg());

            // RAP-Track.
            let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
            let engine = rap_track::CfaEngine::new(rap_track::device_key("wk"));
            let mut machine = Machine::new(linked.image.clone());
            (w.attach)(&mut machine);
            engine
                .attest(
                    &mut machine,
                    &linked.map,
                    rap_track::Challenge::from_seed(0),
                    rap_track::EngineConfig {
                        max_instrs: w.max_instrs * 2,
                        ..rap_track::EngineConfig::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{}: rap attest: {e}", w.name));
            assert_eq!(
                machine.cpu.reg(w.result_reg()),
                expected,
                "{}: RAP-Track changed the result",
                w.name
            );

            // TRACES.
            let prog =
                cfa_baselines::instrument(&w.module, 0, cfa_baselines::TracesConfig::default())
                    .unwrap();
            let mut traced = Machine::new(prog.image.clone());
            (w.attach)(&mut traced);
            let mut world = cfa_baselines::TracesWorld::new(prog.config);
            traced
                .run(&mut world, w.max_instrs * 2)
                .unwrap_or_else(|e| panic!("{}: traces run: {e}", w.name));
            assert_eq!(
                traced.cpu.reg(w.result_reg()),
                expected,
                "{}: TRACES changed the result",
                w.name
            );
        }
    }

    /// Lossless verification holds for every workload.
    #[test]
    fn all_workloads_verify_end_to_end() {
        for w in all() {
            let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
            let key = rap_track::device_key("wk-verify");
            let engine = rap_track::CfaEngine::new(key.clone());
            let mut machine = Machine::new(linked.image.clone());
            (w.attach)(&mut machine);
            let chal = rap_track::Challenge::from_seed(99);
            // Enable partial reports: big workloads overflow the 4 KiB
            // MTB SRAM many times over (§IV-E / §V-B).
            let att = engine
                .attest(
                    &mut machine,
                    &linked.map,
                    chal,
                    rap_track::EngineConfig {
                        max_instrs: w.max_instrs * 2,
                        watermark: Some(448),
                    },
                )
                .unwrap_or_else(|e| panic!("{}: attest: {e}", w.name));
            let verifier = rap_track::Verifier::builder()
                .key(key)
                .image(linked.image.clone())
                .map(linked.map.clone())
                .build()
                .expect("key/image/map are all set");
            let path = verifier
                .verify(chal, &att.reports)
                .unwrap_or_else(|e| panic!("{}: verify: {e}", w.name));
            assert!(path.steps > 0, "{}", w.name);
        }
    }
}
