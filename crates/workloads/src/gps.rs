//! GPS NMEA parser (TinyGPS++-style).
//!
//! Consumes a UART byte stream of NMEA-like sentences
//! (`$<body>*<checksum>\n`), runs a per-character state machine
//! dispatched through a jump table, accumulates the XOR checksum and
//! parses the numeric field, accepting sentences whose checksum byte
//! matches.
//!
//! Control-flow profile: the densest of the workloads — one jump-table
//! dispatch (`LDR PC`) **per input character** plus several
//! data-dependent conditionals per character, the worst case for
//! instrumentation-based CFA (the paper's 1309% TRACES overhead is on
//! exactly this kind of code).

use armv8m_isa::{Asm, Instr, Module, Reg};
use mcu_sim::Machine;

use crate::devices::{bases, ByteUart, Lcg};
use crate::{Workload, SCRATCH_BUF};

/// Number of synthetic sentences in the stream.
pub const SENTENCES: usize = 8;

const STATE_TABLE: u32 = SCRATCH_BUF; // 3 entries

/// Builds one NMEA-like sentence carrying `value`, with a valid
/// 7-bit XOR checksum; `corrupt` flips the checksum byte.
pub fn sentence(value: u32, corrupt: bool) -> Vec<u8> {
    let body = format!("GPRMC,{value}");
    let mut ck: u8 = 0;
    for b in body.bytes() {
        ck ^= b;
    }
    ck &= 0x7F;
    if corrupt {
        ck ^= 0x55;
    }
    // Keep the checksum byte printable-ish but never '*', '$' or '\n'.
    let ck = if ck == 0 { 0x7F } else { ck };
    let mut out = Vec::new();
    out.push(b'$');
    out.extend(body.bytes());
    out.push(b'*');
    out.push(ck);
    out.push(b'\n');
    out
}

/// The full synthetic byte stream (one corrupted sentence included).
pub fn nmea_stream() -> Vec<u8> {
    let mut rng = Lcg::new(0x69F5);
    let mut bytes = Vec::new();
    for i in 0..SENTENCES {
        let value = rng.next_range(100, 99_999);
        bytes.extend(sentence(value, i == 3));
    }
    bytes
}

/// Sum of the values carried by the *valid* sentences — what the
/// parser's checksum register must equal.
pub fn expected_value_sum() -> u32 {
    let mut rng = Lcg::new(0x69F5);
    let mut sum: u32 = 0;
    for i in 0..SENTENCES {
        let value = rng.next_range(100, 99_999);
        if i != 3 {
            sum = sum.wrapping_add(value);
        }
    }
    sum
}

fn module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    // Register use: r4 = state, r5 = xor accumulator, r6 = value
    // accumulator, r7 = sum of accepted values, r8 = table base,
    // r9 = rejected count.
    a.func("main");
    a.movi(R7, 0);
    a.movi(R4, 0);
    a.movi(R9, 0);
    a.mov32(R8, STATE_TABLE);
    a.load_addr(R0, "st_idle");
    a.str_(R0, R8, 0);
    a.load_addr(R0, "st_body");
    a.str_(R0, R8, 4);
    a.load_addr(R0, "st_cksum");
    a.str_(R0, R8, 8);

    a.label("char_loop");
    a.mov32(R1, bases::GPS);
    a.ldr(R0, R1, 0); // next char
    a.cmpi(R0, 0);
    a.beq("stream_end"); // forward exit
    a.instr(Instr::LdrReg {
        rt: Pc,
        rn: R8,
        rm: R4,
    }); // dispatch on parser state

    // State 0: waiting for '$'.
    a.label("st_idle");
    a.cmpi(R0, b'$' as u16);
    a.bne("char_loop");
    a.movi(R4, 1);
    a.movi(R5, 0);
    a.movi(R6, 0);
    a.b("char_loop");

    // State 1: sentence body — XOR everything, parse digits.
    a.label("st_body");
    a.cmpi(R0, b'*' as u16);
    a.beq("to_cksum");
    a.eor(R5, R5, R0);
    // Digit?
    a.cmpi(R0, b'0' as u16);
    a.bcc("char_loop");
    a.cmpi(R0, b'9' as u16);
    a.bhi("char_loop");
    // value = value * 10 + (c - '0')
    a.movi(R1, 10);
    a.mul(R6, R6, R1);
    a.subi(R0, R0, b'0' as u16);
    a.add(R6, R6, R0);
    a.b("char_loop");
    a.label("to_cksum");
    a.movi(R4, 2);
    a.b("char_loop");

    // State 2: compare the checksum byte.
    a.label("st_cksum");
    a.movi(R1, 0x7F);
    a.and(R5, R5, R1);
    a.cmpi(R5, 0);
    a.bne("ck_nonzero");
    a.movi(R5, 0x7F); // generator maps 0 → 0x7F
    a.label("ck_nonzero");
    a.cmp(R0, R5);
    a.bne("reject");
    a.add(R7, R7, R6); // accept: accumulate parsed value
    a.b("ck_done");
    a.label("reject");
    a.addi(R9, R9, 1);
    a.label("ck_done");
    a.movi(R4, 0); // back to idle (skips the trailing newline)
    a.b("char_loop");

    a.label("stream_end");
    a.halt();

    a.into_module()
}

fn attach(machine: &mut Machine) {
    machine
        .mem
        .attach_device(Box::new(ByteUart::new(bases::GPS, nmea_stream())));
}

/// Builds the GPS NMEA-parser workload.
pub fn workload() -> Workload {
    Workload {
        name: "gps",
        description: "TinyGPS-style NMEA parser: per-char state machine, checksum validation",
        module: module(),
        attach,
        max_instrs: 5_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    #[test]
    fn parser_accepts_valid_and_rejects_corrupt() {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        assert_eq!(m.cpu.reg(Reg::R7), expected_value_sum());
        assert_eq!(m.cpu.reg(Reg::R9), 1, "exactly one corrupted sentence");
    }

    #[test]
    fn sentence_checksums_validate() {
        let s = sentence(12345, false);
        assert_eq!(s[0], b'$');
        assert_eq!(*s.last().unwrap(), b'\n');
        let star = s.iter().position(|&b| b == b'*').unwrap();
        let mut ck = 0u8;
        for &b in &s[1..star] {
            ck ^= b;
        }
        let ck = if ck & 0x7F == 0 { 0x7F } else { ck & 0x7F };
        assert_eq!(s[star + 1], ck);
    }

    #[test]
    fn dispatch_density_is_high() {
        // One LoadJump per character: the defining property of this
        // workload.
        let w = workload();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        let stream_len = nmea_stream().len();
        let engine = rap_track::CfaEngine::new(rap_track::device_key("gps"));
        let mut machine = Machine::new(linked.image.clone());
        (w.attach)(&mut machine);
        let att = engine
            .attest(
                &mut machine,
                &linked.map,
                rap_track::Challenge::from_seed(0),
                rap_track::EngineConfig::default(),
            )
            .unwrap();
        let log = att.combined_log();
        let dispatches = log
            .mtb
            .iter()
            .filter(|e| {
                matches!(
                    linked.map.site_at_src(e.source).map(|s| s.kind),
                    Some(rap_link::SiteKind::LoadJump)
                )
            })
            .count();
        assert_eq!(dispatches, stream_len);
    }
}
