//! Temperature/humidity sensor (Seeed Grove `temp_humi_sensor`).
//!
//! Periodically samples the raw ADC value, converts it to
//! centi-degrees with the sensor's transfer polynomial, smooths it over
//! an 8-sample moving window and raises hot/cold alerts.
//!
//! Control-flow profile: a general sampling loop with calls, fully
//! static smoothing loops (window shift + sum, both elided by
//! RAP-Track), and two-sided threshold conditionals.

use armv8m_isa::{Asm, Module, Reg};
use mcu_sim::Machine;

use crate::devices::{bases, Lcg, StreamSensor};
use crate::{Workload, SCRATCH_BUF};

/// Samples taken.
pub const SAMPLES: u16 = 24;
/// Hot alarm threshold (centi-degrees).
pub const HOT: u16 = 3200;
/// Cold alarm threshold (centi-degrees).
pub const COLD: u16 = 500;

const WINDOW: u32 = SCRATCH_BUF; // 8 words

fn module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R7, 0); // checksum
    a.movi(R5, 0); // alert bits accumulated
    a.movi(R4, SAMPLES);
    a.label("sample_loop");
    a.bl("read_raw"); // r0 = raw ADC
    a.bl("convert"); // r0 = centi-degrees
    a.bl("smooth"); // r0 = smoothed value
    a.add(R7, R7, R0);
    // Two-sided classification.
    a.cmpi(R0, HOT);
    a.bls("not_hot");
    a.addi(R5, R5, 1);
    a.label("not_hot");
    a.cmpi(R0, COLD);
    a.bhi("not_cold");
    a.addi(R5, R5, 16);
    a.label("not_cold");
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("sample_loop");
    a.lsl(R5, R5, 16);
    a.add(R7, R7, R5);
    a.halt();

    a.func("read_raw");
    a.mov32(R1, bases::TEMPERATURE);
    a.ldr(R0, R1, 0);
    a.ret();

    // convert: centi°C ≈ raw * 33 / 10 - 600 (clamped at 0).
    a.func("convert");
    a.movi(R1, 33);
    a.mul(R0, R0, R1);
    a.movi(R1, 10);
    a.udiv(R0, R0, R1);
    a.cmpi(R0, 600);
    a.bls("clamp_zero");
    a.subi(R0, R0, 600);
    a.ret();
    a.label("clamp_zero");
    a.movi(R0, 0);
    a.ret();

    // smooth: shift the 8-slot window down (static loop), append the
    // new sample, return the window average (static loop).
    a.func("smooth");
    a.mov32(R1, WINDOW);
    a.movi(R2, 7); // static shift counter
    a.label("shift_loop");
    a.ldr(R3, R1, 4);
    a.str_(R3, R1, 0);
    a.addi(R1, R1, 4);
    a.subi(R2, R2, 1);
    a.cmpi(R2, 0);
    a.bne("shift_loop");
    a.str_(R0, R1, 0); // newest sample in the last slot
                       // Average.
    a.mov32(R1, WINDOW);
    a.movi(R0, 0);
    a.movi(R2, 8); // static sum counter
    a.label("avg_loop");
    a.ldr(R3, R1, 0);
    a.add(R0, R0, R3);
    a.addi(R1, R1, 4);
    a.subi(R2, R2, 1);
    a.cmpi(R2, 0);
    a.bne("avg_loop");
    a.lsr(R0, R0, 3); // / 8
    a.ret();

    a.into_module()
}

fn attach(machine: &mut Machine) {
    let mut rng = Lcg::new(0x7E39);
    // Raw ADC around room temperature with a hot excursion.
    let raw: Vec<u32> = (0..SAMPLES as u32 + 4)
        .map(|i| {
            if (10..14).contains(&i) {
                rng.next_range(1100, 1300) // hot spike
            } else {
                rng.next_range(380, 520)
            }
        })
        .collect();
    machine
        .mem
        .attach_device(Box::new(StreamSensor::new(bases::TEMPERATURE, raw, 400)));
}

/// Builds the temperature-sensor workload.
pub fn workload() -> Workload {
    Workload {
        name: "temperature",
        description: "Grove temperature sensor: ADC convert, moving average, alerts",
        module: module(),
        attach,
        max_instrs: 2_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    #[test]
    fn smoothing_and_alerts_behave() {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        let checksum = m.cpu.reg(Reg::R7);
        assert!(checksum > 0);
        // Cold alerts fire early (window warms up from zero).
        let alerts = checksum >> 16;
        assert!(alerts & 0xFFF0 != 0, "cold alerts expected: {alerts:#x}");
    }

    #[test]
    fn smoothing_loops_are_static() {
        let w = workload();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        let statics = linked
            .map
            .loops_by_latch
            .values()
            .filter(|l| matches!(l.kind, rap_link::LoopPlanKind::Static { .. }))
            .count();
        assert!(statics >= 2, "shift + avg loops static, got {statics}");
    }
}
