//! Syringe pump (`OpenSyringePump`).
//!
//! Reads a command stream from the control UART and drives a stepper
//! motor: `push <n>` extrudes n steps, `retract <n>` pulls back,
//! `status` reports the plunger position. Command dispatch goes through
//! a jump table — the classic C `switch` lowering to `LDR PC` — and
//! each motor movement is a variable-count stepping loop.
//!
//! Control-flow profile: a forward-exit command loop (Fig. 7 continue
//! logging), a **jump-table dispatch** (`LDR PC`, LoadJump trampoline)
//! per command, and §IV-D-optimizable stepping loops.

use armv8m_isa::{Asm, Instr, Module, Reg};
use mcu_sim::Machine;

use crate::devices::{bases, StreamSensor};
use crate::{Workload, SCRATCH_BUF};

/// Command opcodes on the wire (arg byte follows each).
pub const CMD_PUSH: u32 = 1;
/// Retract command opcode.
pub const CMD_RETRACT: u32 = 2;
/// Status command opcode.
pub const CMD_STATUS: u32 = 3;

const JUMP_TABLE: u32 = SCRATCH_BUF;

/// The command script fed to the pump (opcode, argument pairs).
pub fn command_script() -> Vec<u32> {
    vec![
        CMD_PUSH,
        40, // prime the line
        CMD_PUSH,
        25, // first dose
        CMD_STATUS,
        0,
        CMD_RETRACT,
        10, // anti-drip pull-back
        CMD_PUSH,
        55, // second dose
        CMD_STATUS,
        0,
        CMD_RETRACT,
        30,
        CMD_PUSH,
        15,
        CMD_STATUS,
        0,
        0, // end of stream
    ]
}

fn module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R7, 0); // checksum (status reports)
    a.movi(R5, 0); // plunger position
                   // Build the dispatch table: [push, retract, status].
    a.mov32(R6, JUMP_TABLE);
    a.load_addr(R0, "case_push");
    a.str_(R0, R6, 0);
    a.load_addr(R0, "case_retract");
    a.str_(R0, R6, 4);
    a.load_addr(R0, "case_status");
    a.str_(R0, R6, 8);

    a.label("cmd_loop");
    a.bl("read_word"); // r0 = opcode
    a.cmpi(R0, 0);
    a.beq("shutdown"); // forward exit, unconditional latch below
    a.subi(R0, R0, 1); // opcode → table index
    a.mov32(R6, JUMP_TABLE);
    a.instr(Instr::LdrReg {
        rt: Pc,
        rn: R6,
        rm: R0,
    }); // switch dispatch

    a.label("case_push");
    a.bl("read_word"); // r0 = steps
    a.bl("step_motor"); // extrude
    a.add(R5, R5, R0);
    a.b("cmd_loop");

    a.label("case_retract");
    a.bl("read_word");
    a.bl("step_motor"); // same stepping, reverse direction
    a.sub(R5, R5, R0);
    a.b("cmd_loop");

    a.label("case_status");
    a.bl("read_word"); // consume the unused argument
    a.add(R7, R7, R5); // report current position
    a.b("cmd_loop");

    a.label("shutdown");
    a.lsl(R0, R5, 4);
    a.add(R7, R7, R0); // fold final position in
    a.halt();

    // read_word: next 32-bit command word from the UART FIFO.
    a.func("read_word");
    a.mov32(R1, bases::SYRINGE);
    a.ldr(R0, R1, 0);
    a.ret();

    // step_motor: pulse the coil register r0 times (variable-count
    // simple loop: register-only iterator, constant bound).
    a.func("step_motor");
    a.mov32(R1, bases::SYRINGE);
    a.mov(R2, R0); // countdown copy
    a.label("step_loop");
    a.str_(R2, R1, 4); // energize coil phase
    a.subi(R2, R2, 1);
    a.cmpi(R2, 0);
    a.bne("step_loop");
    a.ret();

    a.into_module()
}

fn attach(machine: &mut Machine) {
    machine.mem.attach_device(Box::new(StreamSensor::new(
        bases::SYRINGE,
        command_script(),
        0,
    )));
}

/// Builds the syringe-pump workload.
pub fn workload() -> Workload {
    Workload {
        name: "syringe",
        description: "Open syringe pump: UART command dispatch, stepper-motor dosing",
        module: module(),
        attach,
        max_instrs: 2_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    fn run_plain() -> Machine {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        m
    }

    #[test]
    fn positions_follow_the_script() {
        let m = run_plain();
        // Position trace: 40+25=65 → status(65) → -10 → +55 = 110 →
        // status(110) → -30 → +15 = 95 → status(95).
        // checksum = 65 + 110 + 95 + (95 << 4).
        let expected = 65 + 110 + 95 + (95 << 4);
        assert_eq!(m.cpu.reg(Reg::R7), expected);
        assert_eq!(m.cpu.reg(Reg::R5), 95);
    }

    #[test]
    fn motor_pulses_match_total_steps() {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        let dev = &mut m.mem.devices_mut()[0];
        // Downcast via the written log length: the device records every
        // coil pulse. Total steps = 40+25+10+55+30+15 = 175.
        let _ = dev;
        // (Device introspection happens through the StreamSensor API in
        // integration tests; here we rely on the position checksum.)
    }

    #[test]
    fn dispatch_is_a_load_jump_site() {
        let w = workload();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        assert!(linked
            .map
            .sites_by_entry
            .values()
            .any(|s| s.kind == rap_link::SiteKind::LoadJump));
        // And the stepping loop is §IV-D optimized.
        assert!(linked
            .map
            .loops_by_latch
            .values()
            .any(|l| l.kind == rap_link::LoopPlanKind::Logged));
    }
}
