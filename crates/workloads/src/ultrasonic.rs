//! Ultrasonic ranger (Seeed Grove `ultrasonic_ranger`).
//!
//! Periodically triggers a pulse, waits for the echo with a timed
//! countdown (the classic `pulseIn` pattern: read the expected tick
//! count from the timer capture register, then spin it down), converts
//! ticks to centimetres and classifies the distance against a
//! proximity threshold.
//!
//! Control-flow profile: a call-heavy outer measurement loop (general,
//! per-iteration tracking), a **variable-count simple wait loop** per
//! measurement — the showcase for the §IV-D loop optimization — and a
//! data-dependent proximity conditional.

use armv8m_isa::{Asm, Module, Reg};
use mcu_sim::Machine;

use crate::devices::{bases, Lcg, StreamSensor};
use crate::{Workload, RESULT_BUF};

/// Number of distance measurements taken.
pub const MEASUREMENTS: u16 = 16;

fn module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.movi(R7, 0); // checksum
    a.movi(R5, 0); // proximity alarms
    a.mov32(R6, RESULT_BUF); // results buffer
    a.movi(R4, MEASUREMENTS); // outer counter
    a.label("measure_loop");
    a.bl("measure"); // r0 = echo ticks
    a.bl("to_distance"); // r0 = centimetres
                         // Proximity classification.
    a.cmpi(R0, 50);
    a.bge("far_enough");
    a.addi(R5, R5, 1); // near-object alarm
    a.label("far_enough");
    a.str_(R0, R6, 0);
    a.addi(R6, R6, 4);
    a.add(R7, R7, R0); // checksum += distance
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("measure_loop");
    // Fold the alarm count into the checksum.
    a.lsl(R5, R5, 8);
    a.add(R7, R7, R5);
    a.halt();

    // measure: trigger a pulse, then run the timed echo wait.
    a.func("measure");
    a.mov32(R1, bases::ULTRASONIC);
    a.movi(R0, 1);
    a.str_(R0, R1, 4); // trigger pulse
    a.ldr(R0, R1, 0); // expected echo ticks (runtime-variable)
    a.mov(R2, R0); // keep the measurement
                   // Timed wait: variable-count, register-only countdown — a §IV-D
                   // simple loop whose condition is logged once.
    a.label("echo_wait");
    a.subi(R0, R0, 1);
    a.cmpi(R0, 0);
    a.bne("echo_wait");
    a.mov(R0, R2);
    a.ret();

    // to_distance: cm = ticks * 17 / 100 (speed of sound, scaled).
    a.func("to_distance");
    a.movi(R1, 17);
    a.mul(R0, R0, R1);
    a.movi(R1, 100);
    a.udiv(R0, R0, R1);
    a.ret();

    a.into_module()
}

fn attach(machine: &mut Machine) {
    let mut rng = Lcg::new(0x1051);
    let ticks: Vec<u32> = (0..MEASUREMENTS as u32 + 4)
        .map(|_| rng.next_range(40, 400))
        .collect();
    machine
        .mem
        .attach_device(Box::new(StreamSensor::new(bases::ULTRASONIC, ticks, 40)));
}

/// Builds the ultrasonic-ranger workload.
pub fn workload() -> Workload {
    Workload {
        name: "ultrasonic",
        description: "Grove ultrasonic ranger: pulse, timed echo wait, distance classify",
        module: module(),
        attach,
        max_instrs: 2_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    #[test]
    fn plain_run_measures_all_samples() {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        assert!(m.cpu.reg(Reg::R7) > 0, "checksum accumulated");
        // All measurements stored: last buffer slot written.
        let addr = RESULT_BUF + 4 * (MEASUREMENTS as u32 - 1);
        let last = m.mem.read_word(addr, 0).unwrap();
        assert!(last > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = workload();
        let image = w.module.assemble(0).unwrap();
        let mut results = Vec::new();
        for _ in 0..2 {
            let mut m = Machine::new(image.clone());
            (w.attach)(&mut m);
            m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
            results.push((m.cpu.reg(Reg::R7), m.cpu.cycles));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn wait_loop_is_optimized_by_rap_link() {
        let w = workload();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        // The echo wait must be a Logged simple loop.
        assert!(
            linked
                .map
                .loops_by_latch
                .values()
                .any(|l| l.kind == rap_link::LoopPlanKind::Logged),
            "echo wait should be §IV-D optimized"
        );
    }
}
