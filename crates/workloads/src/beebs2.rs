//! Additional BEEBS kernels: `matmult`, `fir` and `binsearch`.
//!
//! * [`matmult`] — dense integer matrix multiply: triply nested
//!   constant-bound loops. The inner MAC loop is fully static, but the
//!   nesting disqualifies the outer levels from §IV-D, exercising the
//!   nested-loop classification paths.
//! * [`fir`] — finite-impulse-response filter over a sample stream:
//!   the classic DSP kernel, static tap loops inside a general
//!   streaming loop.
//! * [`binsearch`] — binary search probes over a sorted table:
//!   data-dependent two-sided conditionals with a `while lo < hi`
//!   register-bound loop (no §IV-D opt applies).

use armv8m_isa::{Asm, Module, Reg};
use mcu_sim::Machine;

use crate::devices::Lcg;
use crate::{Workload, SCRATCH_BUF};

fn no_devices(_machine: &mut Machine) {}

// --------------------------------------------------------------------
// matmult
// --------------------------------------------------------------------

/// Matrix dimension (N×N).
pub const MAT_N: u16 = 8;
const MAT_A: u32 = SCRATCH_BUF;
// A and B are filled by one contiguous LCG stream: B starts right
// after A's N*N words.
const MAT_B: u32 = SCRATCH_BUF + (MAT_N as u32 * MAT_N as u32 * 4);
const MAT_C: u32 = MAT_B + (MAT_N as u32 * MAT_N as u32 * 4);

/// Host-side oracle: checksum of `C = A × B` (same LCG fill).
pub fn matmult_oracle() -> u32 {
    let n = MAT_N as usize;
    let mut rng = Lcg::new(0x3A37);
    let a: Vec<u32> = (0..n * n).map(|_| rng.next_u32() & 0xFF).collect();
    let b: Vec<u32> = (0..n * n).map(|_| rng.next_u32() & 0xFF).collect();
    let mut sum = 0u32;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            sum = sum.wrapping_add(acc ^ (i as u32 * 31 + j as u32));
        }
    }
    sum
}

fn matmult_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.bl("fill_mats");
    a.bl("multiply");
    a.bl("checksum");
    a.mov(R7, R0);
    a.halt();

    // fill_mats: one LCG stream fills A then B (static loop).
    a.func("fill_mats");
    a.mov32(R1, MAT_A);
    a.mov32(R2, 0x3A37);
    a.mov32(R4, 1_664_525);
    a.mov32(R5, 1_013_904_223);
    a.movi(R3, MAT_N * MAT_N * 2);
    a.label("fm_loop");
    a.mul(R2, R2, R4);
    a.add(R2, R2, R5);
    a.movi(R6, 0xFF);
    a.and(R6, R6, R2);
    a.str_(R6, R1, 0);
    a.addi(R1, R1, 4);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("fm_loop");
    a.ret();

    // multiply: i/j loops are general (they contain the inner loop);
    // the k MAC loop is straight-line and fully static.
    a.func("multiply");
    a.movi(R8, 0); // i
    a.label("mi_loop");
    a.movi(R9, 0); // j
    a.label("mj_loop");
    // acc (R0) = Σ_k A[i*n+k] * B[k*n+j]
    a.movi(R0, 0);
    // R1 → &A[i*n], advancing by 4 per k.
    a.movi(R5, MAT_N * 4);
    a.mul(R1, R8, R5);
    a.mov32(R5, MAT_A);
    a.add(R1, R1, R5);
    // R2 → &B[j], advancing by n*4 per k.
    a.mov(R2, R9);
    a.lsl(R2, R2, 2);
    a.mov32(R5, MAT_B);
    a.add(R2, R2, R5);
    a.movi(R3, MAT_N); // k counter — static inner loop
    a.label("mk_loop");
    a.ldr(R4, R1, 0);
    a.ldr(R5, R2, 0);
    a.mul(R4, R4, R5);
    a.add(R0, R0, R4);
    a.addi(R1, R1, 4);
    a.addi(R2, R2, MAT_N * 4);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("mk_loop");
    // C[i*n+j] = acc
    a.movi(R5, MAT_N * 4);
    a.mul(R1, R8, R5);
    a.mov(R2, R9);
    a.lsl(R2, R2, 2);
    a.add(R1, R1, R2);
    a.mov32(R5, MAT_C);
    a.add(R1, R1, R5);
    a.str_(R0, R1, 0);
    a.addi(R9, R9, 1);
    a.cmpi(R9, MAT_N);
    a.bne("mj_loop");
    a.addi(R8, R8, 1);
    a.cmpi(R8, MAT_N);
    a.bne("mi_loop");
    a.ret();

    // checksum: Σ (C[i*n+j] ^ (i*31+j)) over the row-major walk.
    a.func("checksum");
    a.movi(R0, 0); // sum
    a.movi(R8, 0); // i
    a.label("ci_loop");
    a.movi(R9, 0); // j
    a.label("cj_loop");
    a.movi(R5, MAT_N * 4);
    a.mul(R1, R8, R5);
    a.mov(R2, R9);
    a.lsl(R2, R2, 2);
    a.add(R1, R1, R2);
    a.mov32(R5, MAT_C);
    a.add(R1, R1, R5);
    a.ldr(R3, R1, 0);
    // mix = i*31 + j
    a.movi(R5, 31);
    a.mul(R4, R8, R5);
    a.add(R4, R4, R9);
    a.eor(R3, R3, R4);
    a.add(R0, R0, R3);
    a.addi(R9, R9, 1);
    a.cmpi(R9, MAT_N);
    a.bne("cj_loop");
    a.addi(R8, R8, 1);
    a.cmpi(R8, MAT_N);
    a.bne("ci_loop");
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `matmult` workload.
pub fn matmult() -> Workload {
    Workload {
        name: "matmult",
        description: "BEEBS matmult: 8x8 integer matrix multiply, triply nested loops",
        module: matmult_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

// --------------------------------------------------------------------
// fir
// --------------------------------------------------------------------

/// Number of filter taps.
pub const FIR_TAPS: u16 = 8;
/// Samples filtered.
pub const FIR_SAMPLES: u16 = 64;
const FIR_COEFF: u32 = SCRATCH_BUF;
const FIR_IN: u32 = SCRATCH_BUF + 0x100;
const FIR_OUT: u32 = SCRATCH_BUF + 0x400;

/// Host-side oracle for the filtered-output checksum.
pub fn fir_oracle() -> u32 {
    let taps = FIR_TAPS as usize;
    let n = FIR_SAMPLES as usize;
    let coeff: Vec<u32> = (1..=taps as u32).collect();
    let mut rng = Lcg::new(0xF1F1);
    let input: Vec<u32> = (0..n + taps).map(|_| rng.next_u32() & 0x3FF).collect();
    let mut sum = 0u32;
    for i in 0..n {
        let mut acc = 0u32;
        for (k, c) in coeff.iter().enumerate() {
            acc = acc.wrapping_add(input[i + k].wrapping_mul(*c));
        }
        sum = sum.wrapping_add(acc >> 3);
    }
    sum
}

fn fir_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    a.bl("init");
    a.bl("filter");
    a.mov(R7, R0);
    a.halt();

    // init: coefficients 1..taps, then the input stream (static loops).
    a.func("init");
    a.mov32(R1, FIR_COEFF);
    a.movi(R2, 1);
    a.movi(R3, FIR_TAPS);
    a.label("co_loop");
    a.str_(R2, R1, 0);
    a.addi(R1, R1, 4);
    a.addi(R2, R2, 1);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("co_loop");
    a.mov32(R1, FIR_IN);
    a.mov32(R2, 0xF1F1);
    a.mov32(R4, 1_664_525);
    a.mov32(R5, 1_013_904_223);
    a.movi(R3, FIR_SAMPLES + FIR_TAPS);
    a.label("in_loop");
    a.mul(R2, R2, R4);
    a.add(R2, R2, R5);
    a.movi(R6, 0x3FF);
    a.and(R6, R6, R2);
    a.str_(R6, R1, 0);
    a.addi(R1, R1, 4);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("in_loop");
    a.ret();

    // filter: outer sample loop (general: nests the tap loop),
    // inner static MAC over the taps.
    a.func("filter");
    a.movi(R0, 0); // checksum
    a.movi(R8, 0); // sample index
    a.label("s_loop");
    a.movi(R1, 0); // acc
    a.mov(R2, R8);
    a.lsl(R2, R2, 2);
    a.mov32(R5, FIR_IN);
    a.add(R2, R2, R5); // &input[i]
    a.mov32(R3, FIR_COEFF);
    a.movi(R4, FIR_TAPS); // static tap loop
    a.label("t_loop");
    a.ldr(R5, R2, 0);
    a.ldr(R6, R3, 0);
    a.mul(R5, R5, R6);
    a.add(R1, R1, R5);
    a.addi(R2, R2, 4);
    a.addi(R3, R3, 4);
    a.subi(R4, R4, 1);
    a.cmpi(R4, 0);
    a.bne("t_loop");
    a.lsr(R1, R1, 3);
    a.add(R0, R0, R1);
    // store the filtered sample
    a.mov(R2, R8);
    a.lsl(R2, R2, 2);
    a.mov32(R5, FIR_OUT);
    a.add(R2, R2, R5);
    a.str_(R1, R2, 0);
    a.addi(R8, R8, 1);
    a.cmpi(R8, FIR_SAMPLES);
    a.bne("s_loop");
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `fir` workload.
pub fn fir() -> Workload {
    Workload {
        name: "fir",
        description: "BEEBS fir: 8-tap FIR filter over 64 samples",
        module: fir_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

// --------------------------------------------------------------------
// binsearch
// --------------------------------------------------------------------

/// Sorted-table size (entries).
pub const BS_LEN: u16 = 64;
/// Number of probes.
pub const BS_PROBES: u16 = 40;
const BS_TABLE: u32 = SCRATCH_BUF;

/// Host-side oracle: Σ found-index (or 0xFF for misses) over probes.
pub fn binsearch_oracle() -> u32 {
    let n = BS_LEN as u32;
    let table: Vec<u32> = (0..n).map(|i| i * 7 + 3).collect();
    let mut rng = Lcg::new(0xB5EA);
    let mut sum = 0u32;
    for _ in 0..BS_PROBES {
        let needle = rng.next_range(0, n * 7 + 10);
        let mut lo = 0u32;
        let mut hi = n;
        let mut found = 0xFFu32;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let v = table[mid as usize];
            if v == needle {
                found = mid;
                break;
            } else if v < needle {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        sum = sum.wrapping_add(found);
    }
    sum
}

fn binsearch_module() -> Module {
    use Reg::*;
    let mut a = Asm::new();

    a.func("main");
    // Build the sorted table: table[i] = i*7 + 3 (static loop).
    a.mov32(R1, BS_TABLE);
    a.movi(R2, 0); // i
    a.movi(R3, BS_LEN);
    a.label("tb_loop");
    a.movi(R5, 7);
    a.mul(R4, R2, R5);
    a.addi(R4, R4, 3);
    a.str_(R4, R1, 0);
    a.addi(R1, R1, 4);
    a.addi(R2, R2, 1);
    a.subi(R3, R3, 1);
    a.cmpi(R3, 0);
    a.bne("tb_loop");

    // Probe loop (general: calls search).
    a.movi(R7, 0); // checksum
    a.mov32(R8, 0xB5EA); // LCG state
    a.mov32(R10, 1_664_525);
    a.mov32(R11, 1_013_904_223);
    a.movi(R9, BS_PROBES);
    a.label("probe_loop");
    // needle = (lcg() >> 8) % (n*7 + 10)
    a.mul(R8, R8, R10);
    a.add(R8, R8, R11);
    a.mov(R0, R8);
    a.lsr(R0, R0, 8);
    a.movi(R1, BS_LEN * 7 + 10);
    a.udiv(R2, R0, R1);
    a.mul(R2, R2, R1);
    a.sub(R0, R0, R2);
    a.bl("search"); // r0 = index or 0xFF
    a.add(R7, R7, R0);
    a.subi(R9, R9, 1);
    a.cmpi(R9, 0);
    a.bne("probe_loop");
    a.halt();

    // search(needle): classic lo/hi binary search. Register-bound
    // loop with data-dependent three-way branching — no §IV-D opt.
    a.func("search");
    a.mov(R1, R0); // needle
    a.movi(R2, 0); // lo
    a.movi(R3, BS_LEN); // hi
    a.label("bs_loop");
    a.cmp(R2, R3);
    a.bcs("bs_miss"); // lo >= hi (unsigned)
    a.add(R4, R2, R3);
    a.lsr(R4, R4, 1); // mid
    a.mov32(R5, BS_TABLE);
    a.instr(armv8m_isa::Instr::LdrReg {
        rt: R6,
        rn: R5,
        rm: R4,
    }); // v = table[mid]
    a.cmp(R6, R1);
    a.beq("bs_hit");
    a.bcc("bs_right"); // v < needle (unsigned)
    a.mov(R3, R4); // hi = mid
    a.b("bs_loop");
    a.label("bs_right");
    a.addi(R2, R4, 1); // lo = mid + 1
    a.b("bs_loop");
    a.label("bs_hit");
    a.mov(R0, R4);
    a.ret();
    a.label("bs_miss");
    a.movi(R0, 0xFF);
    a.ret();

    a.into_module()
}

/// Builds the BEEBS `binsearch` workload.
pub fn binsearch() -> Workload {
    Workload {
        name: "binsearch",
        description: "BEEBS binsearch: 40 probes over a 64-entry sorted table",
        module: binsearch_module(),
        attach: no_devices,
        max_instrs: 10_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcu_sim::NullSecureWorld;

    fn run(w: &Workload) -> u32 {
        let image = w.module.assemble(0).unwrap();
        let mut m = Machine::new(image);
        (w.attach)(&mut m);
        m.run(&mut NullSecureWorld, w.max_instrs).expect("runs");
        m.cpu.reg(Reg::R7)
    }

    #[test]
    fn matmult_matches_oracle() {
        assert_eq!(run(&matmult()), matmult_oracle());
    }

    #[test]
    fn fir_matches_oracle() {
        assert_eq!(run(&fir()), fir_oracle());
    }

    #[test]
    fn binsearch_matches_oracle() {
        assert_eq!(run(&binsearch()), binsearch_oracle());
    }

    #[test]
    fn inner_mac_loops_are_static() {
        for w in [matmult(), fir()] {
            let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
            assert!(
                linked
                    .map
                    .loops_by_latch
                    .values()
                    .any(|l| matches!(l.kind, rap_link::LoopPlanKind::Static { .. })),
                "{}: the MAC loop should be static",
                w.name
            );
        }
    }

    #[test]
    fn binsearch_has_no_optimized_loops_inside_search() {
        // The search loop is register-vs-register bound: general.
        let w = binsearch();
        let linked = rap_link::link(&w.module, 0, rap_link::LinkOptions::default()).unwrap();
        // Only the table-build loop qualifies for a plan.
        assert!(linked.map.loops_by_latch.len() <= 2);
    }
}
