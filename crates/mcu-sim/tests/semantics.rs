//! Golden tests for the interpreter's architectural semantics: every
//! condition code against signed/unsigned comparisons, flag behaviour
//! across instruction classes, stack discipline and calling
//! conventions. These pin the CPU model the whole reproduction rests
//! on.

use armv8m_isa::{Asm, Cond, Reg};
use mcu_sim::{Machine, NullSecureWorld};

fn run(build: impl FnOnce(&mut Asm)) -> Machine {
    let mut a = Asm::new();
    build(&mut a);
    let image = a.into_module().assemble(0).expect("assembles");
    let mut m = Machine::new(image);
    m.run(&mut NullSecureWorld, 100_000).expect("runs");
    m
}

/// Runs `cmp lhs, rhs; b<cond> set_one` and returns whether the branch
/// was taken.
fn branch_taken(lhs: u32, rhs: u32, cond: Cond) -> bool {
    let m = run(|a| {
        a.movi(Reg::R7, 0);
        a.mov32(Reg::R0, lhs);
        a.mov32(Reg::R1, rhs);
        a.cmp(Reg::R0, Reg::R1);
        a.bcond(cond, "taken");
        a.halt();
        a.label("taken");
        a.movi(Reg::R7, 1);
        a.halt();
    });
    m.cpu.reg(Reg::R7) == 1
}

#[test]
fn equality_conditions() {
    assert!(branch_taken(5, 5, Cond::Eq));
    assert!(!branch_taken(5, 6, Cond::Eq));
    assert!(branch_taken(5, 6, Cond::Ne));
    assert!(!branch_taken(5, 5, Cond::Ne));
}

#[test]
fn unsigned_conditions() {
    // HI: unsigned >.
    assert!(branch_taken(6, 5, Cond::Hi));
    assert!(!branch_taken(5, 5, Cond::Hi));
    assert!(!branch_taken(4, 5, Cond::Hi));
    // 0xFFFF_FFFF is unsigned-huge.
    assert!(branch_taken(0xFFFF_FFFF, 1, Cond::Hi));
    // LS: unsigned <=.
    assert!(branch_taken(5, 5, Cond::Ls));
    assert!(branch_taken(4, 5, Cond::Ls));
    assert!(!branch_taken(6, 5, Cond::Ls));
    // CS/CC: unsigned >= / <.
    assert!(branch_taken(5, 5, Cond::Cs));
    assert!(branch_taken(6, 5, Cond::Cs));
    assert!(!branch_taken(4, 5, Cond::Cs));
    assert!(branch_taken(4, 5, Cond::Cc));
}

#[test]
fn signed_conditions() {
    let minus_one = -1i32 as u32;
    // -1 < 1 signed.
    assert!(branch_taken(minus_one, 1, Cond::Lt));
    assert!(!branch_taken(minus_one, 1, Cond::Ge));
    assert!(!branch_taken(minus_one, 1, Cond::Gt));
    assert!(branch_taken(minus_one, 1, Cond::Le));
    // 1 > -1 signed.
    assert!(branch_taken(1, minus_one, Cond::Gt));
    assert!(branch_taken(1, minus_one, Cond::Ge));
    // Equal values.
    assert!(branch_taken(7, 7, Cond::Ge));
    assert!(branch_taken(7, 7, Cond::Le));
    assert!(!branch_taken(7, 7, Cond::Lt));
    assert!(!branch_taken(7, 7, Cond::Gt));
    // INT_MIN vs INT_MAX (overflow-flag path).
    let int_min = i32::MIN as u32;
    let int_max = i32::MAX as u32;
    assert!(branch_taken(int_min, int_max, Cond::Lt));
    assert!(branch_taken(int_max, int_min, Cond::Gt));
}

#[test]
fn negative_and_overflow_flags() {
    // MI/PL track the sign of the subtraction result.
    assert!(branch_taken(3, 5, Cond::Mi));
    assert!(branch_taken(5, 3, Cond::Pl));
    // VS: signed overflow on INT_MIN - 1.
    assert!(branch_taken(i32::MIN as u32, 1, Cond::Vs));
    assert!(branch_taken(3, 1, Cond::Vc));
}

#[test]
fn arithmetic_sets_flags_moves_do_not() {
    // SUBS leaves Z when hitting zero; a following MOV must not
    // disturb it.
    let m = run(|a| {
        a.movi(Reg::R0, 1);
        a.subi(Reg::R0, Reg::R0, 1); // Z := 1
        a.movi(Reg::R1, 99); // MOVW: no flags
        a.mov(Reg::R2, Reg::R1); // MOV: no flags
        a.beq("z_preserved");
        a.movi(Reg::R7, 0);
        a.halt();
        a.label("z_preserved");
        a.movi(Reg::R7, 1);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R7), 1);
}

#[test]
fn logical_ops_preserve_carry() {
    // Set carry via a compare, then AND — C must survive.
    let m = run(|a| {
        a.movi(Reg::R0, 5);
        a.cmpi(Reg::R0, 3); // C := 1 (no borrow)
        a.movi(Reg::R1, 0xFF);
        a.and(Reg::R1, Reg::R1, Reg::R0); // logical: keeps C
        a.bcs("carry_alive");
        a.movi(Reg::R7, 0);
        a.halt();
        a.label("carry_alive");
        a.movi(Reg::R7, 1);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R7), 1);
}

#[test]
fn division_by_zero_yields_zero() {
    let m = run(|a| {
        a.movi(Reg::R0, 42);
        a.movi(Reg::R1, 0);
        a.udiv(Reg::R2, Reg::R0, Reg::R1);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R2), 0);
}

#[test]
fn multiplication_wraps() {
    let m = run(|a| {
        a.mov32(Reg::R0, 0x8000_0001);
        a.movi(Reg::R1, 2);
        a.mul(Reg::R2, Reg::R0, Reg::R1);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R2), 2);
}

#[test]
fn shifts_behave() {
    let m = run(|a| {
        a.movi(Reg::R0, 1);
        a.lsl(Reg::R1, Reg::R0, 31);
        a.lsr(Reg::R2, Reg::R1, 31);
        a.asr(Reg::R3, Reg::R1, 31); // sign-extends
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R1), 0x8000_0000);
    assert_eq!(m.cpu.reg(Reg::R2), 1);
    assert_eq!(m.cpu.reg(Reg::R3), 0xFFFF_FFFF);
}

#[test]
fn push_pop_are_mirror_images() {
    // PUSH stores ascending from the new SP; POP restores in the same
    // order — values must land back in their registers through an
    // arbitrary interleaving.
    let m = run(|a| {
        a.movi(Reg::R0, 10);
        a.movi(Reg::R1, 11);
        a.movi(Reg::R2, 12);
        a.push(&[Reg::R0, Reg::R1, Reg::R2]);
        a.movi(Reg::R0, 0);
        a.movi(Reg::R1, 0);
        a.movi(Reg::R2, 0);
        a.pop(&[Reg::R0, Reg::R1, Reg::R2]);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R0), 10);
    assert_eq!(m.cpu.reg(Reg::R1), 11);
    assert_eq!(m.cpu.reg(Reg::R2), 12);
}

#[test]
fn stack_layout_matches_arm_convention() {
    // After PUSH {r4, lr}: [sp] = r4, [sp+4] = lr.
    let m = run(|a| {
        a.movi(Reg::R4, 0xAB);
        a.mov32(Reg::R0, 0xCD); // pretend LR
        a.mov(Reg::Lr, Reg::R0);
        a.push(&[Reg::R4, Reg::Lr]);
        a.mov(Reg::R1, Reg::Sp);
        a.ldr(Reg::R2, Reg::R1, 0); // lowest address = lowest reg
        a.ldr(Reg::R3, Reg::R1, 4);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R2), 0xAB);
    assert_eq!(m.cpu.reg(Reg::R3), 0xCD);
}

#[test]
fn bl_sets_lr_to_following_instruction() {
    let m = run(|a| {
        a.func("main");
        a.bl("grab_lr"); // 4-byte BL at 0 → LR must be 4
        a.halt();
        a.func("grab_lr");
        a.mov(Reg::R6, Reg::Lr);
        a.ret();
    });
    assert_eq!(m.cpu.reg(Reg::R6), 4);
}

#[test]
fn blx_thumb_bit_is_masked() {
    // Addresses with bit 0 set (Thumb interworking) execute at the
    // even address.
    let m = run(|a| {
        a.func("main");
        a.load_addr(Reg::R3, "target");
        a.addi(Reg::R3, Reg::R3, 1); // set the Thumb bit
        a.blx(Reg::R3);
        a.halt();
        a.func("target");
        a.movi(Reg::R7, 77);
        a.ret();
    });
    assert_eq!(m.cpu.reg(Reg::R7), 77);
}

#[test]
fn movw_movt_compose_32_bit_constants() {
    let m = run(|a| {
        a.movi(Reg::R0, 0xBEEF);
        a.movt(Reg::R0, 0xDEAD);
        // MOVW then clears the top half again.
        a.mov(Reg::R1, Reg::R0);
        a.movi(Reg::R1, 0x1234);
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R0), 0xDEAD_BEEF);
    assert_eq!(m.cpu.reg(Reg::R1), 0x1234);
}

#[test]
fn byte_accesses_are_byte_sized() {
    let m = run(|a| {
        a.mov32(Reg::R1, mcu_sim::RAM_BASE);
        a.mov32(Reg::R0, 0x1122_33FF);
        a.str_(Reg::R0, Reg::R1, 0);
        a.ldrb(Reg::R2, Reg::R1, 0); // 0xFF
        a.ldrb(Reg::R3, Reg::R1, 3); // 0x11
        a.movi(Reg::R4, 0xAB);
        a.strb(Reg::R4, Reg::R1, 1);
        a.ldr(Reg::R5, Reg::R1, 0); // 0x1122ABFF
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R2), 0xFF);
    assert_eq!(m.cpu.reg(Reg::R3), 0x11);
    assert_eq!(m.cpu.reg(Reg::R5), 0x1122_ABFF);
}

#[test]
fn indexed_loads_scale_by_four() {
    let m = run(|a| {
        a.mov32(Reg::R1, mcu_sim::RAM_BASE);
        a.movi(Reg::R0, 111);
        a.str_(Reg::R0, Reg::R1, 0);
        a.movi(Reg::R0, 222);
        a.str_(Reg::R0, Reg::R1, 4);
        a.movi(Reg::R2, 1);
        a.ldr_idx(Reg::R3, Reg::R1, Reg::R2); // [r1 + 1*4]
        a.halt();
    });
    assert_eq!(m.cpu.reg(Reg::R3), 222);
}
