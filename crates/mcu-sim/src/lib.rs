//! # mcu-sim — a cycle-approximate Cortex-M33-like MCU platform
//!
//! The execution substrate for the RAP-Track reproduction: a
//! deterministic interpreter for the T-lite ISA ([`armv8m_isa`]) with
//!
//! * a documented [cycle-cost model](cycles) (pipeline-refill penalties,
//!   bus cycles, TrustZone context-switch costs),
//! * a TrustZone-style Secure/Non-Secure boundary: the [`SecureWorld`]
//!   trait models trusted Secure-World services invoked through secure
//!   gateways, charged the full transition cost,
//! * the NS-[`Mpu`] with configuration locking (code-injection defence),
//! * the MTB/DWT [`trace_units::TraceFabric`] stepped on every
//!   instruction, and
//! * adversarial memory-write injection ([`InjectedWrite`]) for the
//!   runtime-attack experiments.
//!
//! ```
//! use armv8m_isa::{Asm, Reg};
//! use mcu_sim::{Machine, NullSecureWorld};
//!
//! let mut a = Asm::new();
//! a.movi(Reg::R0, 21);
//! a.add(Reg::R0, Reg::R0, Reg::R0);
//! a.halt();
//! let image = a.into_module().assemble(0)?;
//!
//! let mut machine = Machine::new(image);
//! let outcome = machine.run(&mut NullSecureWorld, 1_000)?;
//! assert_eq!(machine.cpu.reg(Reg::R0), 42);
//! assert!(outcome.cycles >= outcome.instrs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cycles;
mod error;
mod machine;
mod mem;
mod mpu;

pub use error::ExecError;
pub use machine::{
    ArchState, Cpu, InjectedWrite, Machine, NullSecureWorld, RunOutcome, SecureEnv, SecureWorld,
};
pub use mem::{BusDevice, Memory, CODE_BASE, PERIPH_BASE, RAM_BASE, RAM_SIZE};
pub use mpu::{Mpu, ProtectedRegion};
