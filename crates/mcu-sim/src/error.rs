//! Execution faults raised by the simulated MCU.

use std::fmt;

/// A fault raised while executing the attested application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A data access touched an address no segment or device maps.
    UnmappedAddress {
        /// The faulting data address.
        addr: u32,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// A write hit a read-only MPU region (e.g. the locked application
    /// binary — the code-injection defence of §IV-A).
    MpuViolation {
        /// The faulting data address.
        addr: u32,
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// The PC does not point at a decoded instruction.
    InvalidPc {
        /// The bad program counter.
        pc: u32,
    },
    /// The instruction budget was exhausted (runaway-loop guard).
    InstructionBudgetExceeded {
        /// The configured budget.
        max_instrs: u64,
    },
    /// A secure-gateway service id was not recognized by the installed
    /// Secure World.
    UnknownService {
        /// The unknown service id.
        service: u8,
        /// PC of the `SG` instruction.
        pc: u32,
    },
    /// The Secure World refused the request (e.g. CF_Log storage
    /// exhausted with partial reports disabled).
    SecureWorld(String),
    /// An entry symbol was not found in the executing image.
    UnknownSymbol {
        /// The missing symbol name.
        symbol: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnmappedAddress { addr, pc } => {
                write!(f, "unmapped address {addr:#010x} accessed from {pc:#010x}")
            }
            ExecError::MpuViolation { addr, pc } => {
                write!(f, "mpu write violation at {addr:#010x} from {pc:#010x}")
            }
            ExecError::InvalidPc { pc } => write!(f, "pc {pc:#010x} is not executable"),
            ExecError::InstructionBudgetExceeded { max_instrs } => {
                write!(f, "instruction budget of {max_instrs} exceeded")
            }
            ExecError::UnknownService { service, pc } => {
                write!(
                    f,
                    "unknown secure service {service} requested at {pc:#010x}"
                )
            }
            ExecError::SecureWorld(msg) => write!(f, "secure world fault: {msg}"),
            ExecError::UnknownSymbol { symbol } => {
                write!(f, "unknown entry symbol `{symbol}`")
            }
        }
    }
}

impl std::error::Error for ExecError {}
