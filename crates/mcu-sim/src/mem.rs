//! The memory system: flat segments plus memory-mapped bus devices.
//!
//! The default map mirrors the AN505 Cortex-M33 image:
//!
//! | region | base | contents |
//! |---|---|---|
//! | code flash | `0x0000_0000` | the attested application image |
//! | SRAM | `0x2000_0000` | data, stack (descending from the top) |
//! | peripherals | `0x4000_0000`+ | sensor devices ([`BusDevice`]) |

use crate::ExecError;

/// Default base address of the code flash.
pub const CODE_BASE: u32 = 0x0000_0000;
/// Default base address of the SRAM.
pub const RAM_BASE: u32 = 0x2000_0000;
/// Default SRAM size (bytes).
pub const RAM_SIZE: u32 = 128 * 1024;
/// Start of the peripheral address space.
pub const PERIPH_BASE: u32 = 0x4000_0000;

/// A memory-mapped peripheral (sensor, GPIO, UART…).
///
/// Workloads implement this to feed synthetic sensor streams to the
/// attested application. Reads may have side effects (FIFO pops), so
/// both accessors take `&mut self`.
pub trait BusDevice {
    /// Inclusive base address of the device's register window.
    fn base(&self) -> u32;
    /// Size of the register window in bytes.
    fn size(&self) -> u32;
    /// Reads the 32-bit register at `offset` bytes into the window.
    fn read(&mut self, offset: u32) -> u32;
    /// Writes the 32-bit register at `offset` bytes into the window.
    fn write(&mut self, offset: u32, value: u32);

    /// Whether `addr` falls inside the device window.
    fn contains(&self, addr: u32) -> bool {
        addr >= self.base() && addr < self.base() + self.size()
    }
}

#[derive(Debug, Clone)]
struct Segment {
    base: u32,
    data: Vec<u8>,
}

impl Segment {
    fn contains(&self, addr: u32, len: u32) -> bool {
        addr >= self.base && addr + len <= self.base + self.data.len() as u32
    }
}

/// The bus: RAM/flash segments plus peripherals.
pub struct Memory {
    segments: Vec<Segment>,
    devices: Vec<Box<dyn BusDevice>>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("segments", &self.segments.len())
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl Memory {
    /// Creates a bus with no segments or devices mapped.
    pub fn new() -> Memory {
        Memory {
            segments: Vec::new(),
            devices: Vec::new(),
        }
    }

    /// Maps a RAM/flash segment at `base` with the given initial bytes.
    pub fn map_segment(&mut self, base: u32, data: Vec<u8>) {
        self.segments.push(Segment { base, data });
    }

    /// Maps a zero-initialized segment of `size` bytes at `base`.
    pub fn map_zeroed(&mut self, base: u32, size: u32) {
        self.map_segment(base, vec![0; size as usize]);
    }

    /// Attaches a peripheral.
    pub fn attach_device(&mut self, device: Box<dyn BusDevice>) {
        self.devices.push(device);
    }

    /// Exclusive access to an attached device, downcast by the caller.
    pub fn devices_mut(&mut self) -> &mut [Box<dyn BusDevice>] {
        &mut self.devices
    }

    fn segment(&self, addr: u32, len: u32) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(addr, len))
    }

    fn segment_mut(&mut self, addr: u32, len: u32) -> Option<&mut Segment> {
        self.segments.iter_mut().find(|s| s.contains(addr, len))
    }

    /// Reads a 32-bit word (unaligned allowed; the M33 supports it).
    pub fn read_word(&mut self, addr: u32, pc: u32) -> Result<u32, ExecError> {
        if let Some(seg) = self.segment(addr, 4) {
            let off = (addr - seg.base) as usize;
            let bytes = [
                seg.data[off],
                seg.data[off + 1],
                seg.data[off + 2],
                seg.data[off + 3],
            ];
            return Ok(u32::from_le_bytes(bytes));
        }
        for dev in &mut self.devices {
            if dev.contains(addr) {
                let off = addr - dev.base();
                return Ok(dev.read(off));
            }
        }
        Err(ExecError::UnmappedAddress { addr, pc })
    }

    /// Writes a 32-bit word.
    pub fn write_word(&mut self, addr: u32, value: u32, pc: u32) -> Result<(), ExecError> {
        if let Some(seg) = self.segment_mut(addr, 4) {
            let off = (addr - seg.base) as usize;
            seg.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        for dev in &mut self.devices {
            if dev.contains(addr) {
                let off = addr - dev.base();
                dev.write(off, value);
                return Ok(());
            }
        }
        Err(ExecError::UnmappedAddress { addr, pc })
    }

    /// Reads a byte (zero-extended by the caller).
    pub fn read_byte(&mut self, addr: u32, pc: u32) -> Result<u8, ExecError> {
        if let Some(seg) = self.segment(addr, 1) {
            return Ok(seg.data[(addr - seg.base) as usize]);
        }
        for dev in &mut self.devices {
            if dev.contains(addr) {
                let off = addr - dev.base();
                return Ok(dev.read(off & !3).to_le_bytes()[(addr & 3) as usize]);
            }
        }
        Err(ExecError::UnmappedAddress { addr, pc })
    }

    /// Writes a byte.
    pub fn write_byte(&mut self, addr: u32, value: u8, pc: u32) -> Result<(), ExecError> {
        if let Some(seg) = self.segment_mut(addr, 1) {
            seg.data[(addr - seg.base) as usize] = value;
            return Ok(());
        }
        Err(ExecError::UnmappedAddress { addr, pc })
    }

    /// Copies a byte slice out of mapped segments (test/verifier aid).
    pub fn read_bytes(&mut self, addr: u32, len: u32, pc: u32) -> Result<Vec<u8>, ExecError> {
        (0..len).map(|i| self.read_byte(addr + i, pc)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_read_write_roundtrip() {
        let mut mem = Memory::new();
        mem.map_zeroed(RAM_BASE, 64);
        mem.write_word(RAM_BASE + 8, 0xDEAD_BEEF, 0).unwrap();
        assert_eq!(mem.read_word(RAM_BASE + 8, 0).unwrap(), 0xDEAD_BEEF);
        assert_eq!(mem.read_byte(RAM_BASE + 8, 0).unwrap(), 0xEF);
        mem.write_byte(RAM_BASE + 9, 0x00, 0).unwrap();
        assert_eq!(mem.read_word(RAM_BASE + 8, 0).unwrap(), 0xDEAD_00EF);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut mem = Memory::new();
        mem.map_zeroed(RAM_BASE, 64);
        assert!(matches!(
            mem.read_word(RAM_BASE + 64, 0x10),
            Err(ExecError::UnmappedAddress { addr, pc: 0x10 }) if addr == RAM_BASE + 64
        ));
        assert!(matches!(
            mem.write_word(0x1000_0000, 1, 0),
            Err(ExecError::UnmappedAddress { .. })
        ));
    }

    struct Fifo {
        base: u32,
        values: Vec<u32>,
        next: usize,
        written: Vec<u32>,
    }

    impl BusDevice for Fifo {
        fn base(&self) -> u32 {
            self.base
        }
        fn size(&self) -> u32 {
            8
        }
        fn read(&mut self, _offset: u32) -> u32 {
            let v = self.values.get(self.next).copied().unwrap_or(0);
            self.next += 1;
            v
        }
        fn write(&mut self, _offset: u32, value: u32) {
            self.written.push(value);
        }
    }

    #[test]
    fn device_reads_have_side_effects() {
        let mut mem = Memory::new();
        mem.attach_device(Box::new(Fifo {
            base: PERIPH_BASE,
            values: vec![10, 20],
            next: 0,
            written: Vec::new(),
        }));
        assert_eq!(mem.read_word(PERIPH_BASE, 0).unwrap(), 10);
        assert_eq!(mem.read_word(PERIPH_BASE, 0).unwrap(), 20);
        assert_eq!(mem.read_word(PERIPH_BASE, 0).unwrap(), 0);
        mem.write_word(PERIPH_BASE + 4, 99, 0).unwrap();
    }

    #[test]
    fn word_access_spanning_segment_end_faults() {
        let mut mem = Memory::new();
        mem.map_zeroed(RAM_BASE, 6);
        assert!(mem.read_word(RAM_BASE + 2, 0).is_ok());
        assert!(mem.read_word(RAM_BASE + 4, 0).is_err());
    }
}
