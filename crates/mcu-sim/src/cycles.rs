//! The cycle-cost model.
//!
//! A deterministic, Cortex-M33-flavoured cost model. The M33 is a simple
//! in-order, two-stage-ish pipeline: most instructions are single-cycle,
//! taken branches pay a pipeline refill, loads/stores pay a bus cycle and
//! `UDIV` is multi-cycle. Secure-gateway transitions dominate everything
//! else; their cost (state clearing, stack sealing, register scrubbing on
//! the return path) is what makes instrumentation-based CFA slow, so the
//! constant is deliberately configurable for the ablation bench.
//!
//! Absolute values are *calibrated, not measured*: the experiments only
//! depend on the ratio between plain execution and context switches, and
//! the defaults land the TRACES baseline inside the overhead band the
//! paper reports (7%–1309%, Fig. 8).

/// Base cost of every instruction.
pub const BASE: u64 = 1;

/// Pipeline-refill penalty for any non-sequential PC change.
pub const BRANCH_TAKEN: u64 = 2;

/// Extra cost of a single load/store bus access.
pub const MEM_ACCESS: u64 = 1;

/// Per-register cost of `PUSH`/`POP`.
pub const PUSH_POP_PER_REG: u64 = 1;

/// Extra cost of `UDIV` (2–11 cycles on the M33; fixed mid value).
pub const UDIV: u64 = 5;

/// Cost of entering the Secure World through an NSC veneer (hardware
/// state banking plus the veneer prologue).
pub const SG_ENTRY: u64 = 60;

/// Cost of returning to the Non-Secure World (`BXNS`, register
/// scrubbing).
pub const SG_EXIT: u64 = 60;

/// Cost of the Secure-World logger body appending one `CF_Log` element
/// (bounds check + store + counter update, as in TRACES).
pub const LOG_APPEND: u64 = 30;

/// Cost of the Secure-World partial-report path per drained `CF_Log`
/// byte (hashing/MAC streaming), charged when the MTB watermark or an
/// instrumentation-side buffer limit triggers a report.
pub const REPORT_PER_BYTE: u64 = 4;

/// Fixed cost of assembling, authenticating and transmitting one
/// (partial) report.
pub const REPORT_FIXED: u64 = 2_000;

/// A bundle of the tunable context-switch costs, used by the ablation
/// bench to sweep the TEE-transition price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Secure-World entry cost (replaces [`SG_ENTRY`]).
    pub sg_entry: u64,
    /// Secure-World exit cost (replaces [`SG_EXIT`]).
    pub sg_exit: u64,
    /// Logger body cost (replaces [`LOG_APPEND`]).
    pub log_append: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            sg_entry: SG_ENTRY,
            sg_exit: SG_EXIT,
            log_append: LOG_APPEND,
        }
    }
}

impl CostModel {
    /// Total cost of one instrumented logging call: entry + body + exit.
    pub fn gateway_round_trip(&self) -> u64 {
        self.sg_entry + self.log_append + self.sg_exit
    }
}
