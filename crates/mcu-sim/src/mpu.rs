//! The Non-Secure Memory Protection Unit (NS-MPU) model.
//!
//! The CFA Engine marks the attested application's binary non-writable
//! and *locks* the MPU so the Non-Secure World cannot undo the
//! protection (paper §IV-A, following TRACES). Only the lock and
//! read-only enforcement matter to the experiments, so that is what the
//! model provides.

/// A read-only region enforced on Non-Secure writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectedRegion {
    /// Inclusive lower bound.
    pub base: u32,
    /// Exclusive upper bound.
    pub limit: u32,
}

impl ProtectedRegion {
    /// Whether `addr` falls inside the protected region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.limit
    }
}

/// The NS-MPU: a set of read-only regions plus a configuration lock.
#[derive(Debug, Clone, Default)]
pub struct Mpu {
    regions: Vec<ProtectedRegion>,
    locked: bool,
}

impl Mpu {
    /// Creates an MPU with no regions and the lock open.
    pub fn new() -> Mpu {
        Mpu::default()
    }

    /// Marks `[base, limit)` read-only for Non-Secure writes.
    ///
    /// Returns `false` (and does nothing) when the MPU is locked —
    /// the Non-Secure World cannot reconfigure it.
    pub fn protect(&mut self, region: ProtectedRegion) -> bool {
        if self.locked {
            return false;
        }
        self.regions.push(region);
        true
    }

    /// Removes all protections. Refused (returns `false`) when locked.
    pub fn clear(&mut self) -> bool {
        if self.locked {
            return false;
        }
        self.regions.clear();
        true
    }

    /// Locks the configuration (Secure-World privilege; the model does
    /// not expose an unlock short of [`Mpu::reset`], mirroring the
    /// until-reboot lock of the paper's design).
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Whether the configuration is locked.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Whether a write to `addr` is permitted.
    pub fn write_allowed(&self, addr: u32) -> bool {
        !self.regions.iter().any(|r| r.contains(addr))
    }

    /// The protected regions.
    pub fn regions(&self) -> &[ProtectedRegion] {
        &self.regions
    }

    /// Power-cycle reset: clears regions and the lock.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.locked = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protect_blocks_writes_in_range() {
        let mut mpu = Mpu::new();
        assert!(mpu.protect(ProtectedRegion {
            base: 0x0,
            limit: 0x100
        }));
        assert!(!mpu.write_allowed(0x0));
        assert!(!mpu.write_allowed(0xFF));
        assert!(mpu.write_allowed(0x100));
    }

    #[test]
    fn lock_prevents_reconfiguration() {
        let mut mpu = Mpu::new();
        mpu.protect(ProtectedRegion {
            base: 0x0,
            limit: 0x100,
        });
        mpu.lock();
        assert!(!mpu.protect(ProtectedRegion {
            base: 0x200,
            limit: 0x300
        }));
        assert!(!mpu.clear());
        assert!(!mpu.write_allowed(0x50), "protection survives the attempt");
        assert!(mpu.is_locked());
    }

    #[test]
    fn reset_unlocks() {
        let mut mpu = Mpu::new();
        mpu.protect(ProtectedRegion {
            base: 0x0,
            limit: 0x10,
        });
        mpu.lock();
        mpu.reset();
        assert!(!mpu.is_locked());
        assert!(mpu.write_allowed(0x5));
    }
}
