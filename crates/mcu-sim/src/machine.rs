//! The simulated MCU: CPU state, the instruction interpreter, the
//! Secure-World boundary and the attack-injection hooks.

use armv8m_isa::{Flags, Image, Instr, Reg, Target};
use trace_units::{MtbConfig, TraceFabric};

use crate::mem::{Memory, RAM_BASE, RAM_SIZE};
use crate::mpu::Mpu;
use crate::{cycles, ExecError};

/// Architectural CPU state.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// `R0`–`R12`, `SP`, `LR`, `PC`.
    pub regs: [u32; 16],
    /// APSR condition flags.
    pub flags: Flags,
    /// Cycle counter (the paper's Fig. 8 metric).
    pub cycles: u64,
    /// Retired-instruction counter.
    pub instr_count: u64,
    /// Set by `HALT`.
    pub halted: bool,
}

impl Cpu {
    /// Reads a register. `PC` reads return the current instruction
    /// address (the model does not expose the +4 pipeline offset).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index() as usize] = value;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.reg(Reg::Pc)
    }

    /// Current stack pointer.
    pub fn sp(&self) -> u32 {
        self.reg(Reg::Sp)
    }
}

/// Access the Secure World gets when invoked (gateway call or MTB
/// watermark debug event): the trace fabric plus the faulting context.
pub struct SecureEnv<'a> {
    /// The MTB/DWT fabric (Secure-World-only configuration surface).
    pub fabric: &'a mut TraceFabric,
    /// PC of the Non-Secure instruction that triggered the transition.
    pub pc: u32,
    /// Cycles consumed so far.
    pub cycles: u64,
}

/// The Secure-World runtime installed on the machine.
///
/// Implemented natively (host Rust) rather than in simulated
/// instructions: the Secure World is *trusted* in the paper's model, so
/// only its cycle cost and its effects matter. Implementations return
/// the cycles consumed by the handler *body*; the machine adds the
/// context-switch entry/exit costs itself.
pub trait SecureWorld {
    /// Handles a secure-gateway call (`SG service, arg`).
    ///
    /// # Errors
    ///
    /// Implementations may reject unknown services or signal internal
    /// faults; the machine surfaces these as [`ExecError`].
    fn on_gateway(
        &mut self,
        service: u8,
        arg: u32,
        env: &mut SecureEnv<'_>,
    ) -> Result<u64, ExecError>;

    /// Handles the MTB `MTB_FLOW` watermark debug event (partial
    /// reports, §IV-E). The default ignores it.
    ///
    /// # Errors
    ///
    /// Implementations may fail when, e.g., report transmission is
    /// modelled as impossible.
    fn on_watermark(&mut self, env: &mut SecureEnv<'_>) -> Result<u64, ExecError> {
        let _ = env;
        Ok(0)
    }
}

/// A Secure World that rejects every request — used for baseline runs
/// of uninstrumented applications.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSecureWorld;

impl SecureWorld for NullSecureWorld {
    fn on_gateway(
        &mut self,
        service: u8,
        _arg: u32,
        env: &mut SecureEnv<'_>,
    ) -> Result<u64, ExecError> {
        Err(ExecError::UnknownService {
            service,
            pc: env.pc,
        })
    }
}

/// A memory write injected by the (modelled) adversary at a chosen
/// point in execution — the runtime-attack primitive used by the
/// attack-detection experiments. It models a memory-corruption
/// vulnerability inside the application (e.g. an out-of-bounds store),
/// so it goes through the MPU like any Non-Secure write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedWrite {
    /// Fires after this many retired instructions.
    pub after_instrs: u64,
    /// Target address.
    pub addr: u32,
    /// 32-bit value to plant.
    pub value: u32,
}

/// A comparable snapshot of the *program-visible* architectural end
/// state: the low (data) registers, the APSR flags, the halt status and
/// a digest of RAM. High registers, `SP`/`LR`/`PC` and the cycle count
/// are deliberately excluded — they are layout- and instrumentation-
/// dependent, so they legitimately differ between an original binary
/// and its RAP-Track-relocated twin. Used by differential testing
/// (`rap-fuzz`) to assert transform equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchState {
    /// `R0`–`R7`.
    pub low_regs: [u32; 8],
    /// APSR condition flags.
    pub flags: Flags,
    /// Whether the CPU reached `HALT`.
    pub halted: bool,
    /// FNV-1a digest over the lower half of RAM (the half that cannot
    /// contain layout-dependent stack residue).
    pub ram_digest: u64,
}

/// Outcome of a completed (halted) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total CPU cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instrs: u64,
}

/// The simulated MCU.
pub struct Machine {
    /// CPU state.
    pub cpu: Cpu,
    /// The bus.
    pub mem: Memory,
    /// The NS-MPU.
    pub mpu: Mpu,
    /// MTB + DWT.
    pub fabric: TraceFabric,
    image: Image,
    injected: Vec<InjectedWrite>,
    transfer_trace: Option<Vec<(u32, u32)>>,
    cost: cycles::CostModel,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.cpu.pc())
            .field("cycles", &self.cpu.cycles)
            .finish()
    }
}

impl Machine {
    /// Creates a machine with `image` mapped at its base address, a
    /// default-sized SRAM, the stack pointer at the top of SRAM and the
    /// PC at the image's base.
    pub fn new(image: Image) -> Machine {
        Machine::with_mtb(image, MtbConfig::default())
    }

    /// As [`Machine::new`] with an explicit MTB configuration.
    pub fn with_mtb(image: Image, mtb: MtbConfig) -> Machine {
        let mut mem = Memory::new();
        mem.map_segment(image.base(), image.bytes().to_vec());
        mem.map_zeroed(RAM_BASE, RAM_SIZE);
        let mut cpu = Cpu::default();
        cpu.set_reg(Reg::Sp, RAM_BASE + RAM_SIZE);
        cpu.set_reg(Reg::Pc, image.base());
        Machine {
            cpu,
            mem,
            mpu: Mpu::new(),
            fabric: TraceFabric::new(mtb),
            image,
            injected: Vec::new(),
            transfer_trace: None,
            cost: cycles::CostModel::default(),
        }
    }

    /// The executing image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Sets the entry point (by symbol).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownSymbol`] when the image defines no
    /// symbol with that name, so callers (e.g. the CLI) can report the
    /// bad name instead of crashing.
    pub fn set_entry(&mut self, symbol: &str) -> Result<(), ExecError> {
        let addr = self
            .image
            .symbol(symbol)
            .ok_or_else(|| ExecError::UnknownSymbol {
                symbol: symbol.to_owned(),
            })?;
        self.cpu.set_reg(Reg::Pc, addr);
        Ok(())
    }

    /// Schedules an adversarial memory write (see [`InjectedWrite`]).
    pub fn inject_write(&mut self, write: InjectedWrite) {
        self.injected.push(write);
    }

    /// Overrides the TrustZone context-switch cost model (the
    /// `ablate-sg` sensitivity sweep).
    pub fn set_cost_model(&mut self, cost: cycles::CostModel) {
        self.cost = cost;
    }

    /// The active cost model.
    pub fn cost_model(&self) -> cycles::CostModel {
        self.cost
    }

    /// Starts recording a ground-truth trace of **every** non-sequential
    /// transfer `(source, dest)` the CPU executes — an oracle for
    /// cross-validating trace hardware and verifier reconstructions
    /// (this is what a cycle-accurate debugger would see, not what the
    /// MTB records).
    pub fn enable_transfer_trace(&mut self) {
        self.transfer_trace = Some(Vec::new());
    }

    /// The ground-truth transfer trace, if recording was enabled.
    pub fn transfer_trace(&self) -> Option<&[(u32, u32)]> {
        self.transfer_trace.as_deref()
    }

    /// Snapshots the program-visible architectural end state (see
    /// [`ArchState`] for what is included and why).
    pub fn arch_state(&mut self) -> ArchState {
        let mut low_regs = [0u32; 8];
        for (i, slot) in low_regs.iter_mut().enumerate() {
            *slot = self.cpu.regs[i];
        }
        // FNV-1a over the lower half of RAM; `read_bytes` cannot fail
        // for the machine's own zero-mapped RAM segment. The upper
        // half is excluded: the stack descends from the top, and its
        // residue below SP holds pushed return addresses — which are
        // layout-dependent and legitimately differ between an original
        // image and its relocated twin.
        let ram = self
            .mem
            .read_bytes(RAM_BASE, RAM_SIZE / 2, self.cpu.pc())
            .expect("RAM segment is always mapped");
        let mut digest = 0xCBF2_9CE4_8422_2325u64;
        for b in ram {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ArchState {
            low_regs,
            flags: self.cpu.flags,
            halted: self.cpu.halted,
            ram_digest: digest,
        }
    }

    /// Runs until `HALT`, a fault, or `max_instrs` retired instructions.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] raised by the core, the bus, the
    /// MPU or the Secure World.
    pub fn run(
        &mut self,
        secure: &mut dyn SecureWorld,
        max_instrs: u64,
    ) -> Result<RunOutcome, ExecError> {
        // Instrument at the run boundary (one delta, not one atomic per
        // instruction) so the interpreter's hot loop stays untouched.
        let retired_at_entry = self.cpu.instr_count;
        let result = (|| {
            while !self.cpu.halted {
                if self.cpu.instr_count >= max_instrs {
                    return Err(ExecError::InstructionBudgetExceeded { max_instrs });
                }
                self.step(secure)?;
            }
            Ok(RunOutcome {
                cycles: self.cpu.cycles,
                instrs: self.cpu.instr_count,
            })
        })();
        rap_obs::counter!("sim_instrs_retired_total").add(self.cpu.instr_count - retired_at_entry);
        if result.is_err() {
            rap_obs::counter!("sim_exceptions_total").inc();
        }
        result
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// See [`Machine::run`].
    pub fn step(&mut self, secure: &mut dyn SecureWorld) -> Result<(), ExecError> {
        let pc = self.cpu.pc();
        // DWT comparators see the PC of the instruction about to issue.
        self.fabric.pre_step(pc);

        let instr = self
            .image
            .instr_at(pc)
            .ok_or(ExecError::InvalidPc { pc })?
            .clone();
        let size = instr.size();
        let mut next_pc = pc + size;
        let mut cost = cycles::BASE;

        match &instr {
            Instr::MovImm { rd, imm } => self.cpu.set_reg(*rd, *imm as u32),
            Instr::MovTop { rd, imm } => {
                let low = self.cpu.reg(*rd) & 0xFFFF;
                self.cpu.set_reg(*rd, (*imm as u32) << 16 | low);
            }
            Instr::MovReg { rd, rm } => {
                let v = self.cpu.reg(*rm);
                self.cpu.set_reg(*rd, v);
            }
            Instr::AddImm { rd, rn, imm } => {
                let (v, f) = Flags::from_add(self.cpu.reg(*rn), *imm as u32, false);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = f;
            }
            Instr::AddReg { rd, rn, rm } => {
                let (v, f) = Flags::from_add(self.cpu.reg(*rn), self.cpu.reg(*rm), false);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = f;
            }
            Instr::SubImm { rd, rn, imm } => {
                let (v, f) = Flags::from_sub(self.cpu.reg(*rn), *imm as u32);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = f;
            }
            Instr::SubReg { rd, rn, rm } => {
                let (v, f) = Flags::from_sub(self.cpu.reg(*rn), self.cpu.reg(*rm));
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = f;
            }
            Instr::MulReg { rd, rn, rm } => {
                let v = self.cpu.reg(*rn).wrapping_mul(self.cpu.reg(*rm));
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::UdivReg { rd, rn, rm } => {
                let d = self.cpu.reg(*rm);
                // ARMv8-M UDIV with DIV_0_TRP clear: x / 0 == 0.
                let v = self.cpu.reg(*rn).checked_div(d).unwrap_or(0);
                self.cpu.set_reg(*rd, v);
                cost += cycles::UDIV;
            }
            Instr::AndReg { rd, rn, rm } => {
                let v = self.cpu.reg(*rn) & self.cpu.reg(*rm);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::OrrReg { rd, rn, rm } => {
                let v = self.cpu.reg(*rn) | self.cpu.reg(*rm);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::EorReg { rd, rn, rm } => {
                let v = self.cpu.reg(*rn) ^ self.cpu.reg(*rm);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::LslImm { rd, rm, shift } => {
                let v = self.cpu.reg(*rm) << (*shift & 31);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::LsrImm { rd, rm, shift } => {
                let v = self.cpu.reg(*rm) >> (*shift & 31);
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::AsrImm { rd, rm, shift } => {
                let v = ((self.cpu.reg(*rm) as i32) >> (*shift & 31)) as u32;
                self.cpu.set_reg(*rd, v);
                self.cpu.flags = Flags::from_logical(v, self.cpu.flags);
            }
            Instr::CmpImm { rn, imm } => {
                let (_, f) = Flags::from_sub(self.cpu.reg(*rn), *imm as u32);
                self.cpu.flags = f;
            }
            Instr::CmpReg { rn, rm } => {
                let (_, f) = Flags::from_sub(self.cpu.reg(*rn), self.cpu.reg(*rm));
                self.cpu.flags = f;
            }
            Instr::LdrImm { rt, rn, offset } => {
                let addr = self.cpu.reg(*rn).wrapping_add(*offset as u32);
                let v = self.mem.read_word(addr, pc)?;
                cost += cycles::MEM_ACCESS;
                if *rt == Reg::Pc {
                    next_pc = v & !1;
                } else {
                    self.cpu.set_reg(*rt, v);
                }
            }
            Instr::LdrReg { rt, rn, rm } => {
                let addr = self
                    .cpu
                    .reg(*rn)
                    .wrapping_add(self.cpu.reg(*rm).wrapping_shl(2));
                let v = self.mem.read_word(addr, pc)?;
                cost += cycles::MEM_ACCESS;
                if *rt == Reg::Pc {
                    next_pc = v & !1;
                } else {
                    self.cpu.set_reg(*rt, v);
                }
            }
            Instr::StrImm { rt, rn, offset } => {
                let addr = self.cpu.reg(*rn).wrapping_add(*offset as u32);
                self.checked_write_word(addr, self.cpu.reg(*rt), pc)?;
                cost += cycles::MEM_ACCESS;
            }
            Instr::LdrbImm { rt, rn, offset } => {
                let addr = self.cpu.reg(*rn).wrapping_add(*offset as u32);
                let v = self.mem.read_byte(addr, pc)? as u32;
                self.cpu.set_reg(*rt, v);
                cost += cycles::MEM_ACCESS;
            }
            Instr::LdrbReg { rt, rn, rm } => {
                let addr = self.cpu.reg(*rn).wrapping_add(self.cpu.reg(*rm));
                let v = self.mem.read_byte(addr, pc)? as u32;
                self.cpu.set_reg(*rt, v);
                cost += cycles::MEM_ACCESS;
            }
            Instr::StrbImm { rt, rn, offset } => {
                let addr = self.cpu.reg(*rn).wrapping_add(*offset as u32);
                if !self.mpu.write_allowed(addr) {
                    return Err(ExecError::MpuViolation { addr, pc });
                }
                self.mem.write_byte(addr, self.cpu.reg(*rt) as u8, pc)?;
                cost += cycles::MEM_ACCESS;
            }
            Instr::Push { list } => {
                let n = list.len();
                let mut sp = self.cpu.sp().wrapping_sub(4 * n);
                self.cpu.set_reg(Reg::Sp, sp);
                for reg in list.iter() {
                    self.checked_write_word(sp, self.cpu.reg(reg), pc)?;
                    sp += 4;
                }
                cost += cycles::PUSH_POP_PER_REG * n as u64;
            }
            Instr::Pop { list } => {
                let mut sp = self.cpu.sp();
                for reg in list.iter() {
                    let v = self.mem.read_word(sp, pc)?;
                    sp += 4;
                    if reg == Reg::Pc {
                        next_pc = v & !1;
                    } else {
                        self.cpu.set_reg(reg, v);
                    }
                }
                self.cpu.set_reg(Reg::Sp, sp);
                cost += cycles::PUSH_POP_PER_REG * list.len() as u64;
            }
            Instr::B { target } => next_pc = abs_target(target),
            Instr::BCond { cond, target } => {
                if cond.passes(self.cpu.flags) {
                    next_pc = abs_target(target);
                }
            }
            Instr::Bl { target } => {
                self.cpu.set_reg(Reg::Lr, pc + size);
                next_pc = abs_target(target);
            }
            Instr::Blx { rm } => {
                let dest = self.cpu.reg(*rm) & !1;
                self.cpu.set_reg(Reg::Lr, pc + size);
                next_pc = dest;
            }
            Instr::Bx { rm } => {
                next_pc = self.cpu.reg(*rm) & !1;
            }
            Instr::Nop => {}
            Instr::SecureGateway { service, arg } => {
                let arg_value = self.cpu.reg(*arg);
                rap_obs::counter!("sim_sg_crossings_total").inc();
                let mut env = SecureEnv {
                    fabric: &mut self.fabric,
                    pc,
                    cycles: self.cpu.cycles,
                };
                let body = secure.on_gateway(*service, arg_value, &mut env)?;
                cost += self.cost.sg_entry + body + self.cost.sg_exit;
            }
            Instr::Halt => {
                self.cpu.halted = true;
            }
        }

        let taken = next_pc != pc + size;
        if taken {
            cost += cycles::BRANCH_TAKEN;
            self.fabric.on_branch(pc, next_pc);
            if let Some(trace) = &mut self.transfer_trace {
                trace.push((pc, next_pc));
            }
        }

        self.cpu.set_reg(Reg::Pc, next_pc);
        self.cpu.cycles += cost;
        self.cpu.instr_count += 1;

        // MTB watermark: debug event into the Secure World (§IV-E).
        if self.fabric.mtb().watermark_hit() {
            rap_obs::counter!("sim_watermark_events_total").inc();
            let mut env = SecureEnv {
                fabric: &mut self.fabric,
                pc: next_pc,
                cycles: self.cpu.cycles,
            };
            let body = secure.on_watermark(&mut env)?;
            self.cpu.cycles += self.cost.sg_entry + body + self.cost.sg_exit;
        }

        // Adversarial writes fire between instructions.
        let count = self.cpu.instr_count;
        let due: Vec<InjectedWrite> = self
            .injected
            .iter()
            .copied()
            .filter(|w| w.after_instrs == count)
            .collect();
        for w in due {
            if !self.mpu.write_allowed(w.addr) {
                return Err(ExecError::MpuViolation {
                    addr: w.addr,
                    pc: next_pc,
                });
            }
            self.mem.write_word(w.addr, w.value, next_pc)?;
        }

        Ok(())
    }

    fn checked_write_word(&mut self, addr: u32, value: u32, pc: u32) -> Result<(), ExecError> {
        if !self.mpu.write_allowed(addr) {
            return Err(ExecError::MpuViolation { addr, pc });
        }
        self.mem.write_word(addr, value, pc)
    }
}

fn abs_target(target: &Target) -> u32 {
    target
        .abs()
        .expect("assembled images contain only resolved targets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::Asm;

    fn run_asm(build: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        build(&mut a);
        let image = a.into_module().assemble(0).expect("assembles");
        let mut m = Machine::new(image);
        m.run(&mut NullSecureWorld, 1_000_000).expect("runs");
        m
    }

    #[test]
    fn arithmetic_and_halt() {
        let m = run_asm(|a| {
            a.movi(Reg::R0, 6);
            a.movi(Reg::R1, 7);
            a.mul(Reg::R2, Reg::R0, Reg::R1);
            a.halt();
        });
        assert_eq!(m.cpu.reg(Reg::R2), 42);
        assert!(m.cpu.halted);
    }

    #[test]
    fn countdown_loop_iterates() {
        let m = run_asm(|a| {
            a.movi(Reg::R0, 5);
            a.movi(Reg::R1, 0);
            a.label("loop");
            a.addi(Reg::R1, Reg::R1, 3);
            a.subi(Reg::R0, Reg::R0, 1);
            a.bne("loop");
            a.halt();
        });
        assert_eq!(m.cpu.reg(Reg::R1), 15);
    }

    #[test]
    fn call_and_return_via_lr() {
        let m = run_asm(|a| {
            a.func("main");
            a.movi(Reg::R0, 1);
            a.bl("double");
            a.bl("double");
            a.halt();
            a.func("double");
            a.add(Reg::R0, Reg::R0, Reg::R0);
            a.ret();
        });
        assert_eq!(m.cpu.reg(Reg::R0), 4);
    }

    #[test]
    fn nested_call_with_stacked_lr() {
        let m = run_asm(|a| {
            a.func("main");
            a.movi(Reg::R0, 2);
            a.bl("outer");
            a.halt();
            a.func("outer");
            a.push(&[Reg::Lr]);
            a.bl("inner");
            a.addi(Reg::R0, Reg::R0, 1);
            a.pop(&[Reg::Pc]);
            a.func("inner");
            a.add(Reg::R0, Reg::R0, Reg::R0);
            a.ret();
        });
        // 2 → inner doubles → 4 → outer adds 1 → 5.
        assert_eq!(m.cpu.reg(Reg::R0), 5);
    }

    #[test]
    fn indirect_call_via_blx() {
        let m = run_asm(|a| {
            a.func("main");
            a.load_addr(Reg::R3, "callee");
            a.movi(Reg::R0, 10);
            a.blx(Reg::R3);
            a.halt();
            a.func("callee");
            a.addi(Reg::R0, Reg::R0, 5);
            a.ret();
        });
        assert_eq!(m.cpu.reg(Reg::R0), 15);
    }

    #[test]
    fn stack_push_pop_roundtrip() {
        let m = run_asm(|a| {
            a.movi(Reg::R4, 11);
            a.movi(Reg::R5, 22);
            a.push(&[Reg::R4, Reg::R5]);
            a.movi(Reg::R4, 0);
            a.movi(Reg::R5, 0);
            a.pop(&[Reg::R4, Reg::R5]);
            a.halt();
        });
        assert_eq!(m.cpu.reg(Reg::R4), 11);
        assert_eq!(m.cpu.reg(Reg::R5), 22);
        assert_eq!(m.cpu.sp(), RAM_BASE + RAM_SIZE);
    }

    #[test]
    fn memory_load_store() {
        let m = run_asm(|a| {
            a.mov32(Reg::R1, RAM_BASE);
            a.movi(Reg::R0, 123);
            a.str_(Reg::R0, Reg::R1, 16);
            a.ldr(Reg::R2, Reg::R1, 16);
            a.strb(Reg::R2, Reg::R1, 20);
            a.ldrb(Reg::R3, Reg::R1, 20);
            a.halt();
        });
        assert_eq!(m.cpu.reg(Reg::R2), 123);
        assert_eq!(m.cpu.reg(Reg::R3), 123);
    }

    #[test]
    fn unknown_entry_symbol_is_a_typed_error() {
        let mut a = Asm::new();
        a.func("main");
        a.halt();
        let image = a.into_module().assemble(0).unwrap();
        let mut m = Machine::new(image);
        m.set_entry("main").expect("known symbol resolves");
        match m.set_entry("no_such_func") {
            Err(ExecError::UnknownSymbol { symbol }) => assert_eq!(symbol, "no_such_func"),
            other => panic!("expected UnknownSymbol, got {other:?}"),
        }
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let mut a = Asm::new();
        a.label("spin");
        a.b("spin");
        let image = a.into_module().assemble(0).unwrap();
        let mut m = Machine::new(image);
        assert!(matches!(
            m.run(&mut NullSecureWorld, 100),
            Err(ExecError::InstructionBudgetExceeded { max_instrs: 100 })
        ));
    }

    #[test]
    fn mpu_blocks_store_to_locked_code() {
        let mut a = Asm::new();
        a.movi(Reg::R0, 0xAA);
        a.movi(Reg::R1, 0); // address 0 = code base
        a.str_(Reg::R0, Reg::R1, 0);
        a.halt();
        let image = a.into_module().assemble(0).unwrap();
        let end = image.end();
        let mut m = Machine::new(image);
        m.mpu.protect(crate::ProtectedRegion {
            base: 0,
            limit: end,
        });
        m.mpu.lock();
        assert!(matches!(
            m.run(&mut NullSecureWorld, 1000),
            Err(ExecError::MpuViolation { .. })
        ));
    }

    #[test]
    fn naive_mtb_traces_all_transfers() {
        let mut a = Asm::new();
        a.movi(Reg::R0, 3);
        a.label("loop");
        a.subi(Reg::R0, Reg::R0, 1);
        a.bne("loop");
        a.halt();
        let image = a.into_module().assemble(0).unwrap();
        let mut m = Machine::new(image);
        m.fabric.mtb_mut().set_master_trace(true);
        m.run(&mut NullSecureWorld, 1000).unwrap();
        // Two taken back edges (R0: 3→2→1, the final 1→0 falls through).
        assert_eq!(m.fabric.mtb().total_recorded(), 2);
    }

    #[test]
    fn injected_write_corrupts_ram() {
        let mut a = Asm::new();
        a.mov32(Reg::R1, RAM_BASE);
        a.movi(Reg::R0, 1);
        a.str_(Reg::R0, Reg::R1, 0);
        a.nop();
        a.nop();
        a.ldr(Reg::R2, Reg::R1, 0);
        a.halt();
        let image = a.into_module().assemble(0).unwrap();
        let mut m = Machine::new(image);
        // MOVW+MOVT+pad = 3 retired instructions for mov32, +1 movi, +1 str.
        m.inject_write(InjectedWrite {
            after_instrs: 5,
            addr: RAM_BASE,
            value: 0x666,
        });
        m.run(&mut NullSecureWorld, 1000).unwrap();
        assert_eq!(m.cpu.reg(Reg::R2), 0x666);
    }

    #[test]
    fn cycle_costs_accumulate() {
        let m = run_asm(|a| {
            a.nop(); // 1
            a.nop(); // 1
            a.halt(); // 1
        });
        assert_eq!(m.cpu.cycles, 3);

        let m = run_asm(|a| {
            a.b("next"); // 1 + branch penalty
            a.nop(); // skipped
            a.label("next");
            a.halt(); // 1
        });
        assert_eq!(m.cpu.cycles, 1 + cycles::BRANCH_TAKEN + 1);
    }
}
