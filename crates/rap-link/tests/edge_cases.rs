//! Offline-phase edge cases: program shapes at the boundaries of the
//! classifier and transformer. Every case runs the full pipeline
//! (link → attest → verify) and round-trips its relocation map through
//! the text serializer, so the map format is proven faithful exactly
//! where the layouts get unusual.

use armv8m_isa::{Asm, Reg};
use rap_link::{link, read_map, write_map, LinkMap, LinkOptions, SiteKind};
use rap_track::{device_key, CfaEngine, Challenge, EngineConfig, PathEvent, Verifier};

/// Serializes `map`, parses it back and asserts every field survived.
fn assert_map_roundtrip(map: &LinkMap) {
    let text = write_map(map);
    let back = read_map(&text).expect("serialized map parses back");
    assert_eq!(back.mtbdr, map.mtbdr);
    assert_eq!(back.mtbar, map.mtbar);
    assert_eq!(back.original_size, map.original_size);
    assert_eq!(back.sites_by_entry.len(), map.sites_by_entry.len());
    for (entry, site) in &map.sites_by_entry {
        assert_eq!(back.sites_by_entry.get(entry), Some(site));
    }
    assert_eq!(back.sites_by_src.len(), map.sites_by_src.len());
    for (src, site) in &map.sites_by_src {
        assert_eq!(back.sites_by_src.get(src), Some(site));
    }
    assert_eq!(back.loops_by_latch.len(), map.loops_by_latch.len());
    for (latch, l) in &map.loops_by_latch {
        assert_eq!(back.loops_by_latch.get(latch), Some(l));
    }
    assert_eq!(back.funcs, map.funcs);
}

/// Links, attests and verifies; returns the reconstructed events.
fn attest_and_verify(linked: &rap_link::LinkedProgram, label: &str) -> Vec<PathEvent> {
    let key = device_key("edge");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    let chal = Challenge::from_seed(21);
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .unwrap_or_else(|e| panic!("{label}: attest: {e}"));
    assert!(machine.cpu.halted, "{label}: did not halt");
    let verifier = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");
    let path = verifier
        .verify(chal, &att.reports)
        .unwrap_or_else(|e| panic!("{label}: verify: {e}"));
    assert!(
        matches!(path.events.last(), Some(PathEvent::Halt(_))),
        "{label}: replay did not reach HALT"
    );
    path.events
}

/// A conditional branch as the *last* instruction of the rewritten
/// region: nothing follows it, so its fall-through edge points at the
/// region boundary. Reached only with `Z == 0`, the `bne` is always
/// taken — the program is sound, but the transformer must handle a
/// conditional with no successor instruction.
#[test]
fn conditional_branch_as_last_instruction_of_region() {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, 3);
    a.b("loop");
    a.label("done");
    a.halt();
    a.label("loop");
    a.subi(Reg::R0, Reg::R0, 1);
    a.cmpi(Reg::R0, 0);
    a.beq("done");
    a.bne("loop"); // last instruction; always taken when reached
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");

    let events = attest_and_verify(&linked, "cond-last");
    // The loop actually iterated: at least one taken backward branch
    // (or an optimized loop reconstruction) is in the path.
    assert!(
        events.iter().any(|e| matches!(
            e,
            PathEvent::CondTaken { .. } | PathEvent::LoopIterations { .. }
        )),
        "no loop activity reconstructed: {events:?}"
    );
    assert_map_roundtrip(&linked.map);
}

/// Two indirect calls with no instruction between them: the rewritten
/// sites and their stubs must not collide or merge.
#[test]
fn back_to_back_indirect_calls() {
    let mut a = Asm::new();
    a.func("main");
    a.load_addr(Reg::R5, "inc");
    a.load_addr(Reg::R6, "dbl");
    a.blx(Reg::R5);
    a.blx(Reg::R6); // immediately follows the first call's return
    a.halt();
    a.func("inc");
    a.addi(Reg::R0, Reg::R0, 1);
    a.ret();
    a.func("dbl");
    a.add(Reg::R0, Reg::R0, Reg::R0);
    a.ret();
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");

    let indirect_sites = linked
        .map
        .sites_by_entry
        .values()
        .filter(|s| matches!(s.kind, SiteKind::IndirectCall))
        .count();
    assert_eq!(indirect_sites, 2, "each call needs its own stub");

    let events = attest_and_verify(&linked, "back-to-back");
    let calls: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            PathEvent::IndirectCall { dest, .. } => Some(*dest),
            _ => None,
        })
        .collect();
    assert_eq!(calls.len(), 2, "both indirect calls reconstructed");
    assert_ne!(calls[0], calls[1]);
    assert_map_roundtrip(&linked.map);
}

/// A program with no instrumentable transfers at all: straight-line
/// arithmetic into HALT. The MTBAR is empty (no stubs), the log is
/// empty, and the verifier accepts on `H_MEM` + replay alone. The map
/// serializer must round-trip the no-regions shape.
#[test]
fn empty_mtbar() {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, 40);
    a.addi(Reg::R0, Reg::R0, 2);
    a.halt();
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");

    assert_eq!(linked.map.site_count(), 0, "no stubs expected");
    assert!(
        linked.map.mtbar.is_none_or(|r| r.is_empty()),
        "MTBAR must be empty: {:?}",
        linked.map.mtbar
    );

    let key = device_key("edge");
    let engine = CfaEngine::new(key.clone());
    let mut machine = mcu_sim::Machine::new(linked.image.clone());
    let chal = Challenge::from_seed(22);
    let att = engine
        .attest(&mut machine, &linked.map, chal, EngineConfig::default())
        .expect("attests");
    assert!(
        att.combined_log().is_empty(),
        "straight-line code must log nothing"
    );
    let verifier = Verifier::builder()
        .key(key)
        .image(linked.image.clone())
        .map(linked.map.clone())
        .build()
        .expect("key/image/map are all set");
    verifier.verify(chal, &att.reports).expect("verifies");
    assert_map_roundtrip(&linked.map);
}

/// A function whose every branch is deterministic — static loop,
/// direct call, unconditional jumps. The classifier should need no
/// MTB packets for it: the whole control flow replays from the image
/// alone (the paper's deterministic-transfer elision).
#[test]
fn function_with_only_deterministic_branches() {
    let mut a = Asm::new();
    a.func("main");
    a.movi(Reg::R0, 0);
    // Static countdown loop — trip count visible to the classifier.
    a.movi(Reg::R2, 4);
    a.label("head");
    a.addi(Reg::R0, Reg::R0, 1);
    a.bl("leaf");
    a.subi(Reg::R2, Reg::R2, 1);
    a.cmpi(Reg::R2, 0);
    a.bne("head");
    a.b("out");
    a.label("out");
    a.halt();
    a.func("leaf");
    a.addi(Reg::R1, Reg::R1, 1);
    a.ret();
    let linked = link(&a.into_module(), 0, LinkOptions::default()).expect("links");

    let events = attest_and_verify(&linked, "deterministic");
    // The loop and the direct calls replay without MTB evidence; only
    // the leaf's return is inherently non-deterministic hardware-wise.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, PathEvent::Call { .. } | PathEvent::LoopIterations { .. })),
        "deterministic control flow missing from the path: {events:?}"
    );
    assert!(
        !events.iter().any(|e| matches!(
            e,
            PathEvent::IndirectCall { .. } | PathEvent::IndirectJump { .. }
        )),
        "nothing here is indirect"
    );
    assert_map_roundtrip(&linked.map);
}
