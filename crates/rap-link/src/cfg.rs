//! Control-flow graph recovery over an assembly module.
//!
//! The offline phase needs function boundaries, intra-procedural edges,
//! dominators and natural loops to classify branches the way the paper
//! does (§IV-B–§IV-D). The CFG is built from the module's instruction
//! list and symbol markers — the same information a binary-level tool
//! recovers from an ELF image and its symbol table.

use std::collections::HashMap;

use armv8m_isa::{BranchKind, Instr, Item, Module, Reg, Target};

/// A flattened module node: one instruction (or `LoadAddr` pseudo) plus
/// the labels attached to it.
#[derive(Debug, Clone)]
pub struct FlatNode {
    /// Labels defined immediately before this instruction.
    pub labels: Vec<String>,
    /// Function name when this instruction is a function entry.
    pub func_entry: Option<String>,
    /// The operation.
    pub op: FlatOp,
}

/// The operation held by a [`FlatNode`].
#[derive(Debug, Clone)]
pub enum FlatOp {
    /// A machine instruction.
    Instr(Instr),
    /// The `LoadAddr` pseudo-instruction (never a branch).
    LoadAddr {
        /// Destination register.
        rd: Reg,
        /// Materialized target.
        target: Target,
    },
}

impl FlatNode {
    /// The instruction, when the node is not a pseudo-op.
    pub fn instr(&self) -> Option<&Instr> {
        match &self.op {
            FlatOp::Instr(i) => Some(i),
            FlatOp::LoadAddr { .. } => None,
        }
    }

    /// Control-flow class of the node.
    pub fn branch_kind(&self) -> BranchKind {
        match &self.op {
            FlatOp::Instr(i) => i.branch_kind(),
            FlatOp::LoadAddr { .. } => BranchKind::None,
        }
    }

    /// Whether execution can continue at the next node.
    pub fn falls_through(&self) -> bool {
        match &self.op {
            FlatOp::Instr(i) => i.falls_through(),
            FlatOp::LoadAddr { .. } => true,
        }
    }
}

/// The recovered control-flow graph of one module.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Flattened nodes in layout order.
    pub nodes: Vec<FlatNode>,
    /// Label name → node index.
    pub label_index: HashMap<String, usize>,
    /// `functions[f] = (name, first_node, one_past_last_node)`.
    pub functions: Vec<(String, usize, usize)>,
    /// Intra-procedural successors of each node (fall-through + direct
    /// targets; calls fall through, indirect transfers have none).
    pub succs: Vec<Vec<usize>>,
    /// Natural loops, innermost-last in discovery order.
    pub loops: Vec<NaturalLoop>,
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header node.
    pub header: usize,
    /// The node holding the back-edge branch.
    pub latch: usize,
    /// All nodes in the loop body (header and latch included).
    pub body: Vec<usize>,
}

impl NaturalLoop {
    /// Whether `node` belongs to the loop body.
    pub fn contains(&self, node: usize) -> bool {
        self.body.binary_search(&node).is_ok()
    }
}

/// Errors raised during CFG recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A branch referenced an undefined label.
    UndefinedLabel(String),
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgError::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
        }
    }
}

impl std::error::Error for CfgError {}

impl Cfg {
    /// Recovers the CFG of `module`.
    ///
    /// # Errors
    ///
    /// [`CfgError::UndefinedLabel`] when a branch targets a label the
    /// module never defines.
    pub fn build(module: &Module) -> Result<Cfg, CfgError> {
        // Flatten items into nodes, collecting labels.
        let mut nodes: Vec<FlatNode> = Vec::new();
        let mut pending_labels: Vec<String> = Vec::new();
        let mut pending_func: Option<String> = None;
        for item in &module.items {
            match item {
                Item::Label(name) => pending_labels.push(name.clone()),
                Item::Func(name) => {
                    pending_labels.push(name.clone());
                    pending_func = Some(name.clone());
                }
                Item::Instr(i) => {
                    nodes.push(FlatNode {
                        labels: std::mem::take(&mut pending_labels),
                        func_entry: pending_func.take(),
                        op: FlatOp::Instr(i.clone()),
                    });
                }
                Item::LoadAddr { rd, target } => {
                    nodes.push(FlatNode {
                        labels: std::mem::take(&mut pending_labels),
                        func_entry: pending_func.take(),
                        op: FlatOp::LoadAddr {
                            rd: *rd,
                            target: target.clone(),
                        },
                    });
                }
            }
        }

        let mut label_index = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            for label in &node.labels {
                label_index.insert(label.clone(), i);
            }
        }

        // Function ranges: from each Func marker to the next.
        let mut functions: Vec<(String, usize, usize)> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            if let Some(name) = &node.func_entry {
                if let Some(last) = functions.last_mut() {
                    last.2 = i;
                }
                functions.push((name.clone(), i, nodes.len()));
            }
        }
        // A module without Func markers is one anonymous function.
        if functions.is_empty() && !nodes.is_empty() {
            functions.push(("<module>".to_owned(), 0, nodes.len()));
        }

        // Successor edges.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            let mut out = Vec::new();
            if node.falls_through() && i + 1 < nodes.len() {
                out.push(i + 1);
            }
            if let Some(instr) = node.instr() {
                // Calls transfer out-of-function; only intra edges here.
                if !matches!(instr.branch_kind(), BranchKind::DirectCall) {
                    if let Some(target) = instr.target() {
                        let idx = resolve(target, &label_index)?;
                        if !out.contains(&idx) {
                            out.push(idx);
                        }
                    }
                }
            }
            succs[i] = out;
        }

        let mut cfg = Cfg {
            nodes,
            label_index,
            functions,
            succs,
            loops: Vec::new(),
        };
        cfg.loops = cfg.find_loops();
        Ok(cfg)
    }

    /// The function range containing `node`.
    pub fn function_of(&self, node: usize) -> Option<&(String, usize, usize)> {
        self.functions
            .iter()
            .find(|(_, s, e)| node >= *s && node < *e)
    }

    /// Immediate-dominator computation (Cooper–Harvey–Kennedy) over one
    /// function subgraph rooted at `entry`, restricted to `[start, end)`.
    /// Returns `idom[node - start]`, with unreachable nodes mapped to
    /// `usize::MAX`.
    fn dominators(&self, entry: usize, start: usize, end: usize) -> Vec<usize> {
        let n = end - start;
        let local = |g: usize| g - start;

        // Reverse-postorder over reachable nodes.
        let mut visited = vec![false; n];
        let mut postorder: Vec<usize> = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
        visited[local(entry)] = true;
        while let Some((node, child)) = stack.pop() {
            let succs: Vec<usize> = self.succs[node]
                .iter()
                .copied()
                .filter(|&s| s >= start && s < end)
                .collect();
            if child < succs.len() {
                stack.push((node, child + 1));
                let s = succs[child];
                if !visited[local(s)] {
                    visited[local(s)] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(node);
            }
        }
        let rpo: Vec<usize> = postorder.iter().rev().copied().collect();
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &node) in rpo.iter().enumerate() {
            rpo_number[local(node)] = i;
        }

        // Predecessors within the subgraph.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for node in start..end {
            if !visited[local(node)] {
                continue;
            }
            for &s in &self.succs[node] {
                if s >= start && s < end && visited[local(s)] {
                    preds[local(s)].push(node);
                }
            }
        }

        let mut idom = vec![usize::MAX; n];
        idom[local(entry)] = entry;
        let intersect = |idom: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_number[local(a)] > rpo_number[local(b)] {
                    a = idom[local(a)];
                }
                while rpo_number[local(b)] > rpo_number[local(a)] {
                    b = idom[local(b)];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &rpo {
                if node == entry {
                    continue;
                }
                let mut new_idom = usize::MAX;
                for &p in &preds[local(node)] {
                    if idom[local(p)] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[local(node)] != new_idom {
                    idom[local(node)] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Whether `a` dominates `b` given the per-function `idom` array.
    fn dominates(idom: &[usize], start: usize, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = idom[cur - start];
            if next == usize::MAX || next == cur {
                return cur == a;
            }
            cur = next;
        }
    }

    /// Finds all natural loops: edges `latch → header` where the header
    /// dominates the latch.
    fn find_loops(&self) -> Vec<NaturalLoop> {
        let mut loops = Vec::new();
        for &(_, start, end) in &self.functions {
            if start >= end {
                continue;
            }
            let idom = self.dominators(start, start, end);
            for latch in start..end {
                for &header in &self.succs[latch] {
                    if header < start || header >= end || header > latch {
                        continue;
                    }
                    // Skip unreachable latches.
                    if idom[latch - start] == usize::MAX && latch != start {
                        continue;
                    }
                    if Cfg::dominates(&idom, start, header, latch) {
                        loops.push(self.natural_loop(header, latch, start, end));
                    }
                }
            }
        }
        loops
    }

    /// Computes the body of the natural loop for back edge
    /// `latch → header`: nodes reaching `latch` without passing `header`.
    fn natural_loop(&self, header: usize, latch: usize, start: usize, end: usize) -> NaturalLoop {
        // Predecessor map for the function subgraph.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); end - start];
        for node in start..end {
            for &s in &self.succs[node] {
                if s >= start && s < end {
                    preds[s - start].push(node);
                }
            }
        }
        let mut body = vec![header];
        let mut stack = vec![latch];
        let mut in_body = vec![false; end - start];
        in_body[header - start] = true;
        while let Some(node) = stack.pop() {
            if in_body[node - start] {
                continue;
            }
            in_body[node - start] = true;
            body.push(node);
            for &p in &preds[node - start] {
                if !in_body[p - start] {
                    stack.push(p);
                }
            }
        }
        body.sort_unstable();
        NaturalLoop {
            header,
            latch,
            body,
        }
    }
}

fn resolve(target: &Target, labels: &HashMap<String, usize>) -> Result<usize, CfgError> {
    match target {
        Target::Label(name) => labels
            .get(name)
            .copied()
            .ok_or_else(|| CfgError::UndefinedLabel(name.clone())),
        Target::Abs(_) => {
            // Absolute targets appear only in already-assembled code;
            // the offline phase runs on label-form modules. Treat as
            // having no intra-edge (conservative).
            Err(CfgError::UndefinedLabel(format!("{target}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::{Asm, Reg};

    fn cfg_of(build: impl FnOnce(&mut Asm)) -> Cfg {
        let mut a = Asm::new();
        build(&mut a);
        Cfg::build(&a.into_module()).expect("cfg builds")
    }

    #[test]
    fn straight_line_has_fallthrough_edges() {
        let cfg = cfg_of(|a| {
            a.func("main");
            a.nop();
            a.nop();
            a.halt();
        });
        assert_eq!(cfg.succs[0], vec![1]);
        assert_eq!(cfg.succs[1], vec![2]);
        assert!(cfg.succs[2].is_empty());
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn backward_conditional_latch_forms_loop() {
        let cfg = cfg_of(|a| {
            a.func("main");
            a.movi(Reg::R0, 5); // 0
            a.label("loop");
            a.subi(Reg::R0, Reg::R0, 1); // 1 (header)
            a.cmpi(Reg::R0, 0); // 2
            a.bne("loop"); // 3 (latch)
            a.halt(); // 4
        });
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latch, 3);
        assert_eq!(l.body, vec![1, 2, 3]);
        assert!(l.contains(2));
        assert!(!l.contains(4));
    }

    #[test]
    fn forward_exit_loop_with_unconditional_latch() {
        let cfg = cfg_of(|a| {
            a.func("main");
            a.movi(Reg::R0, 0); // 0
            a.label("head");
            a.cmpi(Reg::R0, 10); // 1 (header)
            a.beq("done"); // 2 (forward exit)
            a.addi(Reg::R0, Reg::R0, 1); // 3
            a.b("head"); // 4 (latch)
            a.label("done");
            a.halt(); // 5
        });
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latch, 4);
        assert_eq!(l.body, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_loops_found_separately() {
        let cfg = cfg_of(|a| {
            a.func("main");
            a.movi(Reg::R0, 3); // 0
            a.label("outer");
            a.movi(Reg::R1, 2); // 1 (outer header)
            a.label("inner");
            a.subi(Reg::R1, Reg::R1, 1); // 2 (inner header)
            a.bne("inner"); // 3 (inner latch)
            a.subi(Reg::R0, Reg::R0, 1); // 4
            a.bne("outer"); // 5 (outer latch)
            a.halt(); // 6
        });
        assert_eq!(cfg.loops.len(), 2);
        let inner = cfg.loops.iter().find(|l| l.header == 2).expect("inner");
        assert_eq!(inner.body, vec![2, 3]);
        let outer = cfg.loops.iter().find(|l| l.header == 1).expect("outer");
        assert_eq!(outer.body, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn functions_partition_nodes() {
        let cfg = cfg_of(|a| {
            a.func("main");
            a.bl("helper"); // 0
            a.halt(); // 1
            a.func("helper");
            a.nop(); // 2
            a.ret(); // 3
        });
        assert_eq!(cfg.functions.len(), 2);
        assert_eq!(cfg.functions[0], ("main".into(), 0, 2));
        assert_eq!(cfg.functions[1], ("helper".into(), 2, 4));
        // BL is treated as fall-through, no edge into helper.
        assert_eq!(cfg.succs[0], vec![1]);
    }

    #[test]
    fn calls_do_not_create_false_loops() {
        // A function called from below must not look like a loop.
        let cfg = cfg_of(|a| {
            a.func("helper");
            a.nop(); // 0
            a.ret(); // 1
            a.func("main");
            a.bl("helper"); // 2
            a.halt(); // 3
        });
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.b("missing");
        assert!(matches!(
            Cfg::build(&a.into_module()),
            Err(CfgError::UndefinedLabel(_))
        ));
    }

    #[test]
    fn if_else_join_has_two_preds_no_loop() {
        let cfg = cfg_of(|a| {
            a.func("main");
            a.cmpi(Reg::R0, 0); // 0
            a.beq("else_"); // 1
            a.movi(Reg::R1, 1); // 2
            a.b("join"); // 3
            a.label("else_");
            a.movi(Reg::R1, 2); // 4
            a.label("join");
            a.halt(); // 5
        });
        assert!(cfg.loops.is_empty());
        assert_eq!(cfg.succs[1], vec![2, 4]);
        assert_eq!(cfg.succs[3], vec![5]);
    }
}
