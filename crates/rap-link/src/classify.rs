//! Branch classification: deterministic vs. non-deterministic transfers
//! and the loop taxonomy of §IV-C/§IV-D.
//!
//! Every instruction receives a [`Disposition`] telling the transformer
//! what to do with it, and every optimizable loop receives a
//! [`LoopPlan`] describing how the Verifier will replay it.

use armv8m_isa::{BranchKind, Cond, Instr, Reg, Target};

use crate::cfg::{Cfg, FlatOp};

/// What the offline phase does with one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Deterministic or non-branch: stays in MTBDR untouched.
    Keep,
    /// `BLX rm`: replaced by `BL` into a per-site MTBAR stub (Fig. 3).
    IndirectCall,
    /// `POP {…, PC}`: split into `POP {…}` + branch to the shared
    /// MTBAR `POP {PC}` stub (Fig. 4).
    ReturnPop,
    /// `LDR PC, […]`: moved into a per-site MTBAR stub (Fig. 4).
    LoadJump,
    /// `BX rm` with a non-deterministic target (computed jump, or a
    /// `BX LR` return in a function that modifies `LR`).
    IndirectJump,
    /// Tracked conditional: taken edge retargeted through MTBAR
    /// (Fig. 5 / Fig. 6 — non-loop and backward-loop cases coincide).
    CondTaken,
    /// Forward loop-exit conditional with an untracked (unconditional)
    /// back edge: a continue-logging branch is inserted after it
    /// (Fig. 7).
    LoopForward,
    /// A conditional that can *quietly* (producing no log entry on any
    /// path) reach itself again — e.g. the base-case test of a
    /// recursive function. Taken-only logging would be ambiguous for
    /// such sites, so both directions are routed through stubs: the
    /// taken edge like [`Disposition::CondTaken`] plus an inserted
    /// fall-through-logging branch. A reproduction-side extension for
    /// sound lossless replay; see DESIGN.md.
    CondBoth,
    /// Latch of a loop optimized per §IV-D: left untouched; an `SG`
    /// loop-condition log is inserted before the loop header.
    SimpleLoopLatch {
        /// Index into [`Classification::loop_plans`].
        plan: usize,
    },
    /// Latch of a fully static loop: left untouched, nothing logged —
    /// the Verifier derives the iteration count from the binary alone.
    StaticLoopLatch {
        /// Index into [`Classification::loop_plans`].
        plan: usize,
    },
}

impl Disposition {
    /// Whether the transformer allocates an MTBAR stub for this site.
    pub fn needs_stub(self) -> bool {
        matches!(
            self,
            Disposition::IndirectCall
                | Disposition::ReturnPop
                | Disposition::LoadJump
                | Disposition::IndirectJump
                | Disposition::CondTaken
                | Disposition::LoopForward
                | Disposition::CondBoth
        )
    }
}

/// How a simple loop's iteration count is recovered by the Verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopPlanKind {
    /// Initial iterator value is a compile-time constant.
    Static {
        /// The statically known initial value.
        init: u32,
    },
    /// Initial iterator value is logged at runtime (`SG LOG_LOOP_COND`).
    Logged,
}

/// Replay metadata for a §IV-D simple loop (or a fully static loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPlan {
    /// Node index of the loop header.
    pub header: usize,
    /// Node index of the backward conditional latch.
    pub latch: usize,
    /// The iterator register.
    pub iter: Reg,
    /// Signed per-iteration increment.
    pub step: i32,
    /// The constant compared against at the latch.
    pub bound: u16,
    /// The latch's branch condition (loop continues while it passes).
    pub cond: Cond,
    /// How the initial value is obtained.
    pub kind: LoopPlanKind,
}

/// Why a loop failed the §IV-D optimization checks — surfaced by
/// [`crate::explain`] so firmware authors can see which loops pay
/// per-iteration logging and how to restructure them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopReject {
    /// The back edge is not a backward conditional branch to the
    /// header (e.g. a forward-exit loop with an unconditional latch).
    NotBackwardConditionalLatch,
    /// More than one branch targets the header (multiple back edges or
    /// `continue`-style re-entries).
    MultipleHeaderEntries,
    /// The header is not entered purely by fall-through.
    HeaderNotFallThrough,
    /// The body contains branches, calls or gateways (nested loops,
    /// internal conditionals — the paper's "internal branches must be
    /// deterministic" requirement).
    BranchInBody,
    /// No `CMP iter, #const` immediately before the latch.
    NoConstCompareAtLatch,
    /// The iterator is updated by something other than a single
    /// register-only `ADDS`/`SUBS` immediate (e.g. loads — "register-
    /// only operations" per §IV-D).
    IteratorNotRegisterOnly,
    /// The iterator is never updated in the body.
    NoIteratorUpdate,
}

impl std::fmt::Display for LoopReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            LoopReject::NotBackwardConditionalLatch => {
                "back edge is not a backward conditional branch"
            }
            LoopReject::MultipleHeaderEntries => "header has multiple entries/back edges",
            LoopReject::HeaderNotFallThrough => "header not entered by fall-through",
            LoopReject::BranchInBody => "body contains branches/calls",
            LoopReject::NoConstCompareAtLatch => "no constant compare immediately before latch",
            LoopReject::IteratorNotRegisterOnly => "iterator update is not register-only",
            LoopReject::NoIteratorUpdate => "iterator never updated in body",
        };
        write!(f, "{msg}")
    }
}

/// The classification of a whole module.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Per-node dispositions, parallel to `cfg.nodes`.
    pub dispositions: Vec<Disposition>,
    /// Plans for simple/static loops.
    pub loop_plans: Vec<LoopPlan>,
}

impl Classification {
    /// Number of sites that will receive MTBAR stubs.
    pub fn stub_count(&self) -> usize {
        self.dispositions.iter().filter(|d| d.needs_stub()).count()
    }
}

/// Classification tuning knobs (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyOptions {
    /// Apply the §IV-D simple-loop optimization (log the loop condition
    /// once instead of per-iteration trampolines).
    pub loop_opt: bool,
    /// Elide fully static loops entirely (their counts are derivable
    /// from the binary).
    pub static_loop_elision: bool,
}

impl Default for ClassifyOptions {
    fn default() -> ClassifyOptions {
        ClassifyOptions {
            loop_opt: true,
            static_loop_elision: true,
        }
    }
}

/// Classifies every instruction of the CFG.
pub fn classify(cfg: &Cfg, options: ClassifyOptions) -> Classification {
    let n = cfg.nodes.len();
    let mut dispositions = vec![Disposition::Keep; n];
    let mut loop_plans: Vec<LoopPlan> = Vec::new();

    // --- Per-function LR analysis -------------------------------------
    // The paper monitors returns only when LR is pushed (and thus
    // restored via POP {PC}); a `BX LR` return is deterministic only in
    // functions that never modify LR (§IV-C.2).
    let mut lr_unstable = vec![false; n];
    for &(_, start, end) in &cfg.functions {
        let modified = (start..end).any(|i| writes_lr(&cfg.nodes[i].op));
        for flag in lr_unstable.iter_mut().take(end).skip(start) {
            *flag = modified;
        }
    }

    // --- Simple/static loop planning -----------------------------------
    // Candidate: innermost backward-conditional-latch loop with a
    // straight-line body, a register-only iterator and a constant bound.
    let mut latch_plan: Vec<Option<usize>> = vec![None; n];
    if options.loop_opt || options.static_loop_elision {
        for l in &cfg.loops {
            let Ok(plan) = plan_simple_loop(cfg, l) else {
                continue;
            };
            let is_static = matches!(plan.kind, LoopPlanKind::Static { .. });
            if is_static && !options.static_loop_elision && !options.loop_opt {
                continue;
            }
            // A static plan downgraded to Logged when elision is off but
            // the loop-opt is on.
            let plan = if is_static && !options.static_loop_elision {
                LoopPlan {
                    kind: LoopPlanKind::Logged,
                    ..plan
                }
            } else if !is_static && !options.loop_opt {
                continue;
            } else {
                plan
            };
            latch_plan[plan.latch] = Some(loop_plans.len());
            loop_plans.push(plan);
        }
    }

    // --- Per-instruction dispositions ----------------------------------
    for (i, node) in cfg.nodes.iter().enumerate() {
        let disp = match node.branch_kind() {
            BranchKind::None | BranchKind::Direct | BranchKind::DirectCall | BranchKind::Halt => {
                Disposition::Keep
            }
            BranchKind::Gateway => Disposition::Keep,
            BranchKind::IndirectCall => Disposition::IndirectCall,
            BranchKind::ReturnPop => Disposition::ReturnPop,
            BranchKind::LoadJump => Disposition::LoadJump,
            BranchKind::IndirectJump => Disposition::IndirectJump,
            BranchKind::ReturnBx => {
                if lr_unstable[i] {
                    Disposition::IndirectJump
                } else {
                    Disposition::Keep
                }
            }
            BranchKind::Conditional => {
                if let Some(plan) = latch_plan[i] {
                    match loop_plans[plan].kind {
                        LoopPlanKind::Static { .. } => Disposition::StaticLoopLatch { plan },
                        LoopPlanKind::Logged => Disposition::SimpleLoopLatch { plan },
                    }
                } else if is_forward_exit_of_untracked_loop(cfg, i, &latch_plan) {
                    Disposition::LoopForward
                } else {
                    Disposition::CondTaken
                }
            }
        };
        dispositions[i] = disp;
    }

    dedup_loop_forward_sites(cfg, &mut dispositions, &latch_plan);
    upgrade_ambiguous_sites(cfg, &mut dispositions);

    Classification {
        dispositions,
        loop_plans,
    }
}

/// Iteration counting only needs *one* continue-logging site per loop
/// (Fig. 7); additional forward exits of the same loop are demoted to
/// plain taken-logging conditionals — their exits stay visible while
/// halving the per-iteration log volume.
fn dedup_loop_forward_sites(
    cfg: &Cfg,
    dispositions: &mut [Disposition],
    latch_plan: &[Option<usize>],
) {
    for l in &cfg.loops {
        if latch_plan[l.latch].is_some() {
            continue;
        }
        let mut seen_logger = false;
        for &i in &l.body {
            if dispositions[i] != Disposition::LoopForward {
                continue;
            }
            // Only consider sites whose innermost loop is this one.
            if !is_innermost_loop_of(cfg, i, l) {
                continue;
            }
            if seen_logger {
                dispositions[i] = Disposition::CondTaken;
            } else {
                seen_logger = true;
            }
        }
    }
}

fn is_innermost_loop_of(cfg: &Cfg, node: usize, l: &crate::cfg::NaturalLoop) -> bool {
    let mut best: Option<&crate::cfg::NaturalLoop> = None;
    for candidate in &cfg.loops {
        if candidate.contains(node) {
            best = match best {
                None => Some(candidate),
                Some(b) if candidate.body.len() < b.body.len() => Some(candidate),
                Some(b) => Some(b),
            };
        }
    }
    best.is_some_and(|b| b.header == l.header && b.latch == l.latch)
}

/// Disambiguation pass: a conditional logged taken-only is ambiguous if
/// a *quiet cycle* — a path producing no `CF_Log` entry — leads from
/// its unlogged direction back to the site itself (two dynamic
/// instances of the site with nothing logged in between cannot be told
/// apart during replay). Such sites get both directions logged
/// ([`Disposition::CondBoth`]).
fn upgrade_ambiguous_sites(cfg: &Cfg, dispositions: &mut [Disposition]) {
    let n = cfg.nodes.len();

    // Quiet successor edges under the *current* dispositions.
    let mut quiet: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Entry node of each function, for direct-call edges.
    let entry_of = |target: &Instr| -> Option<usize> { direct_target_index(cfg, target) };
    // Leaf `BX LR` return linkage: return-site → after every BL that
    // targets the containing function (pairwise edges suffice).
    let mut leaf_returns: Vec<(usize, usize)> = Vec::new(); // (ret node, fstart)
    for (i, node) in cfg.nodes.iter().enumerate() {
        if dispositions[i] == Disposition::Keep && node.branch_kind() == BranchKind::ReturnBx {
            if let Some(&(_, fstart, _)) = cfg.function_of(i) {
                leaf_returns.push((i, fstart));
            }
        }
    }

    for (i, node) in cfg.nodes.iter().enumerate() {
        let succs: Vec<usize> = match dispositions[i] {
            Disposition::CondTaken | Disposition::CondBoth => {
                // Taken edge is logged; fall-through is quiet.
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
            Disposition::LoopForward => {
                // The continue path hits the inserted logged branch;
                // only the (exit) taken edge is quiet.
                node.instr().and_then(&entry_of).into_iter().collect()
            }
            Disposition::SimpleLoopLatch { .. } | Disposition::StaticLoopLatch { .. } => {
                // Neither direction of an optimized latch produces an
                // MTB packet.
                let mut out = Vec::new();
                if i + 1 < n {
                    out.push(i + 1);
                }
                if let Some(t) = node.instr().and_then(&entry_of) {
                    out.push(t);
                }
                out
            }
            Disposition::IndirectCall
            | Disposition::ReturnPop
            | Disposition::LoadJump
            | Disposition::IndirectJump => Vec::new(),
            Disposition::Keep => match node.branch_kind() {
                BranchKind::None | BranchKind::Gateway => {
                    if i + 1 < n {
                        vec![i + 1]
                    } else {
                        vec![]
                    }
                }
                BranchKind::Direct | BranchKind::DirectCall => {
                    node.instr().and_then(&entry_of).into_iter().collect()
                }
                BranchKind::ReturnBx => {
                    // Edges added below (needs the BL sites).
                    Vec::new()
                }
                _ => Vec::new(),
            },
        };
        quiet[i] = succs;
    }

    // Link leaf returns to their callers' continuation points.
    for (ret, fstart) in leaf_returns {
        for (b, node) in cfg.nodes.iter().enumerate() {
            if node.branch_kind() == BranchKind::DirectCall {
                if let Some(instr) = node.instr() {
                    if direct_target_index(cfg, instr) == Some(fstart) && b + 1 < n {
                        quiet[ret].push(b + 1);
                    }
                }
            }
        }
    }

    // For each taken-only conditional: can its quiet direction reach
    // the site again without a logged event?
    let reaches = |from: usize, goal: usize| -> bool {
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == goal {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            for &s in &quiet[x] {
                if !seen[s] {
                    stack.push(s);
                }
            }
        }
        false
    };

    #[allow(clippy::needless_range_loop)] // `i` indexes two parallel structures
    for i in 0..n {
        let ambiguous = match dispositions[i] {
            Disposition::CondTaken => i + 1 < n && reaches(i + 1, i),
            Disposition::LoopForward => cfg.nodes[i]
                .instr()
                .and_then(|instr| direct_target_index(cfg, instr))
                .is_some_and(|t| reaches(t, i)),
            _ => false,
        };
        if ambiguous {
            dispositions[i] = Disposition::CondBoth;
        }
    }
}

fn writes_lr(op: &FlatOp) -> bool {
    match op {
        FlatOp::Instr(i) => {
            i.dest_reg() == Some(Reg::Lr)
                || matches!(i, Instr::Pop { list } if list.contains(Reg::Lr))
                || matches!(
                    i.branch_kind(),
                    BranchKind::DirectCall | BranchKind::IndirectCall
                )
        }
        FlatOp::LoadAddr { rd, .. } => *rd == Reg::Lr,
    }
}

/// A conditional branch is the Fig. 7 case when it sits inside a loop,
/// jumps out of it, and that loop's back edge is an *untracked*
/// unconditional branch (so iterations would otherwise go unlogged).
fn is_forward_exit_of_untracked_loop(cfg: &Cfg, node: usize, latch_plan: &[Option<usize>]) -> bool {
    let Some(instr) = cfg.nodes[node].instr() else {
        return false;
    };
    let Some(target_idx) = direct_target_index(cfg, instr) else {
        return false;
    };
    // Innermost loop containing the node whose body excludes the target.
    let mut best: Option<&crate::cfg::NaturalLoop> = None;
    for l in &cfg.loops {
        if l.contains(node) && !l.contains(target_idx) {
            best = match best {
                None => Some(l),
                Some(b) if l.body.len() < b.body.len() => Some(l),
                Some(b) => Some(b),
            };
        }
    }
    let Some(l) = best else {
        return false;
    };
    // Simple/static loops never contain conditionals, but be defensive.
    if latch_plan[l.latch].is_some() {
        return false;
    }
    // Untracked back edge = unconditional direct branch.
    matches!(cfg.nodes[l.latch].branch_kind(), BranchKind::Direct)
}

fn direct_target_index(cfg: &Cfg, instr: &Instr) -> Option<usize> {
    match instr.target() {
        Some(Target::Label(name)) => cfg.label_index.get(name).copied(),
        _ => None,
    }
}

/// Attempts to plan `l` as a §IV-D simple (or fully static) loop.
pub(crate) fn plan_simple_loop(
    cfg: &Cfg,
    l: &crate::cfg::NaturalLoop,
) -> Result<LoopPlan, LoopReject> {
    // Backward conditional latch, targeting the header.
    let latch_instr = cfg.nodes[l.latch]
        .instr()
        .ok_or(LoopReject::NotBackwardConditionalLatch)?;
    let cond = match latch_instr {
        Instr::BCond { cond, .. } => *cond,
        _ => return Err(LoopReject::NotBackwardConditionalLatch),
    };
    if direct_target_index(cfg, latch_instr) != Some(l.header) || l.header >= l.latch {
        return Err(LoopReject::NotBackwardConditionalLatch);
    }

    // Single back edge: no other node in the function branches to the
    // header, and the only external entry is fall-through from
    // header - 1.
    let (_, fstart, fend) = *cfg
        .function_of(l.header)
        .ok_or(LoopReject::NotBackwardConditionalLatch)?;
    for i in fstart..fend {
        if i == l.latch {
            continue;
        }
        if let Some(instr) = cfg.nodes[i].instr() {
            if let Some(t) = direct_target_index(cfg, instr) {
                if t == l.header {
                    return Err(LoopReject::MultipleHeaderEntries);
                }
            }
        }
    }
    if l.header == fstart || !cfg.nodes[l.header - 1].falls_through() {
        return Err(LoopReject::HeaderNotFallThrough);
    }

    // Straight-line body: no branches other than the latch, no nested
    // loops, no gateways, no calls.
    for &i in &l.body {
        if i == l.latch {
            continue;
        }
        if cfg.nodes[i].branch_kind() != BranchKind::None {
            return Err(LoopReject::BranchInBody);
        }
    }

    // The compare must immediately precede the latch: CMP iter, #bound.
    let cmp_idx = l
        .latch
        .checked_sub(1)
        .ok_or(LoopReject::NoConstCompareAtLatch)?;
    if !l.contains(cmp_idx) {
        return Err(LoopReject::NoConstCompareAtLatch);
    }
    let (iter, bound) = match cfg.nodes[cmp_idx]
        .instr()
        .ok_or(LoopReject::NoConstCompareAtLatch)?
    {
        Instr::CmpImm { rn, imm } => (*rn, *imm),
        _ => return Err(LoopReject::NoConstCompareAtLatch),
    };

    // Exactly one register-only iterator update in the body.
    let mut step: Option<i32> = None;
    for &i in &l.body {
        if i == cmp_idx || i == l.latch {
            continue;
        }
        let writes_iter = match &cfg.nodes[i].op {
            FlatOp::Instr(instr) => instr.dest_reg() == Some(iter),
            FlatOp::LoadAddr { rd, .. } => *rd == iter,
        };
        if !writes_iter {
            continue;
        }
        let s = match cfg.nodes[i]
            .instr()
            .ok_or(LoopReject::IteratorNotRegisterOnly)?
        {
            Instr::AddImm { rd, rn, imm } if rd == rn && *rd == iter => *imm as i32,
            Instr::SubImm { rd, rn, imm } if rd == rn && *rd == iter => -(*imm as i32),
            _ => return Err(LoopReject::IteratorNotRegisterOnly),
        };
        if step.is_some() || s == 0 {
            return Err(LoopReject::IteratorNotRegisterOnly);
        }
        step = Some(s);
    }
    let step = step.ok_or(LoopReject::NoIteratorUpdate)?;

    // Static initial value: scan backwards from the header through
    // straight-line, label-free, iter-preserving instructions.
    let mut kind = LoopPlanKind::Logged;
    let mut i = l.header;
    while i > fstart {
        i -= 1;
        let node = &cfg.nodes[i];
        if !node.falls_through() {
            break;
        }
        let writes_iter = match &node.op {
            FlatOp::Instr(instr) => instr.dest_reg() == Some(iter),
            FlatOp::LoadAddr { rd, .. } => *rd == iter,
        };
        if writes_iter {
            // A label *on* the initializer is harmless: any entry at it
            // still executes the write before reaching the header.
            if let Some(Instr::MovImm { imm, .. }) = node.instr() {
                kind = LoopPlanKind::Static { init: *imm as u32 };
            }
            break;
        }
        // A label strictly between the initializer and the header would
        // let control skip the initializer — give up.
        if !node.labels.is_empty() {
            break;
        }
    }

    Ok(LoopPlan {
        header: l.header,
        latch: l.latch,
        iter,
        step,
        bound,
        cond,
        kind,
    })
}

/// Simulates a planned loop to its exit, returning the iteration count
/// (shared by the linker's sanity checks and the Verifier's replay).
///
/// Returns `None` when the loop does not terminate within `cap`
/// iterations — a misclassification or a forged log value.
pub fn simulate_loop_count(plan: &LoopPlan, init: u32, cap: u32) -> Option<u32> {
    let mut iter = init;
    let mut count: u32 = 0;
    loop {
        iter = iter.wrapping_add(plan.step as u32);
        count += 1;
        let (_, flags) = armv8m_isa::Flags::from_sub(iter, plan.bound as u32);
        if !plan.cond.passes(flags) {
            return Some(count);
        }
        if count >= cap {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::{Asm, Reg};

    fn classified(build: impl FnOnce(&mut Asm)) -> (Cfg, Classification) {
        let mut a = Asm::new();
        build(&mut a);
        let cfg = Cfg::build(&a.into_module()).expect("cfg");
        let cls = classify(&cfg, ClassifyOptions::default());
        (cfg, cls)
    }

    #[test]
    fn static_countdown_loop_is_elided() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.movi(Reg::R0, 5); // 0: init
            a.label("loop");
            a.nop(); // 1: header
            a.subi(Reg::R0, Reg::R0, 1); // 2: update
            a.cmpi(Reg::R0, 0); // 3: cmp
            a.bne("loop"); // 4: latch
            a.halt(); // 5
        });
        assert_eq!(cls.loop_plans.len(), 1);
        let plan = cls.loop_plans[0];
        assert_eq!(plan.kind, LoopPlanKind::Static { init: 5 });
        assert_eq!(plan.step, -1);
        assert_eq!(plan.bound, 0);
        assert!(matches!(
            cls.dispositions[4],
            Disposition::StaticLoopLatch { .. }
        ));
        assert_eq!(cls.stub_count(), 0);
        assert_eq!(simulate_loop_count(&plan, 5, 100), Some(5));
    }

    #[test]
    fn variable_count_simple_loop_is_logged() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.mov(Reg::R0, Reg::R2); // runtime-variable init
            a.label("loop");
            a.subi(Reg::R0, Reg::R0, 1);
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
        });
        assert_eq!(cls.loop_plans.len(), 1);
        assert_eq!(cls.loop_plans[0].kind, LoopPlanKind::Logged);
        assert!(matches!(
            cls.dispositions[3],
            Disposition::SimpleLoopLatch { .. }
        ));
    }

    #[test]
    fn loop_with_internal_conditional_is_general() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.movi(Reg::R0, 5); // 0
            a.label("loop");
            a.cmpi(Reg::R1, 3); // 1
            a.beq("skip"); // 2: internal conditional
            a.addi(Reg::R1, Reg::R1, 1); // 3
            a.label("skip");
            a.subi(Reg::R0, Reg::R0, 1); // 4
            a.cmpi(Reg::R0, 0); // 5
            a.bne("loop"); // 6: latch
            a.halt(); // 7
        });
        assert!(cls.loop_plans.is_empty());
        // Internal conditional and latch both tracked.
        assert_eq!(cls.dispositions[2], Disposition::CondTaken);
        assert_eq!(cls.dispositions[6], Disposition::CondTaken);
    }

    #[test]
    fn memory_iterating_loop_is_general() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.mov32(Reg::R1, 0x2000_0000);
            a.label("loop");
            a.ldr(Reg::R0, Reg::R1, 0); // iterator from memory
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
        });
        assert!(cls.loop_plans.is_empty());
    }

    #[test]
    fn forward_exit_with_unconditional_latch() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.movi(Reg::R0, 0); // 0
            a.label("head");
            a.ldr(Reg::R1, Reg::R2, 0); // 1: header, memory-dependent
            a.cmpi(Reg::R1, 0); // 2
            a.beq("done"); // 3: forward exit
            a.addi(Reg::R0, Reg::R0, 1); // 4
            a.b("head"); // 5: untracked latch
            a.label("done");
            a.halt(); // 6
        });
        assert_eq!(cls.dispositions[3], Disposition::LoopForward);
        assert_eq!(cls.dispositions[5], Disposition::Keep);
    }

    #[test]
    fn forward_exit_with_tracked_latch_is_plain_conditional() {
        // Two conditionals: exit check + backward latch. The latch is
        // tracked, so iterations are already logged; the forward exit
        // is just a CondTaken site.
        let (_, cls) = classified(|a| {
            a.func("main");
            a.label("head");
            a.ldr(Reg::R1, Reg::R2, 0); // 0 header
            a.cmpi(Reg::R1, 99); // 1
            a.beq("done"); // 2 forward exit
            a.subi(Reg::R0, Reg::R0, 1); // 3
            a.cmpi(Reg::R0, 0); // 4
            a.bne("head"); // 5 conditional latch (general: memory load)
            a.label("done");
            a.halt(); // 6
        });
        assert_eq!(cls.dispositions[2], Disposition::CondTaken);
        assert_eq!(cls.dispositions[5], Disposition::CondTaken);
    }

    #[test]
    fn returns_classified_by_lr_stability() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.bl("leaf"); // 0
            a.bl("parent"); // 1
            a.halt(); // 2
            a.func("leaf");
            a.addi(Reg::R0, Reg::R0, 1); // 3
            a.ret(); // 4: BX LR, leaf → Keep
            a.func("parent");
            a.push(&[Reg::R4, Reg::Lr]); // 5
            a.bl("leaf"); // 6
            a.pop(&[Reg::R4, Reg::Pc]); // 7: POP {PC} → ReturnPop
        });
        assert_eq!(cls.dispositions[4], Disposition::Keep);
        assert_eq!(cls.dispositions[7], Disposition::ReturnPop);
    }

    #[test]
    fn bx_lr_after_pop_lr_is_tracked() {
        let (_, cls) = classified(|a| {
            a.func("weird");
            a.push(&[Reg::Lr]); // 0
            a.bl("leaf"); // 1
            a.pop(&[Reg::R3]); // 2 — restores into R3? keep simple
            a.mov(Reg::Lr, Reg::R3); // 3 — LR modified
            a.ret(); // 4 → IndirectJump
            a.func("leaf");
            a.ret(); // 5
        });
        assert_eq!(cls.dispositions[4], Disposition::IndirectJump);
    }

    #[test]
    fn indirect_call_and_load_jump_tracked() {
        let (_, cls) = classified(|a| {
            a.func("main");
            a.load_addr(Reg::R3, "main"); // 0
            a.blx(Reg::R3); // 1
            a.instr(armv8m_isa::Instr::LdrImm {
                rt: Reg::Pc,
                rn: Reg::R4,
                offset: 0,
            }); // 2
            a.halt(); // 3
        });
        assert_eq!(cls.dispositions[1], Disposition::IndirectCall);
        assert_eq!(cls.dispositions[2], Disposition::LoadJump);
    }

    #[test]
    fn loop_opt_disabled_tracks_latch() {
        let mut a = Asm::new();
        a.func("main");
        a.mov(Reg::R0, Reg::R2);
        a.label("loop");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let cfg = Cfg::build(&a.into_module()).unwrap();
        let cls = classify(
            &cfg,
            ClassifyOptions {
                loop_opt: false,
                static_loop_elision: false,
            },
        );
        assert!(cls.loop_plans.is_empty());
        assert_eq!(cls.dispositions[3], Disposition::CondTaken);
    }

    #[test]
    fn simulate_loop_counts() {
        let plan = LoopPlan {
            header: 0,
            latch: 1,
            iter: Reg::R0,
            step: -1,
            bound: 0,
            cond: Cond::Ne,
            kind: LoopPlanKind::Logged,
        };
        assert_eq!(simulate_loop_count(&plan, 1, 100), Some(1));
        assert_eq!(simulate_loop_count(&plan, 10, 100), Some(10));
        // Non-terminating within cap.
        let bad = LoopPlan { step: 0, ..plan };
        assert_eq!(simulate_loop_count(&bad, 10, 100), None);

        let up = LoopPlan {
            step: 2,
            bound: 10,
            cond: Cond::Lt,
            ..plan
        };
        // 0→2→4→6→8→10: passes Lt at 2,4,6,8; fails at 10 → 5 iters.
        assert_eq!(simulate_loop_count(&up, 0, 100), Some(5));
    }
}
