//! # rap-link — RAP-Track's offline static-analysis and linking phase
//!
//! Implements the paper's Offline Phase (§IV): recovers a CFG from the
//! application, classifies every control-flow transfer as deterministic
//! or non-deterministic, plans the §IV-D loop optimizations, and
//! rewrites the binary into the MTBDR/MTBAR layout with branch
//! trampolines (Figs. 3–7), emitting the [`LinkMap`] the Verifier uses
//! for lossless path reconstruction.
//!
//! ```
//! use armv8m_isa::{Asm, Reg};
//! use rap_link::{LinkOptions, link};
//!
//! let mut a = Asm::new();
//! a.func("main");
//! a.mov(Reg::R0, Reg::R2); // runtime-variable count
//! a.label("loop");
//! a.subi(Reg::R0, Reg::R0, 1);
//! a.cmpi(Reg::R0, 0);
//! a.bne("loop");
//! a.halt();
//!
//! let linked = link(&a.into_module(), 0x0, LinkOptions::default())?;
//! // The variable-count loop was optimized per §IV-D:
//! assert_eq!(linked.map.loops_by_latch.len(), 1);
//! # Ok::<(), rap_link::LinkError>(())
//! ```

#![warn(missing_docs)]

mod cfg;
mod classify;
mod explain;
mod map;
mod serialize;
mod transform;

pub use cfg::{Cfg, CfgError, FlatNode, FlatOp, NaturalLoop};
pub use classify::{
    classify, simulate_loop_count, Classification, ClassifyOptions, Disposition, LoopPlan,
    LoopPlanKind, LoopReject,
};
pub use explain::{explain, FunctionSummary, LinkReport, LoopDecision, LoopOutcome};
pub use map::{AddrRange, LinkMap, LoopMeta, Site, SiteKind};
pub use serialize::{read_map, write_map, MapFormatError};
pub use transform::{transform, LinkError, TransformOptions, Transformed};

use armv8m_isa::{Image, Module};

/// All offline-phase tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkOptions {
    /// Branch-classification switches (§IV-D ablations).
    pub classify: ClassifyOptions,
    /// Layout switches (stub NOP padding for MTB activation latency).
    pub transform: TransformOptions,
}

/// The output of the offline phase: the deployable image plus the
/// Verifier-side metadata.
#[derive(Debug, Clone)]
pub struct LinkedProgram {
    /// The rewritten module (kept for inspection/re-linking).
    pub module: Module,
    /// The assembled, deployable binary (MTBDR followed by MTBAR).
    pub image: Image,
    /// Verifier metadata.
    pub map: LinkMap,
    /// The classification that produced this layout.
    pub classification: Classification,
}

impl LinkedProgram {
    /// Code-size overhead in bytes relative to the original binary
    /// (the Fig. 10 metric).
    pub fn size_overhead(&self) -> u32 {
        (self.image.end() - self.image.base()).saturating_sub(self.map.original_size)
    }
}

/// Runs the full offline phase on `module`, producing the image mapped
/// at `base` and its [`LinkMap`].
///
/// # Errors
///
/// Returns [`LinkError`] when CFG recovery or re-assembly fails.
pub fn link(module: &Module, base: u32, options: LinkOptions) -> Result<LinkedProgram, LinkError> {
    let cfg = Cfg::build(module)?;
    let classification = classify(&cfg, options.classify);
    let transformed = transform(module, &cfg, &classification, options.transform);
    let (image, map) = transformed.assemble(base, &classification)?;
    Ok(LinkedProgram {
        module: transformed.module,
        image,
        map,
        classification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use armv8m_isa::{Asm, Instr, Reg};
    use mcu_sim::{Machine, NullSecureWorld, SecureEnv, SecureWorld};
    use trace_units::{PcRange, RangeAction};

    /// Configures the machine's DWT the way the CFA Engine does:
    /// MTBDR stops tracing, MTBAR starts it.
    fn arm_dwt(machine: &mut Machine, map: &LinkMap) {
        let (Some(mtbdr), Some(mtbar)) = (map.mtbdr, map.mtbar) else {
            return; // nothing to trace
        };
        machine
            .fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: mtbdr.start,
                limit: mtbdr.end,
                action: RangeAction::StopMtb,
            })
            .unwrap();
        machine
            .fabric
            .dwt_mut()
            .watch_range(PcRange {
                base: mtbar.start,
                limit: mtbar.end,
                action: RangeAction::StartMtb,
            })
            .unwrap();
    }

    /// A Secure World that collects loop-condition records.
    #[derive(Default)]
    struct LoopLogger {
        records: Vec<u32>,
    }

    impl SecureWorld for LoopLogger {
        fn on_gateway(
            &mut self,
            service: u8,
            arg: u32,
            _env: &mut SecureEnv<'_>,
        ) -> Result<u64, mcu_sim::ExecError> {
            assert_eq!(service, armv8m_isa::service::LOG_LOOP_COND);
            self.records.push(arg);
            Ok(mcu_sim::cycles::LOG_APPEND)
        }
    }

    fn link_and_run(build: impl FnOnce(&mut Asm)) -> (LinkedProgram, Machine, LoopLogger) {
        let mut a = Asm::new();
        build(&mut a);
        let module = a.into_module();
        let linked = link(&module, 0, LinkOptions::default()).expect("links");
        let mut machine = Machine::new(linked.image.clone());
        arm_dwt(&mut machine, &linked.map);
        let mut logger = LoopLogger::default();
        machine.run(&mut logger, 1_000_000).expect("runs");
        (linked, machine, logger)
    }

    #[test]
    fn static_loop_produces_empty_log() {
        let (linked, machine, logger) = link_and_run(|a| {
            a.func("main");
            a.movi(Reg::R0, 10);
            a.label("loop");
            a.nop();
            a.subi(Reg::R0, Reg::R0, 1);
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
        });
        assert_eq!(machine.fabric.mtb().total_recorded(), 0);
        assert!(logger.records.is_empty());
        assert_eq!(linked.map.site_count(), 0);
        assert_eq!(linked.map.loops_by_latch.len(), 1);
    }

    #[test]
    fn logged_loop_records_condition_once() {
        let (linked, machine, logger) = link_and_run(|a| {
            a.func("main");
            a.movi(Reg::R2, 7);
            a.mov(Reg::R0, Reg::R2); // variable init (mov hides constant)
            a.label("loop");
            a.subi(Reg::R0, Reg::R0, 1);
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
        });
        assert_eq!(machine.fabric.mtb().total_recorded(), 0);
        assert_eq!(logger.records, vec![7]);
        let meta = linked.map.loops_by_latch.values().next().expect("loop");
        assert_eq!(meta.iterations(7, 100), Some(7));
    }

    #[test]
    fn tracked_conditional_logs_taken_only() {
        let (linked, machine, _) = link_and_run(|a| {
            a.func("main");
            a.movi(Reg::R2, 0);
            a.cmpi(Reg::R2, 0);
            a.beq("yes");
            a.movi(Reg::R3, 1); // skipped
            a.label("yes");
            a.cmpi(Reg::R2, 5);
            a.beq("also"); // not taken
            a.movi(Reg::R4, 2); // executed
            a.label("also");
            a.halt();
        });
        let entries = machine.fabric.mtb().entries();
        assert_eq!(entries.len(), 1, "only the taken conditional is logged");
        let site = linked
            .map
            .site_at_src(entries[0].source)
            .expect("known site");
        match site.kind {
            SiteKind::CondTaken { taken } => assert_eq!(entries[0].dest, taken),
            other => panic!("expected CondTaken, got {other:?}"),
        }
    }

    #[test]
    fn general_loop_logs_each_iteration() {
        // Loop with an internal conditional → per-iteration tracking.
        let (_, machine, logger) = link_and_run(|a| {
            a.func("main");
            a.movi(Reg::R0, 4);
            a.movi(Reg::R1, 0);
            a.label("loop");
            a.cmpi(Reg::R1, 2);
            a.beq("skip");
            a.addi(Reg::R1, Reg::R1, 1);
            a.label("skip");
            a.subi(Reg::R0, Reg::R0, 1);
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
        });
        assert!(logger.records.is_empty());
        // Latch taken 3 times + internal BEQ taken twice (R1 saturates
        // at 2 on iterations 3 and 4).
        assert_eq!(machine.fabric.mtb().total_recorded(), 3 + 2);
    }

    #[test]
    fn indirect_call_logged_with_callee_dest() {
        let (linked, machine, _) = link_and_run(|a| {
            a.func("main");
            a.load_addr(Reg::R3, "callee");
            a.blx(Reg::R3);
            a.halt();
            a.func("callee");
            a.movi(Reg::R0, 9);
            a.ret();
        });
        let entries = machine.fabric.mtb().entries();
        assert_eq!(entries.len(), 1);
        let callee = linked.image.symbol("callee").unwrap();
        assert_eq!(entries[0].dest, callee);
        let site = linked.map.site_at_src(entries[0].source).unwrap();
        assert_eq!(site.kind, SiteKind::IndirectCall);
        assert_eq!(machine.cpu.reg(Reg::R0), 9);
    }

    #[test]
    fn pop_return_goes_through_shared_stub() {
        let (linked, machine, _) = link_and_run(|a| {
            a.func("main");
            a.bl("wrapper");
            a.bl("wrapper");
            a.halt();
            a.func("wrapper");
            a.push(&[Reg::R4, Reg::Lr]);
            a.bl("leaf");
            a.pop(&[Reg::R4, Reg::Pc]);
            a.func("leaf");
            a.addi(Reg::R0, Reg::R0, 1);
            a.ret();
        });
        assert_eq!(machine.cpu.reg(Reg::R0), 2);
        let entries = machine.fabric.mtb().entries();
        // Two returns through the shared POP stub; leaf's BX LR and the
        // direct BLs are untracked.
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].source, entries[1].source);
        let site = linked.map.site_at_src(entries[0].source).unwrap();
        assert_eq!(site.kind, SiteKind::ReturnPop);
    }

    #[test]
    fn forward_exit_loop_logs_continues() {
        let (linked, machine, _) = link_and_run(|a| {
            a.func("main");
            a.movi(Reg::R0, 0);
            a.mov32(Reg::R2, mcu_sim::RAM_BASE);
            a.label("head");
            a.ldr(Reg::R1, Reg::R2, 0); // always 0 (zeroed RAM)
            a.cmpi(Reg::R0, 3);
            a.beq("done"); // exits when R0 == 3
            a.addi(Reg::R0, Reg::R0, 1);
            a.b("head");
            a.label("done");
            a.halt();
        });
        assert_eq!(machine.cpu.reg(Reg::R0), 3);
        let entries = machine.fabric.mtb().entries();
        // Three continues logged (R0 = 0, 1, 2); the final taken exit
        // is implied by absence.
        assert_eq!(entries.len(), 3);
        let site = linked.map.site_at_src(entries[0].source).unwrap();
        match site.kind {
            SiteKind::LoopForward { cont } => {
                for e in &entries {
                    assert_eq!(e.dest, cont);
                }
            }
            other => panic!("expected LoopForward, got {other:?}"),
        }
    }

    #[test]
    fn load_jump_table_dispatch() {
        // A C-switch lowered to LDR PC, [table + idx*4].
        let (_, machine, _) = link_and_run(|a| {
            a.func("main");
            a.mov32(Reg::R5, mcu_sim::RAM_BASE);
            a.load_addr(Reg::R0, "case0");
            a.str_(Reg::R0, Reg::R5, 0);
            a.load_addr(Reg::R0, "case1");
            a.str_(Reg::R0, Reg::R5, 4);
            a.movi(Reg::R1, 1); // select case1
            a.instr(Instr::LdrReg {
                rt: Reg::Pc,
                rn: Reg::R5,
                rm: Reg::R1,
            });
            a.label("case0");
            a.movi(Reg::R7, 10);
            a.halt();
            a.label("case1");
            a.movi(Reg::R7, 20);
            a.halt();
        });
        assert_eq!(machine.cpu.reg(Reg::R7), 20);
        assert_eq!(machine.fabric.mtb().total_recorded(), 1);
    }

    #[test]
    fn naive_mtb_logs_far_more_than_rap_track() {
        let build = |a: &mut Asm| {
            a.func("main");
            a.movi(Reg::R0, 50);
            a.label("loop");
            a.nop();
            a.subi(Reg::R0, Reg::R0, 1);
            a.cmpi(Reg::R0, 0);
            a.bne("loop");
            a.halt();
        };
        // RAP-Track: static loop → zero log.
        let (_, rap_machine, _) = link_and_run(build);
        assert_eq!(rap_machine.fabric.mtb().total_recorded(), 0);

        // Naive MTB on the unmodified binary.
        let mut a = Asm::new();
        build(&mut a);
        let image = a.into_module().assemble(0).unwrap();
        let mut naive = Machine::new(image);
        naive.fabric.mtb_mut().set_master_trace(true);
        naive.run(&mut NullSecureWorld, 100_000).unwrap();
        assert_eq!(naive.fabric.mtb().total_recorded(), 49);
    }

    #[test]
    fn rewritten_binary_decodes_from_bytes() {
        let mut a = Asm::new();
        a.func("main");
        a.mov(Reg::R0, Reg::R2);
        a.label("loop");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("loop");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).unwrap();
        let redecoded =
            Image::from_bytes(linked.image.base(), linked.image.bytes().to_vec()).unwrap();
        assert_eq!(redecoded.instrs(), linked.image.instrs());
    }

    #[test]
    fn nop_padding_matches_option() {
        for pad in [0u32, 1, 3] {
            let mut a = Asm::new();
            a.func("main");
            a.cmpi(Reg::R0, 0);
            a.beq("t");
            a.label("t");
            a.halt();
            let options = LinkOptions {
                transform: TransformOptions { nop_padding: pad },
                ..LinkOptions::default()
            };
            let linked = link(&a.into_module(), 0, options).unwrap();
            let site = linked.map.sites_by_entry.values().next().unwrap();
            assert_eq!(site.src - site.entry, pad * 2, "padding {pad}");
        }
    }

    #[test]
    fn size_overhead_is_positive_when_sites_exist() {
        let mut a = Asm::new();
        a.func("main");
        a.load_addr(Reg::R3, "f");
        a.blx(Reg::R3);
        a.halt();
        a.func("f");
        a.ret();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).unwrap();
        assert!(linked.size_overhead() > 0);
        assert_eq!(linked.map.site_count(), 1);
    }

    #[test]
    fn conditional_target_resolution() {
        let mut a = Asm::new();
        a.func("main");
        a.cmpi(Reg::R0, 0);
        a.beq("target");
        a.nop();
        a.label("target");
        a.halt();
        let linked = link(&a.into_module(), 0, LinkOptions::default()).unwrap();
        let target_addr = linked.image.symbol("target").unwrap();
        let site = linked.map.sites_by_entry.values().next().unwrap();
        assert_eq!(site.kind, SiteKind::CondTaken { taken: target_addr });
        assert!(linked.map.mtbdr.unwrap().contains(target_addr));
    }
}
