//! Textual serialization of the [`LinkMap`] — the artifact the offline
//! phase ships to the Verifier alongside the deployed binary.
//!
//! A line-oriented, diff-friendly format:
//!
//! ```text
//! rap-track-map v1
//! mtbdr 0x00000000 0x00000120
//! mtbar 0x00000120 0x00000200
//! origsize 280
//! site 0 cond-taken 0x120 0x122 0x14 taken=0x30
//! loop 0x40 header=0x38 exit=0x44 iter=r0 step=-1 bound=0 cond=ne logged
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use armv8m_isa::{Cond, Reg};

use crate::classify::LoopPlanKind;
use crate::map::{AddrRange, LinkMap, LoopMeta, Site, SiteKind};

/// A failure while reading a serialized map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapFormatError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for MapFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MapFormatError {}

fn ferr(line: usize, message: impl Into<String>) -> MapFormatError {
    MapFormatError {
        line,
        message: message.into(),
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Cs => "cs",
        Cond::Cc => "cc",
        Cond::Mi => "mi",
        Cond::Pl => "pl",
        Cond::Vs => "vs",
        Cond::Vc => "vc",
        Cond::Hi => "hi",
        Cond::Ls => "ls",
        Cond::Ge => "ge",
        Cond::Lt => "lt",
        Cond::Gt => "gt",
        Cond::Le => "le",
    }
}

fn cond_parse(s: &str, line: usize) -> Result<Cond, MapFormatError> {
    Cond::ALL
        .into_iter()
        .find(|c| cond_name(*c) == s)
        .ok_or_else(|| ferr(line, format!("bad condition `{s}`")))
}

/// Renders a [`LinkMap`] to its text form.
pub fn write_map(map: &LinkMap) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rap-track-map v1");
    if let Some(r) = map.mtbdr {
        let _ = writeln!(out, "mtbdr {:#010x} {:#010x}", r.start, r.end);
    }
    if let Some(r) = map.mtbar {
        let _ = writeln!(out, "mtbar {:#010x} {:#010x}", r.start, r.end);
    }
    let _ = writeln!(out, "origsize {}", map.original_size);

    let mut sites: Vec<&Site> = map.sites_by_entry.values().collect();
    sites.sort_by_key(|s| (s.entry, s.id));
    for s in sites {
        let (kind, aux) = match s.kind {
            SiteKind::IndirectCall => ("indirect-call", String::new()),
            SiteKind::ReturnPop => ("return-pop", String::new()),
            SiteKind::ReturnBx => ("return-bx", String::new()),
            SiteKind::LoadJump => ("load-jump", String::new()),
            SiteKind::IndirectJump => ("indirect-jump", String::new()),
            SiteKind::CondTaken { taken } => ("cond-taken", format!(" taken={taken:#x}")),
            SiteKind::LoopForward { cont } => ("loop-forward", format!(" cont={cont:#x}")),
            SiteKind::CondFallthrough { cont } => ("cond-fallthrough", format!(" cont={cont:#x}")),
        };
        let _ = writeln!(
            out,
            "site {} {kind} {:#x} {:#x} {:#x}{aux}",
            s.id, s.entry, s.src, s.mtbdr_addr
        );
    }

    let mut funcs: Vec<(&u32, &String)> = map.funcs.iter().collect();
    funcs.sort();
    for (addr, name) in funcs {
        let _ = writeln!(out, "func {addr:#x} {name}");
    }

    let mut loops: Vec<&LoopMeta> = map.loops_by_latch.values().collect();
    loops.sort_by_key(|l| l.latch);
    for l in loops {
        let kind = match l.kind {
            LoopPlanKind::Static { init } => format!("static={init}"),
            LoopPlanKind::Logged => "logged".to_owned(),
        };
        let _ = writeln!(
            out,
            "loop {:#x} header={:#x} exit={:#x} iter={} step={} bound={} cond={} {kind}",
            l.latch,
            l.header,
            l.exit,
            l.iter,
            l.step,
            l.bound,
            cond_name(l.cond)
        );
    }
    out
}

fn num(token: &str, line: usize) -> Result<u32, MapFormatError> {
    let t = token.trim();
    let parsed = if let Some(h) = t.strip_prefix("0x") {
        u32::from_str_radix(h, 16)
    } else {
        t.parse()
    };
    parsed.map_err(|_| ferr(line, format!("bad number `{token}`")))
}

fn kv<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, MapFormatError> {
    token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| ferr(line, format!("expected `{key}=…`, found `{token}`")))
}

/// Parses the text form back into a [`LinkMap`].
///
/// # Errors
///
/// Returns a [`MapFormatError`] on version mismatch or malformed lines.
pub fn read_map(text: &str) -> Result<LinkMap, MapFormatError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ferr(1, "empty map file"))?;
    if header.trim() != "rap-track-map v1" {
        return Err(ferr(1, format!("bad header `{header}`")));
    }

    let mut map = LinkMap::default();
    let mut sites: HashMap<u32, Site> = HashMap::new();

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("nonempty line");
        let rest: Vec<&str> = tok.collect();
        match head {
            "mtbdr" | "mtbar" => {
                if rest.len() != 2 {
                    return Err(ferr(line_no, "expected two addresses"));
                }
                let range = AddrRange {
                    start: num(rest[0], line_no)?,
                    end: num(rest[1], line_no)?,
                };
                if head == "mtbdr" {
                    map.mtbdr = Some(range);
                } else {
                    map.mtbar = Some(range);
                }
            }
            "func" => {
                if rest.len() != 2 {
                    return Err(ferr(line_no, "expected `func ADDR NAME`"));
                }
                map.funcs.insert(num(rest[0], line_no)?, rest[1].to_owned());
            }
            "origsize" => {
                if rest.len() != 1 {
                    return Err(ferr(line_no, "expected one size"));
                }
                map.original_size = num(rest[0], line_no)?;
            }
            "site" => {
                if rest.len() < 5 {
                    return Err(ferr(line_no, "truncated site record"));
                }
                let id = num(rest[0], line_no)? as usize;
                let entry = num(rest[2], line_no)?;
                let src = num(rest[3], line_no)?;
                let mtbdr_addr = num(rest[4], line_no)?;
                let kind = match rest[1] {
                    "indirect-call" => SiteKind::IndirectCall,
                    "return-pop" => SiteKind::ReturnPop,
                    "return-bx" => SiteKind::ReturnBx,
                    "load-jump" => SiteKind::LoadJump,
                    "indirect-jump" => SiteKind::IndirectJump,
                    "cond-taken" => SiteKind::CondTaken {
                        taken: num(
                            kv(rest.get(5).copied().unwrap_or(""), "taken", line_no)?,
                            line_no,
                        )?,
                    },
                    "loop-forward" => SiteKind::LoopForward {
                        cont: num(
                            kv(rest.get(5).copied().unwrap_or(""), "cont", line_no)?,
                            line_no,
                        )?,
                    },
                    "cond-fallthrough" => SiteKind::CondFallthrough {
                        cont: num(
                            kv(rest.get(5).copied().unwrap_or(""), "cont", line_no)?,
                            line_no,
                        )?,
                    },
                    other => return Err(ferr(line_no, format!("bad site kind `{other}`"))),
                };
                sites.insert(
                    entry,
                    Site {
                        id,
                        kind,
                        entry,
                        src,
                        mtbdr_addr,
                    },
                );
            }
            "loop" => {
                if rest.len() != 8 {
                    return Err(ferr(line_no, "truncated loop record"));
                }
                let latch = num(rest[0], line_no)?;
                let header = num(kv(rest[1], "header", line_no)?, line_no)?;
                let exit = num(kv(rest[2], "exit", line_no)?, line_no)?;
                let iter_str = kv(rest[3], "iter", line_no)?;
                let iter = iter_str
                    .strip_prefix('r')
                    .and_then(|n| n.parse::<u8>().ok())
                    .and_then(Reg::from_index)
                    .or(match iter_str {
                        "sp" => Some(Reg::Sp),
                        "lr" => Some(Reg::Lr),
                        "pc" => Some(Reg::Pc),
                        _ => None,
                    })
                    .ok_or_else(|| ferr(line_no, format!("bad iter register `{iter_str}`")))?;
                let step: i32 = kv(rest[4], "step", line_no)?
                    .parse()
                    .map_err(|_| ferr(line_no, "bad step"))?;
                let bound = num(kv(rest[5], "bound", line_no)?, line_no)? as u16;
                let cond = cond_parse(kv(rest[6], "cond", line_no)?, line_no)?;
                let kind = if rest[7] == "logged" {
                    LoopPlanKind::Logged
                } else {
                    LoopPlanKind::Static {
                        init: num(kv(rest[7], "static", line_no)?, line_no)?,
                    }
                };
                map.loops_by_latch.insert(
                    latch,
                    LoopMeta {
                        header,
                        latch,
                        exit,
                        iter,
                        step,
                        bound,
                        cond,
                        kind,
                    },
                );
            }
            other => return Err(ferr(line_no, format!("unknown record `{other}`"))),
        }
    }

    for (entry, site) in sites {
        map.sites_by_src.insert(site.src, site);
        map.sites_by_entry.insert(entry, site);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{link, LinkOptions};
    use armv8m_isa::{Asm, Instr, Reg};

    fn rich_map() -> LinkMap {
        // A program exercising every site kind and loop kind.
        let mut a = Asm::new();
        a.func("main");
        // static loop
        a.movi(Reg::R0, 4);
        a.label("s");
        a.nop();
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("s");
        // logged loop
        a.mov(Reg::R0, Reg::R2);
        a.label("l");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmpi(Reg::R0, 0);
        a.bne("l");
        // conditional
        a.cmpi(Reg::R1, 1);
        a.beq("t");
        a.label("t");
        // forward loop
        a.mov32(Reg::R2, mcu_sim::RAM_BASE);
        a.label("fw");
        a.ldr(Reg::R1, Reg::R2, 0);
        a.cmpi(Reg::R1, 1);
        a.beq("out");
        a.b("fw");
        a.label("out");
        // indirect call + jump-table + returns
        a.load_addr(Reg::R3, "leafish");
        a.blx(Reg::R3);
        a.bl("popret");
        a.instr(Instr::LdrReg {
            rt: Reg::Pc,
            rn: Reg::R2,
            rm: Reg::R1,
        });
        a.label("case");
        a.halt();
        a.func("popret");
        a.push(&[Reg::Lr]);
        a.bl("leafish");
        a.pop(&[Reg::Pc]);
        a.func("leafish");
        a.ret();
        link(&a.into_module(), 0, LinkOptions::default())
            .expect("links")
            .map
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let map = rich_map();
        let text = write_map(&map);
        let back = read_map(&text).expect("parses");
        assert_eq!(back.mtbdr, map.mtbdr);
        assert_eq!(back.mtbar, map.mtbar);
        assert_eq!(back.original_size, map.original_size);
        assert_eq!(back.sites_by_entry.len(), map.sites_by_entry.len());
        for (entry, site) in &map.sites_by_entry {
            assert_eq!(back.sites_by_entry.get(entry), Some(site));
        }
        assert_eq!(back.sites_by_src.len(), map.sites_by_src.len());
        assert_eq!(back.loops_by_latch.len(), map.loops_by_latch.len());
        for (latch, l) in &map.loops_by_latch {
            assert_eq!(back.loops_by_latch.get(latch), Some(l));
        }
        assert_eq!(back.funcs, map.funcs);
        assert!(!back.funcs.is_empty());
    }

    #[test]
    fn rich_map_covers_kinds() {
        let map = rich_map();
        let kinds: Vec<SiteKind> = map.sites_by_entry.values().map(|s| s.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, SiteKind::IndirectCall)));
        assert!(kinds.iter().any(|k| matches!(k, SiteKind::ReturnPop)));
        assert!(kinds.iter().any(|k| matches!(k, SiteKind::LoadJump)));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, SiteKind::CondTaken { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, SiteKind::LoopForward { .. })));
        let loop_kinds: Vec<LoopPlanKind> = map.loops_by_latch.values().map(|l| l.kind).collect();
        assert!(loop_kinds
            .iter()
            .any(|k| matches!(k, LoopPlanKind::Static { .. })));
        assert!(loop_kinds.contains(&LoopPlanKind::Logged));
    }

    #[test]
    fn bad_inputs_are_rejected_with_lines() {
        assert!(read_map("").is_err());
        assert!(read_map("not-a-map").is_err());
        let e = read_map("rap-track-map v1\nsite 0 bogus 0x0 0x0 0x0").unwrap_err();
        assert_eq!(e.line, 2);
        let e = read_map("rap-track-map v1\nmtbdr 0x0").unwrap_err();
        assert!(e.message.contains("two addresses"));
        let e = read_map("rap-track-map v1\nwat 1").unwrap_err();
        assert!(e.message.contains("unknown record"));
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let map = read_map("rap-track-map v1\n\n# comment\norigsize 12\n").expect("parses");
        assert_eq!(map.original_size, 12);
    }
}
