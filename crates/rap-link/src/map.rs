//! Link metadata: what the Verifier needs (besides the deployed binary)
//! to losslessly reconstruct control flow from `CF_Log`.
//!
//! All addresses refer to the *rewritten* image — the binary actually
//! deployed on the Prover and hashed into `H_MEM`.

use std::collections::HashMap;

use armv8m_isa::{Cond, Reg};

use crate::classify::{simulate_loop_count, LoopPlanKind};

/// A half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// Inclusive start.
    pub start: u32,
    /// Exclusive end.
    pub end: u32,
}

impl AddrRange {
    /// Whether `addr` lies inside the range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Size of the range in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The kind of an MTBAR trampoline site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Fig. 3: `BLX rm` relocated as `BL stub` + `BX rm`.
    IndirectCall,
    /// Fig. 4 (shared): `POP {…, PC}` split into `POP {…}` + `B stub`,
    /// stub holds the single shared `POP {PC}`.
    ReturnPop,
    /// Fig. 4: `LDR PC, […]` relocated into its own stub.
    LoadJump,
    /// `BX rm` computed jump relocated into its own stub.
    IndirectJump,
    /// `BX LR` return in a function that modifies `LR` (§IV-C.2):
    /// relocated like an indirect jump, but verified as a return
    /// against the shadow call stack.
    ReturnBx,
    /// Fig. 5/6: conditional with the taken edge routed via the stub.
    CondTaken {
        /// Original taken-target address.
        taken: u32,
    },
    /// Fig. 7: per-iteration continue logging for forward-exit loops.
    LoopForward {
        /// Address execution resumes at (the original not-taken path).
        cont: u32,
    },
    /// Disambiguation extension: explicit fall-through logging for
    /// conditionals with quiet self-cycles (see `Disposition::CondBoth`).
    CondFallthrough {
        /// Address execution resumes at.
        cont: u32,
    },
}

/// One MTBAR stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Stable site id (allocation order).
    pub id: usize,
    /// What the stub implements.
    pub kind: SiteKind,
    /// Address of the stub's first instruction (branch-target of the
    /// MTBDR side).
    pub entry: u32,
    /// Address of the stub's *branching* instruction — the `source`
    /// field of MTB packets produced by this site.
    pub src: u32,
    /// Address of the rewritten site in MTBDR.
    pub mtbdr_addr: u32,
}

/// Replay metadata for one optimized (simple or static) loop, keyed by
/// its latch address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopMeta {
    /// Loop header address.
    pub header: u32,
    /// Latch (backward conditional branch) address.
    pub latch: u32,
    /// Address execution continues at after the loop (latch
    /// fall-through).
    pub exit: u32,
    /// Iterator register.
    pub iter: Reg,
    /// Signed per-iteration step.
    pub step: i32,
    /// Constant bound compared at the latch.
    pub bound: u16,
    /// Latch condition (loop continues while it passes).
    pub cond: Cond,
    /// Static or runtime-logged initial value.
    pub kind: LoopPlanKind,
}

impl LoopMeta {
    /// Iteration count for a given initial iterator value.
    ///
    /// Returns `None` when the loop would not terminate within `cap`
    /// iterations (misclassification or a forged logged value).
    pub fn iterations(&self, init: u32, cap: u32) -> Option<u32> {
        let plan = crate::classify::LoopPlan {
            header: 0,
            latch: 0,
            iter: self.iter,
            step: self.step,
            bound: self.bound,
            cond: self.cond,
            kind: self.kind,
        };
        simulate_loop_count(&plan, init, cap)
    }
}

/// The complete link map shipped to the Verifier alongside the binary.
#[derive(Debug, Clone, Default)]
pub struct LinkMap {
    /// The MTB deactivation region (the rewritten application code).
    pub mtbdr: Option<AddrRange>,
    /// The MTB activation region (the trampoline stubs).
    pub mtbar: Option<AddrRange>,
    /// Stubs by entry address (what MTBDR branches target).
    pub sites_by_entry: HashMap<u32, Site>,
    /// Stubs by source address (what MTB packets carry).
    pub sites_by_src: HashMap<u32, Site>,
    /// Optimized loops keyed by latch address.
    pub loops_by_latch: HashMap<u32, LoopMeta>,
    /// Function entry points (address → name) — the indirect-call
    /// policy set, preserved here because raw binaries carry no symbol
    /// table.
    pub funcs: HashMap<u32, String>,
    /// Original (pre-transform) code size in bytes, for the Fig. 10
    /// comparison.
    pub original_size: u32,
}

impl LinkMap {
    /// Whether `addr` lies in the MTB activation region.
    pub fn in_mtbar(&self, addr: u32) -> bool {
        self.mtbar.is_some_and(|r| r.contains(addr))
    }

    /// The stub whose entry is `addr`, if any.
    pub fn site_at_entry(&self, addr: u32) -> Option<&Site> {
        self.sites_by_entry.get(&addr)
    }

    /// The stub whose branch source is `addr`, if any.
    pub fn site_at_src(&self, addr: u32) -> Option<&Site> {
        self.sites_by_src.get(&addr)
    }

    /// Number of trampoline sites.
    pub fn site_count(&self) -> usize {
        self.sites_by_entry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_range_membership() {
        let r = AddrRange {
            start: 0x100,
            end: 0x200,
        };
        assert!(r.contains(0x100));
        assert!(!r.contains(0x200));
        assert_eq!(r.len(), 0x100);
        assert!(!r.is_empty());
        assert!(AddrRange {
            start: 0x10,
            end: 0x10
        }
        .is_empty());
    }

    #[test]
    fn loop_meta_iterations() {
        let meta = LoopMeta {
            header: 0x10,
            latch: 0x20,
            exit: 0x24,
            iter: Reg::R0,
            step: -1,
            bound: 0,
            cond: Cond::Ne,
            kind: LoopPlanKind::Logged,
        };
        assert_eq!(meta.iterations(4, 100), Some(4));
        // init 0 wraps to u32::MAX and never reaches the bound in cap.
        assert_eq!(meta.iterations(0, 100), None);
    }
}
