//! Offline-phase diagnostics: what the linker decided and why.
//!
//! Firmware authors tuning for RAP-Track want to know which loops pay
//! per-iteration logging and how to restructure them for §IV-D. The
//! [`explain`] report lists, per function, the branch-site dispositions
//! and every loop's optimization outcome — including the *rejection
//! reason* for loops that stay general.

use std::fmt;

use crate::cfg::Cfg;
use crate::classify::{
    classify, plan_simple_loop, Classification, ClassifyOptions, Disposition, LoopPlanKind,
    LoopReject,
};
use crate::{CfgError, LinkOptions};
use armv8m_isa::Module;

/// Per-function classification summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSummary {
    /// Function name.
    pub name: String,
    /// Instruction count (including pseudo-ops).
    pub instrs: usize,
    /// Trampolined sites: `(disposition label, count)` pairs.
    pub sites: Vec<(&'static str, usize)>,
}

/// The optimization outcome of one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopOutcome {
    /// Fully static: elided from the log entirely.
    Static {
        /// Statically derived iteration count's initial value.
        init: u32,
    },
    /// §IV-D: condition logged once per entry.
    Logged,
    /// General loop with the rejection reason.
    General(LoopReject),
}

/// One analyzed loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDecision {
    /// Enclosing function.
    pub function: String,
    /// Header node index (see [`Cfg::nodes`]).
    pub header: usize,
    /// Latch node index.
    pub latch: usize,
    /// Body size in nodes.
    pub body_len: usize,
    /// The outcome.
    pub outcome: LoopOutcome,
}

/// The full offline-phase report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkReport {
    /// Per-function summaries in layout order.
    pub functions: Vec<FunctionSummary>,
    /// Per-loop decisions in discovery order.
    pub loops: Vec<LoopDecision>,
}

fn disposition_label(d: Disposition) -> Option<&'static str> {
    Some(match d {
        Disposition::Keep => return None,
        Disposition::IndirectCall => "indirect-call",
        Disposition::ReturnPop => "return-pop",
        Disposition::LoadJump => "load-jump",
        Disposition::IndirectJump => "indirect-jump",
        Disposition::CondTaken => "cond-taken",
        Disposition::LoopForward => "loop-forward",
        Disposition::CondBoth => "cond-both",
        Disposition::SimpleLoopLatch { .. } => "loop-latch(logged)",
        Disposition::StaticLoopLatch { .. } => "loop-latch(static)",
    })
}

/// Analyzes `module` and reports every classification decision.
///
/// # Errors
///
/// Propagates CFG-recovery failures.
pub fn explain(module: &Module, options: LinkOptions) -> Result<LinkReport, CfgError> {
    let cfg = Cfg::build(module)?;
    let cls: Classification = classify(&cfg, options.classify);

    let mut functions = Vec::new();
    for (name, start, end) in &cfg.functions {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for i in *start..*end {
            if let Some(label) = disposition_label(cls.dispositions[i]) {
                match counts.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((label, 1)),
                }
            }
        }
        functions.push(FunctionSummary {
            name: name.clone(),
            instrs: end - start,
            sites: counts,
        });
    }

    let opts_on = ClassifyOptions::default();
    let _ = opts_on;
    let mut loops = Vec::new();
    for l in &cfg.loops {
        let function = cfg
            .function_of(l.header)
            .map(|(n, _, _)| n.clone())
            .unwrap_or_else(|| "<module>".to_owned());
        let outcome = match plan_simple_loop(&cfg, l) {
            Ok(plan) => match plan.kind {
                LoopPlanKind::Static { init } if options.classify.static_loop_elision => {
                    LoopOutcome::Static { init }
                }
                _ if options.classify.loop_opt => LoopOutcome::Logged,
                _ => LoopOutcome::General(LoopReject::NotBackwardConditionalLatch),
            },
            Err(reason) => LoopOutcome::General(reason),
        };
        loops.push(LoopDecision {
            function,
            header: l.header,
            latch: l.latch,
            body_len: l.body.len(),
            outcome,
        });
    }

    Ok(LinkReport { functions, loops })
}

impl fmt::Display for LinkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "functions:")?;
        for func in &self.functions {
            write!(f, "  {:<20} {:>4} instrs", func.name, func.instrs)?;
            if func.sites.is_empty() {
                writeln!(f, "  (fully deterministic)")?;
            } else {
                let sites: Vec<String> = func
                    .sites
                    .iter()
                    .map(|(l, c)| format!("{l} x{c}"))
                    .collect();
                writeln!(f, "  {}", sites.join(", "))?;
            }
        }
        writeln!(f, "loops:")?;
        for l in &self.loops {
            let outcome = match &l.outcome {
                LoopOutcome::Static { init } => format!("STATIC (init {init}, elided)"),
                LoopOutcome::Logged => "LOGGED once per entry (§IV-D)".to_owned(),
                LoopOutcome::General(r) => format!("general — {r}"),
            };
            writeln!(
                f,
                "  {}: nodes {}..={} ({} in body)  {}",
                l.function, l.header, l.latch, l.body_len, outcome
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_workload_structure() {
        let w = workloads::ultrasonic::workload();
        let report = explain(&w.module, LinkOptions::default()).expect("explains");
        // main + measure + to_distance.
        assert_eq!(report.functions.len(), 3);
        let main = &report.functions[0];
        assert_eq!(main.name, "main");
        assert!(main.sites.iter().any(|(l, _)| *l == "cond-taken"));
        // The echo wait is the logged loop, the outer loop is general.
        assert!(report
            .loops
            .iter()
            .any(|l| l.outcome == LoopOutcome::Logged));
        assert!(report
            .loops
            .iter()
            .any(|l| matches!(l.outcome, LoopOutcome::General(LoopReject::BranchInBody))));
    }

    #[test]
    fn rejection_reasons_are_specific() {
        use armv8m_isa::{Asm, Reg};

        // Memory-dependent iterator → not register-only.
        let mut a = Asm::new();
        a.func("main");
        a.mov32(Reg::R1, mcu_sim::RAM_BASE);
        a.label("l");
        a.ldr(Reg::R0, Reg::R1, 0);
        a.cmpi(Reg::R0, 0);
        a.bne("l");
        a.halt();
        let report = explain(&a.into_module(), LinkOptions::default()).unwrap();
        assert!(matches!(
            report.loops[0].outcome,
            LoopOutcome::General(LoopReject::IteratorNotRegisterOnly)
        ));

        // Register-vs-register bound → no constant compare.
        let mut a = Asm::new();
        a.func("main");
        a.movi(Reg::R0, 5);
        a.movi(Reg::R2, 0);
        a.label("l");
        a.subi(Reg::R0, Reg::R0, 1);
        a.cmp(Reg::R0, Reg::R2);
        a.bne("l");
        a.halt();
        let report = explain(&a.into_module(), LinkOptions::default()).unwrap();
        assert!(matches!(
            report.loops[0].outcome,
            LoopOutcome::General(LoopReject::NoConstCompareAtLatch)
        ));

        // Unconditional latch → not a backward conditional.
        let mut a = Asm::new();
        a.func("main");
        a.mov32(Reg::R2, mcu_sim::RAM_BASE);
        a.label("l");
        a.ldr(Reg::R1, Reg::R2, 0);
        a.cmpi(Reg::R1, 1);
        a.beq("out");
        a.b("l");
        a.label("out");
        a.halt();
        let report = explain(&a.into_module(), LinkOptions::default()).unwrap();
        assert!(matches!(
            report.loops[0].outcome,
            LoopOutcome::General(LoopReject::NotBackwardConditionalLatch)
        ));
    }

    #[test]
    fn display_renders_everything() {
        let w = workloads::geiger::workload();
        let report = explain(&w.module, LinkOptions::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("functions:"));
        assert!(text.contains("loops:"));
        assert!(text.contains("STATIC"), "{text}");
        assert!(text.contains("compute_cpm"));
    }
}
