//! The rewriting pass: MTBDR/MTBAR layout and trampoline insertion.
//!
//! Consumes a classified module and produces the deployed layout:
//! the rewritten application code (MTBDR) followed by the trampoline
//! region (MTBAR), with synthetic labels tying the two together and the
//! address-resolved [`LinkMap`] extracted after assembly.

use armv8m_isa::{service, AsmError, Image, Instr, Item, Module, Reg, RegList, Target};

use crate::cfg::{Cfg, FlatOp};
use crate::classify::{Classification, Disposition, LoopPlanKind};
use crate::map::{AddrRange, LinkMap, LoopMeta, Site, SiteKind};

/// Synthetic label prefixes (namespaced to avoid user collisions).
const MTBAR_START: &str = "__rap_mtbar_start";
const POP_STUB: &str = "__rap_pop";
const POP_SRC: &str = "__rap_pop_src";

fn site_label(id: usize) -> String {
    format!("__rap_site_{id}")
}

fn src_label(id: usize) -> String {
    format!("__rap_src_{id}")
}

fn cont_label(id: usize) -> String {
    format!("__rap_cont_{id}")
}

fn latch_label(plan: usize) -> String {
    format!("__rap_latch_{plan}")
}

/// Tuning knobs of the transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformOptions {
    /// `NOP`s inserted at each stub head so the MTB is active by the
    /// time the stub's branch executes (must be ≥ the MTB model's
    /// `activation_delay`, §V-C).
    pub nop_padding: u32,
}

impl Default for TransformOptions {
    fn default() -> TransformOptions {
        TransformOptions { nop_padding: 1 }
    }
}

/// Label-form site record, resolved to addresses after assembly.
#[derive(Debug, Clone)]
struct PendingSite {
    id: usize,
    kind: PendingKind,
}

#[derive(Debug, Clone)]
enum PendingKind {
    IndirectCall,
    ReturnPop,
    ReturnBx,
    LoadJump,
    IndirectJump,
    CondTaken { taken: Target },
    CondFallthrough,
    LoopForward,
}

/// The transformed program before assembly.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The rewritten module (MTBDR then MTBAR).
    pub module: Module,
    pending: Vec<PendingSite>,
    pending_loops: Vec<usize>,
    original_size: u32,
    uses_pop_stub: bool,
}

/// Rewrites `module` according to its classification.
///
/// The result still carries symbolic labels; call
/// [`Transformed::assemble`] to obtain the deployable image and the
/// address-resolved [`LinkMap`].
pub fn transform(
    module: &Module,
    cfg: &Cfg,
    cls: &Classification,
    options: TransformOptions,
) -> Transformed {
    let original_size = module.size();
    let mut out: Vec<Item> = Vec::with_capacity(module.items.len() * 2);
    let mut stubs: Vec<Item> = Vec::new();
    let mut pending: Vec<PendingSite> = Vec::new();
    let mut uses_pop_stub = false;

    // Loops whose header needs a preceding SG instrumentation.
    let mut sg_at_header: Vec<Option<usize>> = vec![None; cfg.nodes.len()];
    let mut latch_of_plan: Vec<Option<usize>> = vec![None; cfg.nodes.len()];
    for (p, plan) in cls.loop_plans.iter().enumerate() {
        if plan.kind == LoopPlanKind::Logged {
            sg_at_header[plan.header] = Some(p);
        }
        latch_of_plan[plan.latch] = Some(p);
    }

    let pad = |stubs: &mut Vec<Item>| {
        for _ in 0..options.nop_padding {
            stubs.push(Item::Instr(Instr::Nop));
        }
    };

    let emit_stub_head = |stubs: &mut Vec<Item>, id: usize| {
        stubs.push(Item::Label(site_label(id)));
        pad(stubs);
        stubs.push(Item::Label(src_label(id)));
    };

    for (i, node) in cfg.nodes.iter().enumerate() {
        // §IV-D instrumentation goes *before* the header's labels so the
        // back edge re-enters past it.
        if let Some(p) = sg_at_header[i] {
            out.push(Item::Instr(Instr::SecureGateway {
                service: service::LOG_LOOP_COND,
                arg: cls.loop_plans[p].iter,
            }));
        }

        // Re-emit labels / function markers.
        for label in &node.labels {
            if node.func_entry.as_deref() == Some(label.as_str()) {
                out.push(Item::Func(label.clone()));
            } else {
                out.push(Item::Label(label.clone()));
            }
        }
        // Latches of planned loops get a synthetic label so the map can
        // key them by address.
        if let Some(p) = latch_of_plan[i] {
            out.push(Item::Label(latch_label(p)));
        }

        let instr = match &node.op {
            FlatOp::LoadAddr { rd, target } => {
                out.push(Item::LoadAddr {
                    rd: *rd,
                    target: target.clone(),
                });
                continue;
            }
            FlatOp::Instr(instr) => instr,
        };

        match cls.dispositions[i] {
            Disposition::Keep
            | Disposition::SimpleLoopLatch { .. }
            | Disposition::StaticLoopLatch { .. } => {
                out.push(Item::Instr(instr.clone()));
            }
            Disposition::IndirectCall => {
                let Instr::Blx { rm } = instr else {
                    unreachable!("IndirectCall disposition on non-BLX");
                };
                let id = pending.len();
                out.push(Item::Instr(Instr::Bl {
                    target: Target::label(site_label(id)),
                }));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(Instr::Bx { rm: *rm }));
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::IndirectCall,
                });
            }
            Disposition::ReturnPop => {
                let Instr::Pop { list } = instr else {
                    unreachable!("ReturnPop disposition on non-POP");
                };
                let rest = list.without(Reg::Pc);
                if !rest.is_empty() {
                    out.push(Item::Instr(Instr::Pop { list: rest }));
                }
                let id = pending.len();
                out.push(Item::Instr(Instr::B {
                    target: Target::label(POP_STUB.to_owned()),
                }));
                uses_pop_stub = true;
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::ReturnPop,
                });
            }
            Disposition::LoadJump => {
                let id = pending.len();
                out.push(Item::Instr(Instr::B {
                    target: Target::label(site_label(id)),
                }));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(instr.clone()));
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::LoadJump,
                });
            }
            Disposition::IndirectJump => {
                let Instr::Bx { rm } = instr else {
                    unreachable!("IndirectJump disposition on non-BX");
                };
                let id = pending.len();
                out.push(Item::Instr(Instr::B {
                    target: Target::label(site_label(id)),
                }));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(Instr::Bx { rm: *rm }));
                let kind = if *rm == Reg::Lr {
                    PendingKind::ReturnBx
                } else {
                    PendingKind::IndirectJump
                };
                pending.push(PendingSite { id, kind });
            }
            Disposition::CondTaken => {
                let Instr::BCond { cond, target } = instr else {
                    unreachable!("CondTaken disposition on non-BCond");
                };
                let id = pending.len();
                out.push(Item::Instr(Instr::BCond {
                    cond: *cond,
                    target: Target::label(site_label(id)),
                }));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(Instr::B {
                    target: target.clone(),
                }));
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::CondTaken {
                        taken: target.clone(),
                    },
                });
            }
            Disposition::CondBoth => {
                // Disambiguation extension: both directions logged.
                let Instr::BCond { cond, target } = instr else {
                    unreachable!("CondBoth disposition on non-BCond");
                };
                // Taken side, exactly like CondTaken.
                let id = pending.len();
                out.push(Item::Instr(Instr::BCond {
                    cond: *cond,
                    target: Target::label(site_label(id)),
                }));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(Instr::B {
                    target: target.clone(),
                }));
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::CondTaken {
                        taken: target.clone(),
                    },
                });
                // Fall-through side: an inserted logging branch.
                let id = pending.len();
                out.push(Item::Instr(Instr::B {
                    target: Target::label(site_label(id)),
                }));
                out.push(Item::Label(cont_label(id)));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(Instr::B {
                    target: Target::label(cont_label(id)),
                }));
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::CondFallthrough,
                });
            }
            Disposition::LoopForward => {
                // Fig. 7: the conditional stays; a continue-logging
                // branch is inserted right after it.
                out.push(Item::Instr(instr.clone()));
                let id = pending.len();
                out.push(Item::Instr(Instr::B {
                    target: Target::label(site_label(id)),
                }));
                out.push(Item::Label(cont_label(id)));
                emit_stub_head(&mut stubs, id);
                stubs.push(Item::Instr(Instr::B {
                    target: Target::label(cont_label(id)),
                }));
                pending.push(PendingSite {
                    id,
                    kind: PendingKind::LoopForward,
                });
            }
        }
    }

    // Shared POP {PC} stub (Fig. 4: one MTBAR_POP_ADDR for all sites).
    let mut mtbar: Vec<Item> = Vec::new();
    mtbar.push(Item::Label(MTBAR_START.to_owned()));
    if uses_pop_stub {
        mtbar.push(Item::Label(POP_STUB.to_owned()));
        for _ in 0..options.nop_padding {
            mtbar.push(Item::Instr(Instr::Nop));
        }
        mtbar.push(Item::Label(POP_SRC.to_owned()));
        mtbar.push(Item::Instr(Instr::Pop {
            list: RegList::new().with(Reg::Pc),
        }));
    }
    mtbar.extend(stubs);

    out.extend(mtbar);

    Transformed {
        module: Module { items: out },
        pending,
        pending_loops: (0..cls.loop_plans.len()).collect(),
        original_size,
        uses_pop_stub,
    }
}

/// Errors raised when finalizing the transformed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The rewritten module failed to assemble.
    Asm(AsmError),
    /// CFG recovery failed.
    Cfg(crate::cfg::CfgError),
    /// Internal invariant broken while resolving the map (a bug).
    Internal(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Asm(e) => write!(f, "assembly failed: {e}"),
            LinkError::Cfg(e) => write!(f, "cfg recovery failed: {e}"),
            LinkError::Internal(msg) => write!(f, "internal link error: {msg}"),
        }
    }
}

impl std::error::Error for LinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LinkError::Asm(e) => Some(e),
            LinkError::Cfg(e) => Some(e),
            LinkError::Internal(_) => None,
        }
    }
}

impl From<AsmError> for LinkError {
    fn from(e: AsmError) -> LinkError {
        LinkError::Asm(e)
    }
}

impl From<crate::cfg::CfgError> for LinkError {
    fn from(e: crate::cfg::CfgError) -> LinkError {
        LinkError::Cfg(e)
    }
}

impl Transformed {
    /// Assembles the rewritten module at `base` and resolves the
    /// [`LinkMap`].
    ///
    /// # Errors
    ///
    /// Propagates assembly failures and reports internal inconsistencies
    /// as [`LinkError::Internal`].
    pub fn assemble(&self, base: u32, cls: &Classification) -> Result<(Image, LinkMap), LinkError> {
        let image = self.module.assemble(base)?;
        let sym = |name: &str| -> Result<u32, LinkError> {
            image
                .symbol(name)
                .ok_or_else(|| LinkError::Internal(format!("missing symbol `{name}`")))
        };

        let mtbar_start = sym(MTBAR_START)?;
        let mtbar = AddrRange {
            start: mtbar_start,
            end: image.end(),
        };
        let mut map = LinkMap {
            mtbdr: Some(AddrRange {
                start: base,
                end: mtbar_start,
            }),
            // No stubs → no activation region: the MTB simply never
            // turns on and the DWT needs no comparators.
            mtbar: (!mtbar.is_empty()).then_some(mtbar),
            original_size: self.original_size,
            ..LinkMap::default()
        };

        let pop_entry = if self.uses_pop_stub {
            Some((sym(POP_STUB)?, sym(POP_SRC)?))
        } else {
            None
        };

        for p in &self.pending {
            let (entry, src, kind) = match &p.kind {
                PendingKind::ReturnPop => {
                    let (entry, src) =
                        pop_entry.ok_or_else(|| LinkError::Internal("pop stub missing".into()))?;
                    (entry, src, SiteKind::ReturnPop)
                }
                PendingKind::IndirectCall => (
                    sym(&site_label(p.id))?,
                    sym(&src_label(p.id))?,
                    SiteKind::IndirectCall,
                ),
                PendingKind::LoadJump => (
                    sym(&site_label(p.id))?,
                    sym(&src_label(p.id))?,
                    SiteKind::LoadJump,
                ),
                PendingKind::IndirectJump => (
                    sym(&site_label(p.id))?,
                    sym(&src_label(p.id))?,
                    SiteKind::IndirectJump,
                ),
                PendingKind::ReturnBx => (
                    sym(&site_label(p.id))?,
                    sym(&src_label(p.id))?,
                    SiteKind::ReturnBx,
                ),
                PendingKind::CondTaken { taken } => {
                    let taken_addr = match taken {
                        Target::Label(name) => sym(name)?,
                        Target::Abs(a) => *a,
                    };
                    (
                        sym(&site_label(p.id))?,
                        sym(&src_label(p.id))?,
                        SiteKind::CondTaken { taken: taken_addr },
                    )
                }
                PendingKind::LoopForward => (
                    sym(&site_label(p.id))?,
                    sym(&src_label(p.id))?,
                    SiteKind::LoopForward {
                        cont: sym(&cont_label(p.id))?,
                    },
                ),
                PendingKind::CondFallthrough => (
                    sym(&site_label(p.id))?,
                    sym(&src_label(p.id))?,
                    SiteKind::CondFallthrough {
                        cont: sym(&cont_label(p.id))?,
                    },
                ),
            };
            let site = Site {
                id: p.id,
                kind,
                entry,
                src,
                mtbdr_addr: 0, // filled below from the image
            };
            map.sites_by_entry.insert(entry, site);
            map.sites_by_src.insert(src, site);
        }

        // Locate each site's MTBDR-side instruction (the one branching
        // into the stub) for diagnostics.
        for (addr, instr) in image.instrs() {
            if *addr >= mtbar_start {
                break;
            }
            if let Some(Target::Abs(t)) = instr.target().cloned() {
                if map.in_mtbar(t) {
                    if let Some(site) = map.sites_by_entry.get_mut(&t) {
                        if site.mtbdr_addr == 0 {
                            site.mtbdr_addr = *addr;
                            let src = site.src;
                            let copy = *site;
                            map.sites_by_src.insert(src, copy);
                        }
                    }
                }
            }
        }

        for (name, addr) in image.funcs() {
            map.funcs.insert(*addr, name.clone());
        }

        for (p, plan) in cls.loop_plans.iter().enumerate() {
            if !self.pending_loops.contains(&p) {
                continue;
            }
            let latch = sym(&latch_label(p))?;
            let latch_instr = image
                .instr_at(latch)
                .ok_or_else(|| LinkError::Internal("latch address invalid".into()))?;
            let header = match latch_instr.target() {
                Some(Target::Abs(h)) => *h,
                _ => return Err(LinkError::Internal("latch has no resolved target".into())),
            };
            let exit = latch + latch_instr.size();
            map.loops_by_latch.insert(
                latch,
                LoopMeta {
                    header,
                    latch,
                    exit,
                    iter: plan.iter,
                    step: plan.step,
                    bound: plan.bound,
                    cond: plan.cond,
                    kind: plan.kind,
                },
            );
        }

        Ok((image, map))
    }
}
