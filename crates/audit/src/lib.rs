//! # rap-audit — hash-chained audit log for sealed verdicts
//!
//! Every verdict the verifier seals (a [`VerdictRecord`]) can be
//! appended to an audit log whose entries form a hash chain: entry *i*
//! commits to `sha256(prev_entry_hash ‖ record_bytes)`, anchored at a
//! fixed genesis hash. An auditor replays the chain offline with
//! [`ChainVerifier`] and gets either a clean report or the *first
//! break* — a typed reason (broken link, bad seal, truncated tail,
//! undecodable record) with the byte offset of the offending frame.
//!
//! The on-disk format is append-only and crash-tolerant:
//!
//! ```text
//! header  magic "RAPA" + version u8 = 1          5 bytes
//! entry   len u32 LE                             4
//!         record_bytes                           len
//!         entry_hash [u8; 32]                    sha256(prev ‖ record)
//! ```
//!
//! Appends are buffered and land in one `write` per
//! [`AuditLog::flush`] (the serve path flushes once per drain tick),
//! so a crash can only ever leave a *partial tail frame* — which
//! [`AuditLog::open`] detects via the per-entry checksum and truncates
//! away. A complete frame whose hash does not match is *tamper*, never
//! recovered silently.
//!
//! ```
//! use rap_audit::{AuditLog, ChainVerifier};
//! use rap_track::{verdict_seal_key, VerdictDraft, VerdictRecord};
//!
//! let dir = std::env::temp_dir().join(format!("rap-audit-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("verdicts.ralog");
//! let key = verdict_seal_key(b"device-key");
//!
//! let mut log = AuditLog::create(&path)?;
//! for seq in 0..4 {
//!     let record = VerdictRecord::seal(
//!         &key,
//!         VerdictDraft { device: "dev-0".into(), accepted: true, seq, ..VerdictDraft::default() },
//!     );
//!     log.append_record(&record);
//! }
//! log.flush()?;
//!
//! let report = ChainVerifier::with_seal_key(key).verify_file(&path)?;
//! assert!(report.ok());
//! assert_eq!(report.entries, 4);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chain;
mod log;

pub use chain::{
    entry_hash, genesis_hash, ChainBreak, ChainEntry, ChainReport, ChainVerifier, FILE_HEADER_LEN,
    MAX_RECORD_LEN,
};
pub use log::{AuditLog, OpenError};

pub use rap_track::{VerdictDraft, VerdictError, VerdictRecord};
