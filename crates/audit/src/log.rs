//! The file-backed append-only log with batched appends and
//! crash-truncation recovery.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rap_crypto::Digest;
use rap_track::VerdictRecord;

use crate::chain::{
    encode_entry, genesis_hash, ChainBreak, ChainVerifier, FILE_HEADER_LEN, MAGIC, VERSION,
};

/// Why a log file could not be opened for appending.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm
/// so new open failures can be added without a breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum OpenError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The existing file is not an audit log.
    BadHeader,
    /// The existing log fails chain verification beyond a recoverable
    /// partial tail — appending to tampered history would launder it.
    Tampered {
        /// The first break found while scanning.
        first_break: ChainBreak,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "audit log I/O: {e}"),
            OpenError::BadHeader => write!(f, "not an audit log (bad header)"),
            OpenError::Tampered { first_break } => {
                write!(f, "audit log tampered: {first_break}")
            }
        }
    }
}

impl std::error::Error for OpenError {}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> OpenError {
        OpenError::Io(e)
    }
}

/// A hash-chained append-only log of sealed verdict records.
///
/// Appends are buffered in memory and committed in one `write` per
/// [`flush`](AuditLog::flush) — the caller picks the batching schedule
/// (rap-serve flushes once per drain tick). Each entry carries its
/// chain hash, which doubles as a checksum: a crash mid-write leaves a
/// partial tail frame that the next [`open`](AuditLog::open) truncates
/// away, while a *complete* frame with a wrong hash is reported as
/// tamper and never silently dropped.
#[derive(Debug)]
pub struct AuditLog {
    file: File,
    path: PathBuf,
    head: Digest,
    entries: u64,
    committed_bytes: u64,
    pending: Vec<u8>,
    pending_entries: u64,
}

impl AuditLog {
    /// Creates a fresh log, truncating anything at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<AuditLog> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&[VERSION])?;
        file.flush()?;
        Ok(AuditLog {
            file,
            path,
            head: genesis_hash(),
            entries: 0,
            committed_bytes: FILE_HEADER_LEN as u64,
            pending: Vec::new(),
            pending_entries: 0,
        })
    }

    /// Opens an existing log for appending (creating it when missing),
    /// verifying the chain and recovering from a crash-truncated tail.
    ///
    /// # Errors
    ///
    /// [`OpenError::BadHeader`] when the file exists but is not an
    /// audit log, [`OpenError::Tampered`] when the chain breaks for
    /// any reason other than a partial tail frame.
    pub fn open(path: impl AsRef<Path>) -> Result<AuditLog, OpenError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return AuditLog::create(&path).map_err(OpenError::Io);
        }
        let bytes = std::fs::read(&path)?;
        let (_, report) = ChainVerifier::new().scan(&bytes);
        match &report.first_break {
            None => {}
            Some(ChainBreak::BadHeader { .. }) => return Err(OpenError::BadHeader),
            // A partial tail frame is the crash signature: everything
            // before it verified, and the frame itself is incomplete.
            Some(ChainBreak::TruncatedTail { .. }) => {}
            Some(other) => {
                return Err(OpenError::Tampered {
                    first_break: other.clone(),
                })
            }
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        // Recovery: drop the partial tail by truncating back to the
        // verified prefix.
        if report.verified_bytes < bytes.len() as u64 {
            file.set_len(report.verified_bytes)?;
        }
        file.seek(SeekFrom::Start(report.verified_bytes))?;
        Ok(AuditLog {
            file,
            path,
            head: report.head,
            entries: report.entries,
            committed_bytes: report.verified_bytes,
            pending: Vec::new(),
            pending_entries: 0,
        })
    }

    /// Appends one pre-encoded record, returning its chain hash. The
    /// entry is buffered until [`flush`](AuditLog::flush).
    pub fn append(&mut self, record_bytes: &[u8]) -> Digest {
        let (frame, hash) = encode_entry(&self.head, record_bytes);
        self.pending.extend_from_slice(&frame);
        self.pending_entries += 1;
        self.head = hash;
        hash
    }

    /// Appends a sealed record ([`append`](AuditLog::append) over its
    /// canonical encoding).
    pub fn append_record(&mut self, record: &VerdictRecord) -> Digest {
        self.append(&record.encode())
    }

    /// Commits every buffered entry in one write.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.file.flush()?;
        self.committed_bytes += self.pending.len() as u64;
        self.entries += self.pending_entries;
        self.pending.clear();
        self.pending_entries = 0;
        Ok(())
    }

    /// Total entries (committed plus buffered).
    pub fn entries(&self) -> u64 {
        self.entries + self.pending_entries
    }

    /// Entries buffered but not yet flushed.
    pub fn pending_entries(&self) -> u64 {
        self.pending_entries
    }

    /// The chain head after the last append (genesis when empty).
    pub fn head(&self) -> Digest {
        self.head
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for AuditLog {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::FRAME_OVERHEAD;
    use rap_track::{verdict_seal_key, VerdictDraft};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rap-audit-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn key() -> Vec<u8> {
        verdict_seal_key(b"log-unit")
    }

    fn record(seq: u64) -> VerdictRecord {
        VerdictRecord::seal(
            &key(),
            VerdictDraft {
                device: "dev-0".to_string(),
                accepted: true,
                seq,
                ..VerdictDraft::default()
            },
        )
    }

    #[test]
    fn batched_appends_survive_reopen() {
        let path = tmp("reopen.ralog");
        let mut log = AuditLog::create(&path).unwrap();
        for seq in 0..5 {
            log.append_record(&record(seq));
        }
        assert_eq!(log.pending_entries(), 5);
        log.flush().unwrap();
        assert_eq!(log.pending_entries(), 0);
        let head = log.head();
        drop(log);

        let mut log = AuditLog::open(&path).unwrap();
        assert_eq!(log.entries(), 5);
        assert_eq!(log.head(), head);
        log.append_record(&record(5));
        log.flush().unwrap();
        drop(log);

        let report = ChainVerifier::with_seal_key(key())
            .verify_file(&path)
            .unwrap();
        assert!(report.ok(), "{:?}", report.first_break);
        assert_eq!(report.entries, 6);
    }

    #[test]
    fn drop_flushes_buffered_entries() {
        let path = tmp("drop.ralog");
        {
            let mut log = AuditLog::create(&path).unwrap();
            log.append_record(&record(0));
        }
        let report = ChainVerifier::new().verify_file(&path).unwrap();
        assert!(report.ok());
        assert_eq!(report.entries, 1);
    }

    #[test]
    fn crash_truncated_tail_is_recovered_on_open() {
        let path = tmp("crash.ralog");
        let mut log = AuditLog::create(&path).unwrap();
        for seq in 0..3 {
            log.append_record(&record(seq));
        }
        log.flush().unwrap();
        drop(log);
        // Simulate a crash mid-write: chop half of the last frame.
        let bytes = std::fs::read(&path).unwrap();
        let last_len = record(2).encode().len() + FRAME_OVERHEAD;
        std::fs::write(&path, &bytes[..bytes.len() - last_len / 2]).unwrap();

        let mut log = AuditLog::open(&path).unwrap();
        assert_eq!(log.entries(), 2, "partial tail dropped");
        log.append_record(&record(9));
        log.flush().unwrap();
        drop(log);
        let report = ChainVerifier::with_seal_key(key())
            .verify_file(&path)
            .unwrap();
        assert!(report.ok());
        assert_eq!(report.entries, 3);
    }

    #[test]
    fn tampered_log_refuses_to_open() {
        let path = tmp("tampered.ralog");
        let mut log = AuditLog::create(&path).unwrap();
        for seq in 0..3 {
            log.append_record(&record(seq));
        }
        log.flush().unwrap();
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = FILE_HEADER_LEN + 10;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        match AuditLog::open(&path) {
            Err(OpenError::Tampered { first_break }) => {
                assert!(matches!(
                    first_break,
                    ChainBreak::BrokenLink { index: 0, .. }
                ));
            }
            other => panic!("expected Tampered, got {other:?}"),
        }
    }

    #[test]
    fn foreign_file_is_a_bad_header() {
        let path = tmp("foreign.ralog");
        std::fs::write(&path, b"definitely not an audit log").unwrap();
        assert!(matches!(AuditLog::open(&path), Err(OpenError::BadHeader)));
    }

    #[test]
    fn open_creates_missing_log() {
        let path = tmp("fresh.ralog");
        std::fs::remove_file(&path).ok();
        let log = AuditLog::open(&path).unwrap();
        assert_eq!(log.entries(), 0);
        assert_eq!(log.head(), genesis_hash());
    }
}
