//! The hash chain itself: entry hashing, frame encoding, and the
//! offline [`ChainVerifier`].

use rap_crypto::{sha256, Digest, Sha256};
use rap_track::{VerdictError, VerdictRecord};

/// File magic for audit logs.
pub(crate) const MAGIC: &[u8; 4] = b"RAPA";
/// On-disk format version.
pub(crate) const VERSION: u8 = 1;
/// Bytes of the file header (magic + version).
pub const FILE_HEADER_LEN: usize = 5;
/// Bytes of one entry frame's fixed overhead (length prefix + hash).
pub(crate) const FRAME_OVERHEAD: usize = 4 + 32;
/// Upper bound on one record's encoded size. Far above any real
/// record; a length prefix beyond this is adversarial, and rejecting
/// it keeps a corrupted log from driving a huge allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// Domain for the chain's genesis anchor.
const GENESIS_DOMAIN: &[u8] = b"RAP-AUDIT-GENESIS-V1";

/// The anchor every chain starts from: `sha256("RAP-AUDIT-GENESIS-V1")`.
pub fn genesis_hash() -> Digest {
    sha256(GENESIS_DOMAIN)
}

/// The commitment of one entry: `sha256(prev_entry_hash ‖ record_bytes)`.
pub fn entry_hash(prev: &Digest, record_bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(record_bytes);
    h.finalize()
}

/// Encodes one entry frame (length prefix, record bytes, entry hash).
pub(crate) fn encode_entry(prev: &Digest, record_bytes: &[u8]) -> (Vec<u8>, Digest) {
    let hash = entry_hash(prev, record_bytes);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + record_bytes.len());
    out.extend_from_slice(&(record_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(record_bytes);
    out.extend_from_slice(&hash);
    (out, hash)
}

/// Why (and where) a chain stopped verifying.
///
/// Every variant cites the absolute byte offset of the offending frame
/// (for [`ChainBreak::BadHeader`], of the header itself). Marked
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// break kinds can be added without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainBreak {
    /// The file does not start with a valid audit-log header.
    BadHeader {
        /// Always 0 — cited for uniformity.
        offset: u64,
    },
    /// The log ends mid-frame (crash-truncated tail, or a truncation
    /// attack that cut inside an entry).
    TruncatedTail {
        /// Index of the incomplete entry.
        index: u64,
        /// Byte offset where its frame starts.
        offset: u64,
    },
    /// A length prefix exceeds [`MAX_RECORD_LEN`].
    OversizedEntry {
        /// Index of the offending entry.
        index: u64,
        /// Byte offset where its frame starts.
        offset: u64,
        /// The declared length.
        len: u32,
    },
    /// The stored entry hash does not equal
    /// `sha256(prev_entry_hash ‖ record_bytes)` — a bit flip, a
    /// reorder, or a splice that did not recompute the chain.
    BrokenLink {
        /// Index of the offending entry.
        index: u64,
        /// Byte offset where its frame starts.
        offset: u64,
    },
    /// The record bytes do not decode as a [`VerdictRecord`].
    BadRecord {
        /// Index of the offending entry.
        index: u64,
        /// Byte offset where its frame starts.
        offset: u64,
        /// The typed decode failure.
        error: VerdictError,
    },
    /// The record decodes but its seal does not verify under the
    /// supplied key — a re-signed splice by someone without the
    /// sealing key.
    BadSeal {
        /// Index of the offending entry.
        index: u64,
        /// Byte offset where its frame starts.
        offset: u64,
    },
}

impl std::fmt::Display for ChainBreak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainBreak::BadHeader { offset } => {
                write!(f, "bad audit-log header at byte {offset}")
            }
            ChainBreak::TruncatedTail { index, offset } => {
                write!(f, "entry {index} truncated (frame at byte {offset})")
            }
            ChainBreak::OversizedEntry { index, offset, len } => write!(
                f,
                "entry {index} declares implausible length {len} (frame at byte {offset})"
            ),
            ChainBreak::BrokenLink { index, offset } => {
                write!(
                    f,
                    "entry {index} breaks the hash chain (frame at byte {offset})"
                )
            }
            ChainBreak::BadRecord {
                index,
                offset,
                error,
            } => write!(
                f,
                "entry {index} carries an undecodable record (frame at byte {offset}): {error}"
            ),
            ChainBreak::BadSeal { index, offset } => {
                write!(
                    f,
                    "entry {index} fails seal verification (frame at byte {offset})"
                )
            }
        }
    }
}

/// One verified entry, as surfaced by [`ChainVerifier::scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEntry {
    /// Zero-based entry index.
    pub index: u64,
    /// Absolute byte offset of the entry's frame.
    pub offset: u64,
    /// The entry's chain hash.
    pub entry_hash: Digest,
    /// The decoded record.
    pub record: VerdictRecord,
}

/// The outcome of one offline chain replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainReport {
    /// Entries verified before the first break (all of them when
    /// clean).
    pub entries: u64,
    /// Bytes covered by the verified prefix (header included).
    pub verified_bytes: u64,
    /// Chain hash of the last verified entry ([`genesis_hash`] when
    /// the log is empty).
    pub head: Digest,
    /// The first break, if any.
    pub first_break: Option<ChainBreak>,
}

impl ChainReport {
    /// Whether the whole log verified.
    pub fn ok(&self) -> bool {
        self.first_break.is_none()
    }
}

/// Replays an audit log offline, reporting the first break.
///
/// Without a sealing key the verifier checks structure and chain
/// integrity only; with one ([`ChainVerifier::with_seal_key`]) every
/// record's seal is re-checked too, which is what catches a splice
/// that recomputed the chain hashes.
#[derive(Debug, Clone, Default)]
pub struct ChainVerifier {
    seal_key: Option<Vec<u8>>,
}

impl ChainVerifier {
    /// A verifier that checks structure and chain links only.
    pub fn new() -> ChainVerifier {
        ChainVerifier::default()
    }

    /// A verifier that additionally re-checks every record's seal.
    pub fn with_seal_key(seal_key: Vec<u8>) -> ChainVerifier {
        ChainVerifier {
            seal_key: Some(seal_key),
        }
    }

    /// Verifies a whole log image in memory.
    pub fn verify_bytes(&self, bytes: &[u8]) -> ChainReport {
        self.scan(bytes).1
    }

    /// Reads and verifies a log file.
    ///
    /// # Errors
    ///
    /// Only I/O failures error; every *content* problem is a typed
    /// [`ChainBreak`] inside the report.
    pub fn verify_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<ChainReport> {
        Ok(self.verify_bytes(&std::fs::read(path)?))
    }

    /// Replays a log image, returning every entry of the verified
    /// prefix plus the report. `scan` never panics on malformed input:
    /// any byte sequence yields a typed report.
    pub fn scan(&self, bytes: &[u8]) -> (Vec<ChainEntry>, ChainReport) {
        let mut entries = Vec::new();
        let mut report = ChainReport {
            entries: 0,
            verified_bytes: 0,
            head: genesis_hash(),
            first_break: None,
        };
        if bytes.len() < FILE_HEADER_LEN || &bytes[..4] != MAGIC || bytes[4] != VERSION {
            report.first_break = Some(ChainBreak::BadHeader { offset: 0 });
            return (entries, report);
        }
        report.verified_bytes = FILE_HEADER_LEN as u64;
        let mut pos = FILE_HEADER_LEN;
        let mut index = 0u64;
        while pos < bytes.len() {
            let offset = pos as u64;
            let fail = |b: ChainBreak, report: &mut ChainReport| {
                report.first_break = Some(b);
            };
            if bytes.len() - pos < 4 {
                fail(ChainBreak::TruncatedTail { index, offset }, &mut report);
                return (entries, report);
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            if len > MAX_RECORD_LEN {
                fail(
                    ChainBreak::OversizedEntry { index, offset, len },
                    &mut report,
                );
                return (entries, report);
            }
            if bytes.len() - pos < FRAME_OVERHEAD + len as usize {
                fail(ChainBreak::TruncatedTail { index, offset }, &mut report);
                return (entries, report);
            }
            let record_bytes = &bytes[pos + 4..pos + 4 + len as usize];
            let stored: &[u8] = &bytes[pos + 4 + len as usize..pos + FRAME_OVERHEAD + len as usize];
            let expected = entry_hash(&report.head, record_bytes);
            if stored != expected {
                fail(ChainBreak::BrokenLink { index, offset }, &mut report);
                return (entries, report);
            }
            let record = match VerdictRecord::decode(record_bytes) {
                Ok(r) => r,
                Err(error) => {
                    fail(
                        ChainBreak::BadRecord {
                            index,
                            offset,
                            error,
                        },
                        &mut report,
                    );
                    return (entries, report);
                }
            };
            if let Some(key) = &self.seal_key {
                if !record.authenticate(key) {
                    fail(ChainBreak::BadSeal { index, offset }, &mut report);
                    return (entries, report);
                }
            }
            report.head = expected;
            pos += FRAME_OVERHEAD + len as usize;
            report.verified_bytes = pos as u64;
            entries.push(ChainEntry {
                index,
                offset,
                entry_hash: expected,
                record,
            });
            index += 1;
            report.entries = index;
        }
        (entries, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_track::{verdict_seal_key, VerdictDraft};

    fn key() -> Vec<u8> {
        verdict_seal_key(b"chain-unit")
    }

    fn record(seq: u64, accepted: bool) -> VerdictRecord {
        VerdictRecord::seal(
            &key(),
            VerdictDraft {
                device: format!("dev-{}", seq % 3),
                accepted,
                kind: if accepted {
                    String::new()
                } else {
                    "bad-tag".to_string()
                },
                seq,
                ..VerdictDraft::default()
            },
        )
    }

    fn chain_bytes(n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        let mut prev = genesis_hash();
        for seq in 0..n {
            let (frame, hash) = encode_entry(&prev, &record(seq, seq % 4 != 3).encode());
            out.extend_from_slice(&frame);
            prev = hash;
        }
        out
    }

    #[test]
    fn clean_chain_verifies_with_and_without_key() {
        let bytes = chain_bytes(5);
        let plain = ChainVerifier::new().verify_bytes(&bytes);
        assert!(plain.ok(), "{:?}", plain.first_break);
        assert_eq!(plain.entries, 5);
        assert_eq!(plain.verified_bytes, bytes.len() as u64);
        let sealed = ChainVerifier::with_seal_key(key()).verify_bytes(&bytes);
        assert_eq!(sealed, plain);
        let (entries, _) = ChainVerifier::new().scan(&bytes);
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[4].record.fields.seq, 4);
        assert!(entries.windows(2).all(|w| w[0].offset < w[1].offset));
    }

    #[test]
    fn empty_chain_is_genesis_anchored() {
        let bytes = chain_bytes(0);
        let report = ChainVerifier::new().verify_bytes(&bytes);
        assert!(report.ok());
        assert_eq!(report.entries, 0);
        assert_eq!(report.head, genesis_hash());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = chain_bytes(3);
        let v = ChainVerifier::with_seal_key(key());
        for at in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[at] ^= 1 << bit;
                let report = v.verify_bytes(&bad);
                assert!(!report.ok(), "flip of byte {at} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn entry_reorder_breaks_the_first_moved_link() {
        let v = ChainVerifier::new();
        let (entries, clean) = v.scan(&chain_bytes(3));
        assert!(clean.ok());
        // Rebuild the file with entries 1 and 2 swapped, frames intact.
        let bytes = chain_bytes(3);
        let frame = |i: usize| {
            let start = entries[i].offset as usize;
            let end = entries
                .get(i + 1)
                .map(|e| e.offset as usize)
                .unwrap_or(bytes.len());
            bytes[start..end].to_vec()
        };
        let mut reordered = bytes[..FILE_HEADER_LEN].to_vec();
        reordered.extend(frame(0));
        reordered.extend(frame(2));
        reordered.extend(frame(1));
        let report = v.verify_bytes(&reordered);
        assert_eq!(
            report.first_break,
            Some(ChainBreak::BrokenLink {
                index: 1,
                offset: entries[1].offset,
            })
        );
        assert_eq!(report.entries, 1);
    }

    #[test]
    fn mid_file_truncation_is_a_truncated_tail() {
        let bytes = chain_bytes(3);
        let (entries, _) = ChainVerifier::new().scan(&bytes);
        let cut = entries[1].offset as usize + 7;
        let report = ChainVerifier::new().verify_bytes(&bytes[..cut]);
        assert_eq!(
            report.first_break,
            Some(ChainBreak::TruncatedTail {
                index: 1,
                offset: entries[1].offset,
            })
        );
        assert_eq!(report.entries, 1);
    }

    #[test]
    fn boundary_truncation_verifies_as_shorter_prefix() {
        // Cutting exactly between frames is undetectable from the file
        // alone — the report stays ok but cites fewer entries and a
        // different head, which is what an external head anchor checks.
        let bytes = chain_bytes(3);
        let (entries, full) = ChainVerifier::new().scan(&bytes);
        let report = ChainVerifier::new().verify_bytes(&bytes[..entries[2].offset as usize]);
        assert!(report.ok());
        assert_eq!(report.entries, 2);
        assert_ne!(report.head, full.head);
        assert_eq!(report.head, entries[1].entry_hash);
    }

    #[test]
    fn resigned_splice_needs_the_seal_key_to_catch() {
        // The attacker replaces entry 1's record with one sealed under
        // *their* key and recomputes every chain hash downstream. The
        // chain links check out; only the seal gives the splice away.
        let bytes = chain_bytes(3);
        let (entries, _) = ChainVerifier::new().scan(&bytes);
        let forged = VerdictRecord::seal(
            &verdict_seal_key(b"attacker"),
            VerdictDraft {
                device: "dev-1".to_string(),
                accepted: true,
                seq: 1,
                ..VerdictDraft::default()
            },
        );
        let mut spliced = bytes[..entries[1].offset as usize].to_vec();
        let mut prev = entries[0].entry_hash;
        let replaced: Vec<Vec<u8>> = vec![forged.encode(), entries[2].record.encode()];
        for rec in &replaced {
            let (frame, hash) = encode_entry(&prev, rec);
            spliced.extend_from_slice(&frame);
            prev = hash;
        }
        let structural = ChainVerifier::new().verify_bytes(&spliced);
        assert!(structural.ok(), "splice must fool the keyless check");
        let report = ChainVerifier::with_seal_key(key()).verify_bytes(&spliced);
        assert_eq!(
            report.first_break,
            Some(ChainBreak::BadSeal {
                index: 1,
                offset: entries[1].offset,
            })
        );
    }

    #[test]
    fn oversized_length_is_typed_without_allocation() {
        let mut bytes = chain_bytes(1);
        let at = FILE_HEADER_LEN;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let report = ChainVerifier::new().verify_bytes(&bytes);
        assert_eq!(
            report.first_break,
            Some(ChainBreak::OversizedEntry {
                index: 0,
                offset: at as u64,
                len: u32::MAX,
            })
        );
    }

    #[test]
    fn bad_header_is_typed() {
        let report = ChainVerifier::new().verify_bytes(b"RAPX\x01");
        assert_eq!(
            report.first_break,
            Some(ChainBreak::BadHeader { offset: 0 })
        );
        let report = ChainVerifier::new().verify_bytes(b"RA");
        assert_eq!(
            report.first_break,
            Some(ChainBreak::BadHeader { offset: 0 })
        );
    }

    #[test]
    fn undecodable_record_with_consistent_chain_is_typed() {
        // A garbage record whose frame hash *is* consistent: chain ok,
        // decode fails.
        let mut bytes = chain_bytes(0);
        let garbage = [0xABu8; 7];
        let (frame, _) = encode_entry(&genesis_hash(), &garbage);
        bytes.extend_from_slice(&frame);
        let report = ChainVerifier::new().verify_bytes(&bytes);
        assert!(matches!(
            report.first_break,
            Some(ChainBreak::BadRecord { index: 0, .. })
        ));
    }
}
