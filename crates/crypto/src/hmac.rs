//! HMAC-SHA256 (RFC 2104 / FIPS 198-1) for report authentication.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// ```
/// use rap_crypto::hmac_sha256;
/// let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(tag[0], 0x5b);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time comparison of two digests.
///
/// Prevents the modelled Verifier from leaking tag prefixes through
/// timing — the same discipline a real RoT applies.
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Incremental HMAC-SHA256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates a MAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            let digest = {
                let mut h = Sha256::new();
                h.update(key);
                h.finalize()
            };
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; 64];
        let mut opad_key = [0u8; 64];
        for i in 0..64 {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"a key";
        let msg = b"a message split into pieces";
        let mut mac = HmacSha256::new(key);
        mac.update(&msg[..9]);
        mac.update(&msg[9..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn verify_tag_detects_any_flip() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&tag, &tag));
        for byte in 0..DIGEST_LEN {
            for bit in 0..8 {
                let mut bad = tag;
                bad[byte] ^= 1 << bit;
                assert!(!verify_tag(&tag, &bad));
            }
        }
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
