//! # rap-crypto — minimal crypto substrate for the RAP-Track RoT model
//!
//! From-scratch SHA-256 and HMAC-SHA256, used by the Secure-World CFA
//! Engine to compute `H_MEM` (the attested application's code hash) and
//! to authenticate CFA reports, and by the Verifier to check them.
//!
//! The paper's prototype signs reports inside TrustZone with a key held
//! in the Secure World; this crate provides the functionally equivalent
//! symmetric primitive (a MAC, as §II-C of the paper explicitly allows).
//!
//! ```
//! use rap_crypto::{hmac_sha256, sha256, verify_tag};
//! let h_mem = sha256(b"application binary bytes");
//! let tag = hmac_sha256(b"device key", &h_mem);
//! assert!(verify_tag(&tag, &hmac_sha256(b"device key", &h_mem)));
//! ```

#![warn(missing_docs)]

mod hmac;
mod sha256;

pub use hmac::{hmac_sha256, verify_tag, HmacSha256};
pub use sha256::{sha256, Digest, Sha256, DIGEST_LEN};
