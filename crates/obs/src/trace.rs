//! Span/event tracing with per-thread ring-buffer sinks.
//!
//! Instrumentation sites call [`event`] (or open a [`span`]); when the
//! collector is disabled — the default — that call is a single relaxed
//! atomic load plus a branch, cheap enough to leave in the verifier's
//! replay loop permanently (`benches/obs.rs` measures it). When
//! enabled, events land in a small `thread_local` buffer and are
//! flushed into the global collector when the buffer fills, when the
//! thread exits, or at [`drain`] time, so worker threads never contend
//! on a lock per event.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the collector was first enabled.
    pub ts_ns: u64,
    /// Static event kind (e.g. `"segment_build"`, `"rewind"`).
    pub kind: &'static str,
    /// First payload word (site-defined; spans store the start time).
    pub a: u64,
    /// Second payload word (site-defined; spans store the duration).
    pub b: u64,
}

/// Events buffered per thread before a flush into the collector.
const LOCAL_RING: usize = 128;

/// Default collector capacity when [`enable`] is called with 0.
const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static COLLECTOR: Mutex<Collector> = Mutex::new(Collector {
    events: Vec::new(),
    capacity: DEFAULT_CAPACITY,
});

struct Collector {
    events: Vec<TraceEvent>,
    capacity: usize,
}

thread_local! {
    static SINK: RefCell<LocalSink> = const { RefCell::new(LocalSink { buf: Vec::new() }) };
}

struct LocalSink {
    buf: Vec<TraceEvent>,
}

impl Drop for LocalSink {
    fn drop(&mut self) {
        flush_into_collector(&mut self.buf);
    }
}

fn flush_into_collector(buf: &mut Vec<TraceEvent>) {
    if buf.is_empty() {
        return;
    }
    let mut collector = COLLECTOR.lock().unwrap();
    for event in buf.drain(..) {
        if collector.events.len() < collector.capacity {
            collector.events.push(event);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Whether the collector is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the collector on, discarding previously collected events.
/// `capacity` bounds the number of retained events (0 means the
/// default); further events count as [`dropped`].
pub fn enable(capacity: usize) {
    let _ = EPOCH.set(Instant::now());
    {
        let mut collector = COLLECTOR.lock().unwrap();
        collector.events.clear();
        collector.capacity = if capacity == 0 {
            DEFAULT_CAPACITY
        } else {
            capacity
        };
    }
    DROPPED.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the collector off. Already-buffered events remain drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Records an event. When the collector is disabled this is one relaxed
/// load and a branch.
#[inline]
pub fn event(kind: &'static str, a: u64, b: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    event_slow(kind, a, b);
}

#[cold]
fn event_slow(kind: &'static str, a: u64, b: u64) {
    let ts_ns = EPOCH
        .get()
        .map_or(0, |epoch| epoch.elapsed().as_nanos() as u64);
    let ev = TraceEvent { kind, ts_ns, a, b };
    SINK.with(|sink| {
        // Re-entrancy guard: a panic inside the collector could poison
        // the RefCell; borrow_mut failing means we are mid-flush.
        if let Ok(mut sink) = sink.try_borrow_mut() {
            sink.buf.push(ev);
            if sink.buf.len() >= LOCAL_RING {
                flush_into_collector(&mut sink.buf);
            }
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// A timed span; records an event with its duration when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    kind: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let start_ns = EPOCH
                .get()
                .map_or(0, |epoch| start.duration_since(*epoch).as_nanos() as u64);
            event(self.kind, start_ns, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a span: on drop it records `event(kind, start_ns, duration_ns)`.
/// Disabled collectors make this a no-op (no clock read).
#[inline]
pub fn span(kind: &'static str) -> SpanGuard {
    SpanGuard {
        kind,
        start: enabled().then(Instant::now),
    }
}

/// Flushes the calling thread's buffered events into the collector.
/// Threads flush automatically on exit and when their ring fills; call
/// this from long-lived threads before snapshotting.
pub fn flush_thread() {
    SINK.with(|sink| {
        if let Ok(mut sink) = sink.try_borrow_mut() {
            flush_into_collector(&mut sink.buf);
        }
    });
}

/// Removes and returns every collected event, oldest first by
/// timestamp. Flushes the calling thread first; other live threads'
/// unflushed rings are not visible until they flush or exit.
pub fn drain() -> Vec<TraceEvent> {
    flush_thread();
    let mut events = {
        let mut collector = COLLECTOR.lock().unwrap();
        std::mem::take(&mut collector.events)
    };
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// Events discarded because the collector (or a wedged thread ring) was
/// full since the last [`enable`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Renders events as one text line each: `ts_ns kind a b`.
pub fn render_text(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{:>12} {} {:#x} {:#x}\n",
            e.ts_ns, e.kind, e.a, e.b
        ));
    }
    out
}

/// Serializes events as a JSON array of objects.
pub fn to_json(events: &[TraceEvent]) -> Json {
    Json::obj([
        ("dropped", Json::Uint(dropped())),
        (
            "events",
            Json::Arr(
                events
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("ts_ns", Json::Uint(e.ts_ns)),
                            ("kind", Json::Str(e.kind.to_string())),
                            ("a", Json::Uint(e.a)),
                            ("b", Json::Uint(e.b)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; every test serializes on this
    // lock so enable/disable cycles don't interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_collector_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        disable();
        event("noop", 1, 2);
        let _span = span("noop_span");
        drop(_span);
        assert!(drain().is_empty());
    }

    #[test]
    fn events_and_spans_are_collected_in_order() {
        let _guard = TEST_LOCK.lock().unwrap();
        enable(0);
        event("first", 1, 2);
        {
            let _s = span("work");
        }
        event("last", 3, 4);
        disable();
        let events = drain();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"first"));
        assert!(kinds.contains(&"work"));
        assert!(kinds.contains(&"last"));
        assert_eq!(dropped(), 0);
        assert!(drain().is_empty(), "drain must consume");
    }

    #[test]
    fn worker_thread_events_flush_on_exit() {
        let _guard = TEST_LOCK.lock().unwrap();
        enable(0);
        // Explicit join handles, not thread::scope: scope returns when
        // the closures finish, which can be *before* a worker's TLS
        // sink destructor (the flush under test) has run; join waits
        // for full thread termination, TLS destructors included.
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..10 {
                        event("worker", t, i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        disable();
        let events = drain();
        assert_eq!(events.iter().filter(|e| e.kind == "worker").count(), 40);
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let _guard = TEST_LOCK.lock().unwrap();
        enable(8);
        // More than capacity + one local ring.
        for i in 0..(LOCAL_RING as u64 * 3) {
            event("spam", i, 0);
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 8);
        assert!(dropped() > 0);
    }

    #[test]
    fn render_and_json() {
        let _guard = TEST_LOCK.lock().unwrap();
        enable(0);
        event("kindly", 0x10, 0x20);
        disable();
        let events = drain();
        let text = render_text(&events);
        assert!(text.contains("kindly 0x10 0x20"));
        let json = to_json(&events).to_compact();
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("events").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
    }
}
