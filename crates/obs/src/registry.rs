//! The metrics registry: named atomic counters, gauges and
//! fixed-bucket histograms, with diffable snapshots.
//!
//! Hot-path discipline: once a handle (an `Arc<Counter>` etc.) has been
//! obtained, every update is a single relaxed atomic RMW — no locks, no
//! allocation, no formatting. The registry's `Mutex` is touched only at
//! registration (once per metric name per process, cached by the
//! [`counter!`](crate::counter) family of macros) and at snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::{Json, JsonError};

/// Pads (and aligns) `T` to a full cache line so two adjacent hot cells
/// never share one.
///
/// Handle-cached counters and gauges are 8-byte atomics; separate
/// `Arc` allocations can land on the same 64-byte line, and every
/// `fetch_add` then invalidates the *other* metric's line on every
/// other core ("false sharing"). 64 bytes covers x86-64 and most
/// aarch64 parts; on 128-byte-line hosts two cells per line is still a
/// 8x improvement over eight. In-repo because the workspace is
/// air-gapped (no `crossbeam-utils`).
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps a value, padding it to a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: CachePadded<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous-value metric (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: CachePadded<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary histogram of `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]`; one extra overflow
/// bucket counts everything larger. Observation is lock-free: two
/// relaxed RMWs plus a branch-free bucket scan over a handful of
/// boundaries.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// The configured bucket boundaries.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Nanosecond boundaries suitable for latency histograms: 1 µs .. 10 s
/// in decades.
pub const LATENCY_NS_BOUNDS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Nanosecond boundaries for *round*-scale serve latencies: a
/// 1–2.5–5 ladder from 10 µs to 250 ms. The decade-wide
/// [`LATENCY_NS_BOUNDS`] layout collapses the whole µs–ms band a
/// loopback round lives in into two or three buckets, which makes
/// bucket-derived quantiles (see [`bucket_quantile`]) meaningless
/// there; this layout gives that band fourteen.
pub const ROUND_LATENCY_NS_BOUNDS: [u64; 14] = [
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
];

/// Estimates the `q`-quantile (`0.0..=1.0`) of a histogram from its
/// bucket counts, interpolating linearly within the bucket the target
/// rank falls into — the standard Prometheus `histogram_quantile`
/// estimator. `buckets` holds non-cumulative counts with
/// `buckets.len() == bounds.len() + 1` (final overflow bucket);
/// observations in the overflow bucket clamp to the last boundary.
/// Returns 0 when there are no observations.
pub fn bucket_quantile(bounds: &[u64], buckets: &[u64], q: f64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        let prev = cum;
        cum += n;
        if n > 0 && cum >= target {
            let lo = if i == 0 { 0 } else { bounds[i - 1] };
            let Some(&hi) = bounds.get(i) else {
                // Overflow bucket: the true upper edge is unknown, so
                // clamp to the last finite boundary.
                return lo;
            };
            let frac = (target - prev) as f64 / n as f64;
            return lo + ((hi - lo) as f64 * frac).round() as u64;
        }
    }
    bounds.last().copied().unwrap_or(0)
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A collection of named metrics.
///
/// Most code uses the process-wide [`global()`] registry through the
/// [`counter!`](crate::counter) / [`gauge!`](crate::gauge) /
/// [`histogram!`](crate::histogram) macros; a private `Registry` is
/// still useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns (registering on first use) the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns (registering on first use) the histogram called `name`.
    ///
    /// The boundaries of the *first* registration win; later callers
    /// get the existing instance regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Captures a point-in-time copy of every registered metric.
    ///
    /// Concurrent updates may land between individual loads — each
    /// counter is itself exact, but cross-metric invariants only hold
    /// once the instrumented activity has quiesced.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    bounds: h.bounds.clone(),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    sum: h.sum.load(Ordering::Relaxed),
                    count: h.count.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumentation site reports into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket boundaries (bucket `i` counts observations `<= bounds[i]`).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `buckets.len() == bounds.len()+1`
    /// (the last bucket is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 with no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-interpolated `q`-quantile estimate (see
    /// [`bucket_quantile`]); only as precise as the bucket layout, so
    /// pair µs–ms data with [`ROUND_LATENCY_NS_BOUNDS`].
    pub fn quantile(&self, q: f64) -> u64 {
        bucket_quantile(&self.bounds, &self.buckets, q)
    }
}

/// A point-in-time copy of a [`Registry`], suitable for diffing,
/// rendering and serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Every histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of the values of every counter whose name starts with
    /// `prefix` (labelled families like `verifier_violations_total{…}`).
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Activity between `baseline` and `self`: counters and histogram
    /// buckets subtract (saturating, in case `baseline` is newer);
    /// gauges keep their current (instantaneous) value.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| (name.clone(), v.saturating_sub(baseline.counter(name))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| {
                    let base = baseline.histogram(&h.name);
                    HistogramSnapshot {
                        name: h.name.clone(),
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .map(|(i, v)| {
                                v.saturating_sub(
                                    base.and_then(|b| b.buckets.get(i).copied()).unwrap_or(0),
                                )
                            })
                            .collect(),
                        sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                        count: h.count.saturating_sub(base.map_or(0, |b| b.count)),
                    }
                })
                .collect(),
        }
    }

    /// Renders in the Prometheus text exposition style.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed = std::collections::BTreeSet::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = name.split('{').next().unwrap_or(name);
            if typed.insert(base.to_string()) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
        };
        for (name, value) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {value}\n"));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "histogram");
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = h
                    .bounds
                    .get(i)
                    .map_or("+Inf".to_string(), |b| b.to_string());
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cumulative}\n", h.name));
            }
            out.push_str(&format!("{}_sum {}\n", h.name, h.sum));
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
        }
        out
    }

    /// Serializes as a JSON tree (see [`Snapshot::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::Uint(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(name, v)| (name.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|h| {
                            (
                                h.name.clone(),
                                Json::obj([
                                    (
                                        "bounds",
                                        Json::Arr(
                                            h.bounds.iter().map(|b| Json::Uint(*b)).collect(),
                                        ),
                                    ),
                                    (
                                        "buckets",
                                        Json::Arr(
                                            h.buckets.iter().map(|b| Json::Uint(*b)).collect(),
                                        ),
                                    ),
                                    ("sum", Json::Uint(h.sum)),
                                    ("count", Json::Uint(h.count)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstructs a snapshot from [`Snapshot::to_json`] output.
    pub fn from_json(json: &Json) -> Result<Snapshot, JsonError> {
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        if !matches!(json, Json::Obj(_)) {
            return Err(bad("snapshot must be a JSON object"));
        }
        let mut snap = Snapshot::default();
        if let Some(counters) = json.get("counters").and_then(Json::entries) {
            for (name, v) in counters {
                snap.counters
                    .push((name.clone(), v.as_u64().ok_or_else(|| bad("bad counter"))?));
            }
        }
        if let Some(gauges) = json.get("gauges").and_then(Json::entries) {
            for (name, v) in gauges {
                snap.gauges
                    .push((name.clone(), v.as_i64().ok_or_else(|| bad("bad gauge"))?));
            }
        }
        if let Some(histograms) = json.get("histograms").and_then(Json::entries) {
            for (name, h) in histograms {
                let nums = |key: &str| -> Result<Vec<u64>, JsonError> {
                    h.get(key)
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad("bad histogram"))?
                        .iter()
                        .map(|v| v.as_u64().ok_or_else(|| bad("bad histogram entry")))
                        .collect()
                };
                snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    bounds: nums("bounds")?,
                    buckets: nums("buckets")?,
                    sum: h
                        .get("sum")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("bad histogram sum"))?,
                    count: h
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("bad histogram count"))?,
                });
            }
        }
        Ok(snap)
    }

    /// Renders a human-readable table (the `rap stats` view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {} (count {}, sum {}, mean {:.1}):\n",
                h.name,
                h.count,
                h.sum,
                h.mean()
            ));
            for (i, bucket) in h.buckets.iter().enumerate() {
                if *bucket == 0 {
                    continue;
                }
                let le = h
                    .bounds
                    .get(i)
                    .map_or("+Inf".to_string(), |b| b.to_string());
                out.push_str(&format!("  le {le:>12}  {bucket}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn hot_cells_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        assert_eq!(std::mem::align_of::<Counter>(), 64);
        assert_eq!(std::mem::align_of::<Gauge>(), 64);
        let padded = CachePadded::new(AtomicU64::new(3));
        padded.fetch_add(4, Ordering::Relaxed);
        assert_eq!(padded.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = Registry::new();
        let a = reg.counter("a_total");
        let a2 = reg.counter("a_total");
        a.inc();
        a2.add(2);
        assert_eq!(reg.counter("a_total").get(), 3);

        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 1);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.buckets, vec![2, 2, 0, 1]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 5122);
        assert_eq!(hs.buckets.iter().sum::<u64>(), hs.count);
        // First registration's bounds win.
        let same = reg.histogram("lat", &[1, 2]);
        assert_eq!(same.bounds(), &[10, 100, 1000]);
        assert_eq!(same.count(), 5);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total");
        let g = reg.gauge("depth");
        let h = reg.histogram("lat", &[10]);
        c.add(5);
        g.set(3);
        h.observe(4);
        let before = reg.snapshot();
        c.add(7);
        g.set(9);
        h.observe(40);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("jobs_total"), 7);
        assert_eq!(delta.gauge("depth"), 9);
        let hd = delta.histogram("lat").unwrap();
        assert_eq!(hd.buckets, vec![0, 1]);
        assert_eq!(hd.count, 1);
        assert_eq!(hd.sum, 40);
    }

    #[test]
    fn counter_family_sums_labels() {
        let reg = Registry::new();
        reg.counter("violations_total{kind=\"BadTag\"}").add(2);
        reg.counter("violations_total{kind=\"InvalidPc\"}").inc();
        reg.counter("other").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_family("violations_total"), 3);
    }

    #[test]
    fn json_roundtrip() {
        let reg = Registry::new();
        reg.counter("a_total").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h", &[5, 50]).observe(9);
        let snap = reg.snapshot();
        let text = snap.to_json().to_pretty();
        let back = Snapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_rendering() {
        let reg = Registry::new();
        reg.counter("jobs_total").add(3);
        reg.counter("violations_total{kind=\"BadTag\"}").inc();
        reg.counter("violations_total{kind=\"InvalidPc\"}").inc();
        reg.gauge("depth").set(2);
        reg.histogram("lat", &[10, 100]).observe(7);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 3"));
        // One TYPE line for the whole labelled family.
        assert_eq!(text.matches("# TYPE violations_total").count(), 1);
        assert!(text.contains("violations_total{kind=\"BadTag\"} 1"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_sum 7"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let reg = Registry::new();
        let c = reg.counter("n");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn bucket_quantile_interpolates_within_the_target_bucket() {
        // 100 observations spread uniformly across (0, 100]: the p50
        // rank lands mid-bucket and interpolates.
        let bounds = [25u64, 50, 75, 100];
        let buckets = [25u64, 25, 25, 25, 0];
        assert_eq!(bucket_quantile(&bounds, &buckets, 0.5), 50);
        assert_eq!(bucket_quantile(&bounds, &buckets, 0.99), 99);
        assert_eq!(bucket_quantile(&bounds, &buckets, 1.0), 100);
        // Rank 1 (q→0) interpolates from the bucket's lower edge.
        assert_eq!(bucket_quantile(&bounds, &buckets, 0.0), 1);
        // Mid-bucket interpolation: rank 30 is 5/25 into (25, 50].
        assert_eq!(bucket_quantile(&bounds, &buckets, 0.3), 30);
    }

    #[test]
    fn bucket_quantile_edge_cases() {
        // Empty histogram.
        assert_eq!(bucket_quantile(&[10, 20], &[0, 0, 0], 0.99), 0);
        // Everything in the overflow bucket clamps to the last bound.
        assert_eq!(bucket_quantile(&[10, 20], &[0, 0, 5], 0.5), 20);
        // Sparse buckets: empty buckets are skipped, not interpolated.
        assert_eq!(bucket_quantile(&[10, 20, 30], &[1, 0, 0, 0], 0.99), 10);
        // Out-of-range q clamps.
        assert_eq!(bucket_quantile(&[10], &[4, 0], 7.0), 10);
        assert_eq!(bucket_quantile(&[10], &[4, 0], -1.0), 3);
    }

    #[test]
    fn histogram_snapshot_quantile_uses_its_own_layout() {
        let reg = Registry::new();
        let h = reg.histogram("round_lat", &ROUND_LATENCY_NS_BOUNDS);
        // 99 fast rounds at ~20µs, one slow at ~80ms: p50 stays in the
        // 10–25µs bucket, p99 does not collapse into it.
        for _ in 0..99 {
            h.observe(20_000);
        }
        h.observe(80_000_000);
        let snap = reg.snapshot();
        let hs = snap.histogram("round_lat").unwrap();
        let p50 = hs.quantile(0.5);
        let p99 = hs.quantile(0.99);
        assert!((10_000..=25_000).contains(&p50), "p50 {p50}");
        assert!(
            (10_000..=25_000).contains(&p99),
            "p99 {p99} (rank 99 of 100)"
        );
        assert!(
            hs.quantile(1.0) > 50_000_000,
            "max lands in the slow bucket"
        );
    }

    #[test]
    fn render_is_readable() {
        let reg = Registry::new();
        reg.counter("steps_total").add(12);
        reg.histogram("lat", &[10]).observe(3);
        let text = reg.snapshot().render();
        assert!(text.contains("steps_total"));
        assert!(text.contains("histogram lat"));
        assert_eq!(
            Registry::new().snapshot().render(),
            "(no metrics recorded)\n"
        );
    }
}
